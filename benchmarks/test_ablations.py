"""Ablation benches: flip the design choices the paper identifies and
verify each effect comes from exactly that switch.

* wakeup preemption (CFS) — drives the apache/ab effect;
* ULE's remote interactive preemption — FreeBSD's
  ``sched_shouldpreempt`` IPI rule;
* ``sched_pickcpu`` vs "previous CPU" — the paper's §6.3 validation:
  replacing pickcpu erases the sysbench overhead gap;
* autogroup (per-application cgroups) — drives Table 2's 50/50 split;
* balancer cadence — ULE's convergence time scales with its interval.
"""

import pytest

from repro.analysis.stats import percent_diff
from repro.core.clock import msec, sec, usec
from repro.experiments.base import make_engine, run_workload
from repro.workloads import (ApacheWorkload, FiboWorkload,
                             SpinnerWorkload, SysbenchWorkload)


def _bench_once(benchmark, fn):
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def test_ablation_cfs_wakeup_preemption(benchmark):
    """Disabling CFS wakeup preemption removes ab's preemptions and
    closes most of the apache gap."""
    def run():
        out = {}
        for preempt in (True, False):
            eng = make_engine("cfs", ncpus=1,
                              ctx_switch_cost_ns=usec(15),
                              wakeup_preemption=preempt)
            wl = ApacheWorkload(total_requests=10_000)
            run_workload(eng, wl, sec(100))
            out[preempt] = (wl.performance(eng),
                            wl.ab_preemptions(eng))
        return out
    out = _bench_once(benchmark, run)
    perf_on, pre_on = out[True]
    perf_off, pre_off = out[False]
    print(f"\nwakeup preemption on: {pre_on} ab preemptions; "
          f"off: {pre_off}")
    assert pre_on > 1000
    assert pre_off < pre_on / 10
    assert perf_off > perf_on  # preemption costs apache throughput


def test_ablation_ule_pickcpu_simple(benchmark):
    """The paper's §6.3 check: replacing sched_pickcpu with 'previous
    CPU' removes the scan overhead entirely."""
    def run():
        out = {}
        for simple in (False, True):
            eng = make_engine("ule", ncpus=32,
                              pickcpu_scan_cost_ns=usec(8),
                              pickcpu_simple=simple)
            wl = SysbenchWorkload(nthreads=128, wait_ns=msec(10),
                                  transactions_per_thread=100,
                                  init_per_thread_ns=msec(2))
            run_workload(eng, wl, sec(100))
            busy = sum(c.busy_ns for c in eng.machine.cores)
            out[simple] = (wl.performance(eng),
                           eng.metrics.counter("sched.overhead_ns")
                           / max(1, busy))
        return out
    out = _bench_once(benchmark, run)
    perf_scan, ovh_scan = out[False]
    perf_simple, ovh_simple = out[True]
    print(f"\npickcpu scan overhead: {100 * ovh_scan:.1f}% of busy "
          f"cycles; simple: {100 * ovh_simple:.1f}%")
    assert ovh_scan > 0.02
    assert ovh_simple == 0.0
    assert perf_simple > perf_scan


def test_ablation_cfs_autogroup(benchmark):
    """Without per-application cgroups, fibo gets ~1/81 of the core
    instead of ~1/2 against 80 sysbench threads (Table 2's basis)."""
    def run():
        out = {}
        for auto in (True, False):
            eng = make_engine("cfs", ncpus=1, autogroup=auto)
            fibo = FiboWorkload(work_ns=sec(30))
            sysb = SysbenchWorkload(nthreads=80,
                                    transactions_per_thread=60)
            fibo.launch(eng, at=0)
            sysb.launch(eng, at=msec(500))
            eng.run(until=sec(8))
            out[auto] = fibo.thread.total_runtime
        return out
    out = _bench_once(benchmark, run)
    print(f"\nfibo runtime in 8s: autogroup {out[True] / 1e9:.2f}s, "
          f"no autogroup {out[False] / 1e9:.2f}s")
    # with cgroups fibo gets a far larger share of the core
    assert out[True] > 1.5 * out[False]


def test_ablation_ule_balance_interval(benchmark):
    """Halving ULE's balancing interval roughly halves the time to
    drain a pile of spinners (one migration per invocation)."""
    def run():
        from repro.analysis.convergence import balance_predicate
        out = {}
        for lo, hi in ((msec(500), msec(1500)), (msec(125), msec(375))):
            eng = make_engine("ule", ncpus=4, balance_min_ns=lo,
                              balance_max_ns=hi)
            spin = SpinnerWorkload(count=24, pin_cpu=0,
                                   unpin_at=msec(100))
            spin.launch(eng, at=0)
            balanced = balance_predicate(tolerance=1)
            eng.run(until=sec(120),
                    stop_when=lambda e: e.now > msec(200) and balanced(e),
                    check_interval=64)
            out[(lo, hi)] = eng.now
        return out
    out = _bench_once(benchmark, run)
    (slow, fast) = out.values()
    print(f"\nconvergence: default interval {slow / 1e9:.1f}s, "
          f"quarter interval {fast / 1e9:.1f}s")
    assert fast < slow


def test_ablation_ule_remote_preemption(benchmark):
    """FreeBSD's remote interactive-over-batch preemption
    (sched_shouldpreempt's IPI rule): an interactive consumer woken
    *from another CPU* preempts a batch thread; timer wakeups (local
    callouts) never do."""
    from repro.core import Run, Sleep, ThreadSpec, run_forever
    from repro.sync import Channel

    def run():
        out = {}
        for remote in (True, False):
            eng = make_engine("ule", ncpus=2,
                              remote_interactive_preempt=remote)
            chan = Channel(eng, "work")
            eng.spawn(ThreadSpec("hog", lambda ctx: iter(
                [run_forever()]), app="hog",
                affinity=frozenset({1})))

            def producer(ctx):
                for _ in range(2000):
                    yield Sleep(msec(3))
                    yield chan.put(ctx.now)

            def consumer(ctx):
                while True:
                    item = yield chan.get()
                    if item is None:
                        return
                    yield Run(usec(200))

            eng.spawn(ThreadSpec("prod", producer, app="svc",
                                 affinity=frozenset({0})))
            t = eng.spawn(ThreadSpec("cons", consumer, app="svc",
                                     affinity=frozenset({1})))
            # warm up until the hog has aged into the batch class
            eng.run(until=sec(3))
            base_wait, base_sw = t.total_waittime, t.nr_switches
            eng.run(until=sec(6))
            waits = t.total_waittime - base_wait
            switches = max(1, t.nr_switches - base_sw)
            out[remote] = (waits / switches,
                           eng.metrics.counter("ule.remote_preemptions"))
        return out
    out = _bench_once(benchmark, run)
    wait_on, preempts_on = out[True]
    wait_off, preempts_off = out[False]
    print(f"\navg wait per schedule: remote-preempt {wait_on / 1e6:.2f}ms "
          f"({preempts_on:.0f} IPIs), without {wait_off / 1e6:.2f}ms")
    assert preempts_on > 50
    assert preempts_off == 0
    assert wait_on < wait_off
