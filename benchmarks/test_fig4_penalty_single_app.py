"""Bench: Fig. 4 — penalty bifurcation of the 128 sysbench threads.

Paper: executed threads' penalties fall toward 0; starved threads stay
frozen at their high inherited values.
"""


def test_fig4_penalty_bifurcation(run_experiment_bench):
    result = run_experiment_bench("fig4")
    executed = result.data["executed_pens"]
    starved = result.data["starved_pens"]
    assert executed and starved
    mean_exec = sum(executed) / len(executed)
    mean_starved = sum(starved) / len(starved)
    assert mean_exec < 15
    assert mean_starved > result.data["threshold"]
