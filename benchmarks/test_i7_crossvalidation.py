"""Bench: the §4.1 desktop machine cross-validation.

Paper: "We also ran experiments on a smaller desktop machine (8-core
Intel i7-3770), reaching similar conclusions."
"""


def test_i7_conclusions_transfer(run_experiment_bench):
    result = run_experiment_bench("i7")
    # ULE still favors sysbench against the hog (capped at ~+12% on
    # 8 CPUs since fibo can only occupy one of them)
    assert result.data["tps_ratio"] > 1.03
    # the spin-barrier HPC advantage transfers
    assert result.data["mg_diff_pct"] > 3
    # balancing regimes transfer; without a NUMA level CFS now reaches
    # a perfect balance too, and much faster than ULE
    spin = result.data["spin"]
    assert spin["cfs"]["spread"] <= 1
    assert spin["ule"]["spread"] <= 1
    assert spin["cfs"]["converged_s"] < spin["ule"]["converged_s"]
