"""Bench: Fig. 6 — load-balancing convergence of released spinners.

Paper: ULE converges at ~one migration per balancer invocation
(hundreds of seconds for 512 threads); CFS converges in well under a
second but never better than the ~25 % NUMA imbalance tolerance.
"""


def test_fig6_balancing_convergence(run_experiment_bench):
    result = run_experiment_bench("fig6")
    ule = next(r for r in result.rows if r["sched"] == "ule")
    cfs = next(r for r in result.rows if r["sched"] == "cfs")
    # ULE: idle steal takes exactly one thread per idle core...
    assert ule["idle_steals"] == 31
    # ...then the periodic balancer converges to a perfect balance,
    # roughly one migration per invocation
    assert ule["final_spread"] <= 1
    assert ule["balancer_invocations"] > 50
    assert ule["migrations"] <= ule["balancer_invocations"] + 40
    # ULE takes tens of seconds; CFS sorts the bulk out in well under
    # a second
    assert ule["time_to_balance_s"] > 30
    assert cfs["time_to_rough_balance_s"] < 1.0
    # but CFS never achieves a perfect balance (NUMA tolerance)
    assert cfs["final_spread"] >= 2
