"""Bench: Fig. 7 — c-ray's cascading wakeups and thread placement.

Paper: ULE takes ~11 s until all 512 threads are runnable (batch
threads starve in the wakeup chain) vs ~2 s for CFS; the total
completion time is nevertheless the same on both.
"""


def test_fig7_cray_wakeup_chain(run_experiment_bench):
    result = run_experiment_bench("fig7")
    ule = next(r for r in result.rows if r["sched"] == "ule")
    cfs = next(r for r in result.rows if r["sched"] == "cfs")
    # ULE is slower to get every thread runnable
    assert ule["all_runnable_at_s"] > cfs["all_runnable_at_s"]
    # but c-ray completes in about the same time on both
    ratio = ule["completion_s"] / cfs["completion_s"]
    assert 0.85 < ratio < 1.15
