"""Bench: hackbench at scale (§6.3's overhead measurement).

The paper runs hackbench with up to 32,000 threads and reports the
time spent inside the scheduler: ULE ~1 %, CFS ~0.3 %.  The default
bench uses 8,000 threads; set ``REPRO_FULL=1`` for the full 32,000.
"""

import os

from repro.analysis.stats import percent_diff
from repro.core.clock import sec, usec
from repro.experiments.base import make_engine, run_workload
from repro.workloads import HackbenchWorkload


def test_hackbench_scale(benchmark, full_mode):
    groups = 800 if full_mode else 200   # x 40 threads per group
    results = {}

    def run():
        for sched in ("cfs", "ule"):
            # realistic per-core scan cost (~100 ns of cache misses);
            # the Fig. 8 sysbench bar uses a larger calibrated value
            # standing in for MySQL's far higher wakeup rate
            eng = make_engine(sched, ncpus=32, seed=1,
                              ctx_switch_cost_ns=usec(15),
                              **({"pickcpu_scan_cost_ns": 100}
                                 if sched == "ule" else {}))
            wl = HackbenchWorkload(groups=groups, fan=20, loops=5)
            run_workload(eng, wl, sec(600))
            assert wl.done(eng)
            busy = sum(c.busy_ns for c in eng.machine.cores)
            results[sched] = {
                "threads": wl.total_threads,
                "completion_s": wl.completion_time(eng) / 1e9,
                "overhead_pct": 100 *
                eng.metrics.counter("sched.overhead_ns") / max(1, busy),
                "switches": eng.metrics.counter("engine.switches"),
            }
        return results

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for sched, r in out.items():
        print(f"  {sched}: {r['threads']} threads, "
              f"completion {r['completion_s']:.2f}s, "
              f"scheduler overhead {r['overhead_pct']:.2f}%, "
              f"{r['switches']:.0f} switches")
    # both schedulers survive tens of thousands of threads
    assert out["cfs"]["threads"] == out["ule"]["threads"] >= 8000
    # modelled pickcpu scans give ULE a higher (but small) overhead,
    # the paper's 1% vs 0.3% shape
    assert out["ule"]["overhead_pct"] > out["cfs"]["overhead_pct"]
    assert out["ule"]["overhead_pct"] < 10
    # completion times within 2x of each other
    ratio = out["ule"]["completion_s"] / out["cfs"]["completion_s"]
    assert 0.5 < ratio < 2.0
