"""Bench: Table 1 — the Linux/FreeBSD scheduler API mapping."""


def test_table1_api_mapping(run_experiment_bench):
    result = run_experiment_bench("table1")
    assert len(result.rows) == 6
    assert all(result.data["exercised"].values())
