"""Compare BENCH_simulator.json against the recorded baseline and
record the performance trajectory.

Run by ``make bench`` after the simulator-performance benchmarks:
exits non-zero when any profile's events/sec regressed more than
``MAX_REGRESSION``x against ``BENCH_baseline.json``.  Baselines are
machine-dependent; the threshold leaves headroom for hardware
variance while still catching algorithmic regressions (an accidental
O(n) in the event queue shows up as 5-50x).  The recorded figure per
profile is the median of five timing rounds, which removes enough
round-level noise to hold the tolerance at 1.5x (it was 2x when a
single round was recorded).  Residual swings up to ~1.3x between
whole runs on shared/virtualized hardware are still normal — CPU
frequency phases move every profile together by 1.2-1.5x for minutes
at a time (see the noise-band section of docs/performance.md) —
treat trajectory deltas below that as noise and only ratios beyond
the tolerance as signal.

Every run also appends one entry — git sha, smoke flag, events/sec
per profile family — to ``BENCH_trajectory.json``, so the perf story
across PRs is recorded data, not commit-message claims (see
docs/performance.md for how to read it).  Re-running on the same sha
replaces that sha's entry instead of duplicating it.

To re-record the baseline after an intentional change::

    make bench-baseline
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
CURRENT = os.path.join(HERE, "BENCH_simulator.json")
BASELINE = os.path.join(HERE, "BENCH_baseline.json")
TRAJECTORY = os.path.join(HERE, "BENCH_trajectory.json")

#: fail when events/sec drops below baseline / MAX_REGRESSION
#: (median-of-5 recording keeps this tight; see module docstring)
MAX_REGRESSION = 1.5


def _git_sha() -> str:
    """Short sha of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              capture_output=True, text=True,
                              cwd=HERE, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def append_trajectory(current: dict) -> dict:
    """Append this run's per-profile events/sec to the trajectory
    file, keyed by (sha, smoke); re-runs on the same sha replace
    their previous entry.  Returns the appended entry."""
    from repro.core.artifacts import atomic_write_json
    entry = {
        "sha": _git_sha(),
        "smoke": bool(current.get("smoke")),
        "events_per_sec": {
            profile: result["events_per_sec"]
            for profile, result in sorted(current["profiles"].items())
        },
    }
    try:
        with open(TRAJECTORY) as fh:
            trajectory = json.load(fh)
    except (OSError, ValueError):
        trajectory = []
    if not isinstance(trajectory, list):
        trajectory = []
    trajectory = [e for e in trajectory
                  if not (e.get("sha") == entry["sha"]
                          and e.get("smoke") == entry["smoke"])]
    trajectory.append(entry)
    atomic_write_json(TRAJECTORY, trajectory)
    return entry


def main() -> int:
    if not os.path.exists(CURRENT):
        print(f"check_bench: {CURRENT} missing - run the benchmarks "
              f"first (make bench)", file=sys.stderr)
        return 2
    with open(CURRENT) as fh:
        current = json.load(fh)
    entry = append_trajectory(current)
    print(f"check_bench: trajectory entry recorded for "
          f"sha {entry['sha']} (smoke={entry['smoke']})")
    if not os.path.exists(BASELINE):
        print(f"check_bench: no baseline recorded; copying current "
              f"results to {BASELINE}")
        from repro.core.artifacts import atomic_write_text
        with open(CURRENT) as fh:
            data = fh.read()
        atomic_write_text(BASELINE, data)
        return 0
    with open(BASELINE) as fh:
        baseline = json.load(fh)
    if current.get("smoke") != baseline.get("smoke"):
        print("check_bench: smoke-mode mismatch between current and "
              "baseline; skipping comparison")
        return 0
    failures = []
    for profile, base in sorted(baseline["profiles"].items()):
        cur = current["profiles"].get(profile)
        if cur is None:
            failures.append(f"{profile}: missing from current results")
            continue
        base_eps = base["events_per_sec"]
        cur_eps = cur["events_per_sec"]
        ratio = base_eps / cur_eps if cur_eps else float("inf")
        status = "FAIL" if ratio > MAX_REGRESSION else "ok"
        print(f"  {profile:<16} {cur_eps:>12,.0f} ev/s "
              f"(baseline {base_eps:>12,.0f}, {base_eps / cur_eps:.2f}x) "
              f"{status}")
        if ratio > MAX_REGRESSION:
            failures.append(
                f"{profile}: {cur_eps:,.0f} ev/s is more than "
                f"{MAX_REGRESSION}x below baseline {base_eps:,.0f}")
    if failures:
        print("\ncheck_bench: PERFORMANCE REGRESSION", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("check_bench: all profiles within "
          f"{MAX_REGRESSION}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
