"""Bench: the simulator's own performance.

Not a paper figure — it tracks the engine's event throughput so
regressions in the simulation kernel are visible.  Three profiles:

* compute-bound (few events, long run actions),
* wakeup-heavy (channels, the hackbench shape),
* tick-dominated (spinners under the 1 ms CFS tick).
"""

from repro.core import Engine, Run, Sleep, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.sync import Channel


def _events_per_second(benchmark, build, simulated_ns):
    def run():
        engine = build()
        engine.run(until=simulated_ns)
        return engine

    engine = benchmark.pedantic(run, rounds=1, iterations=1)
    switches = engine.metrics.counter("engine.switches")
    wall = benchmark.stats.stats.mean
    print(f"\n  simulated {simulated_ns / 1e9:.1f}s in {wall:.2f}s wall "
          f"({simulated_ns / 1e9 / wall:.1f}x realtime), "
          f"{switches:.0f} switches")
    return engine


def test_perf_compute_bound(benchmark):
    def build():
        engine = Engine(smp(8), scheduler_factory("cfs"), seed=1)
        for i in range(16):
            engine.spawn(ThreadSpec(
                f"w{i}", lambda ctx: iter([run_forever()]), app="app"))
        return engine

    engine = _events_per_second(benchmark, build, sec(20))
    assert engine.now == sec(20)


def test_perf_wakeup_heavy(benchmark):
    def build():
        engine = Engine(smp(8), scheduler_factory("ule"), seed=1)
        chans = [Channel(engine) for _ in range(8)]

        def producer(ctx):
            i = 0
            while True:
                yield Run(usec(50))
                yield chans[i % 8].put(i)
                i += 1

        def consumer(ctx):
            idx = ctx.thread.tags["idx"]
            while True:
                yield chans[idx].get()
                yield Run(usec(50))

        engine.spawn(ThreadSpec("prod", producer, app="app"))
        for i in range(8):
            engine.spawn(ThreadSpec(f"cons{i}", consumer, app="app",
                                    tags={"idx": i}))
        return engine

    engine = _events_per_second(benchmark, build, sec(5))
    assert engine.metrics.counter("engine.switches") > 1000


def test_perf_tick_dominated(benchmark):
    def build():
        engine = Engine(smp(32), scheduler_factory("cfs"), seed=1)
        for i in range(64):
            engine.spawn(ThreadSpec(
                f"s{i}", lambda ctx: iter([run_forever()]), app="app"))
        return engine

    engine = _events_per_second(benchmark, build, sec(5))
    assert engine.now == sec(5)
