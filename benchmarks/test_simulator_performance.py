"""Bench: the simulator's own performance.

Not a paper figure — it tracks the engine's event throughput so
regressions in the simulation kernel are visible.  Six profiles:

* compute-bound (few events, long run actions),
* wakeup-heavy (channels, the hackbench shape),
* tick-dominated (spinners under the 1 ms CFS tick),
* idle-heavy (a mostly idle machine; the NO_HZ tickless showcase),
* fig6_cfs / fig6_ule (the paper's 32-spinner pin/release
  load-balancing scenario — the balance-path hot loop the PR 5 perf
  work targets).

Each profile is timed over five rounds and the recorded figure is
the **median**, so a couple of scheduler blips (or one CPU-frequency
phase change) on shared hardware cannot fake a regression.  Each run writes ``benchmarks/BENCH_simulator.json``
(events/sec and switches per profile); ``benchmarks/check_bench.py``
compares it against the recorded baseline and appends a per-sha entry
to ``benchmarks/BENCH_trajectory.json`` (see docs/performance.md).
``REPRO_BENCH_SMOKE=1`` shrinks the simulated durations ~10x for CI
(``make bench``).
"""

import json
import os

import pytest

from repro.core import Engine, Run, ThreadSpec, run_forever
from repro.core.clock import msec, sec, usec
from repro.core.topology import smp
from repro.sched import scheduler_factory
from repro.sync import Channel

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: collected per-profile results, flushed to JSON at session end
RESULTS: dict = {}

_JSON_PATH = os.path.join(os.path.dirname(__file__),
                          "BENCH_simulator.json")


def _scaled(ns: int) -> int:
    """Simulated duration, shrunk ~10x in smoke mode."""
    return ns // 10 if SMOKE else ns


@pytest.fixture(scope="session", autouse=True)
def _flush_results():
    yield
    if not RESULTS:
        return
    from repro.core.artifacts import atomic_write_json
    atomic_write_json(_JSON_PATH, {"smoke": SMOKE, "profiles": RESULTS})


#: timing rounds per profile; the recorded figure is the median, so
#: two bad rounds out of five (descheduling blips, CPU-frequency
#: phase changes) cannot fake a regression (or an improvement) — see
#: docs/performance.md on the measured noise band of this harness
ROUNDS = 5


def _record_result(benchmark, engine, profile, simulated_ns):
    """Fill ``RESULTS[profile]`` from a finished engine + benchmark."""
    switches = engine.metrics.counter("engine.switches")
    wall = benchmark.stats.stats.median
    events = engine.events_processed
    RESULTS[profile] = {
        "events": int(events),
        "events_per_sec": round(events / wall, 1),
        "switches": int(switches),
        "simulated_ns": int(simulated_ns),
        "wall_s": round(wall, 4),
        "tick_stops": int(engine.metrics.counter("engine.tick_stops")),
    }
    print(f"\n  simulated {simulated_ns / 1e9:.1f}s in {wall:.2f}s wall "
          f"({simulated_ns / 1e9 / wall:.1f}x realtime), "
          f"{events} events ({events / wall:,.0f}/s), "
          f"{switches:.0f} switches")
    return engine


def _events_per_second(benchmark, build, simulated_ns, profile):
    def run():
        engine = build()
        engine.run(until=simulated_ns)
        return engine

    engine = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    return _record_result(benchmark, engine, profile, simulated_ns)


def test_perf_compute_bound(benchmark):
    def build():
        engine = Engine(smp(8), scheduler_factory("cfs"), seed=1)
        for i in range(16):
            engine.spawn(ThreadSpec(
                f"w{i}", lambda ctx: iter([run_forever()]), app="app"))
        return engine

    simulated = _scaled(sec(20))
    engine = _events_per_second(benchmark, build, simulated,
                                "compute_bound")
    assert engine.now == simulated


def test_perf_wakeup_heavy(benchmark):
    def build():
        engine = Engine(smp(8), scheduler_factory("ule"), seed=1)
        chans = [Channel(engine) for _ in range(8)]

        def producer(ctx):
            i = 0
            while True:
                yield Run(usec(50))
                yield chans[i % 8].put(i)
                i += 1

        def consumer(ctx):
            idx = ctx.thread.tags["idx"]
            while True:
                yield chans[idx].get()
                yield Run(usec(50))

        engine.spawn(ThreadSpec("prod", producer, app="app"))
        for i in range(8):
            engine.spawn(ThreadSpec(f"cons{i}", consumer, app="app",
                                    tags={"idx": i}))
        return engine

    engine = _events_per_second(benchmark, build, _scaled(sec(5)),
                                "wakeup_heavy")
    assert engine.metrics.counter("engine.switches") > (
        100 if SMOKE else 1000)


def test_perf_tick_dominated(benchmark):
    def build():
        engine = Engine(smp(32), scheduler_factory("cfs"), seed=1)
        for i in range(64):
            engine.spawn(ThreadSpec(
                f"s{i}", lambda ctx: iter([run_forever()]), app="app"))
        return engine

    simulated = _scaled(sec(5))
    engine = _events_per_second(benchmark, build, simulated,
                                "tick_dominated")
    assert engine.now == simulated


def _fig6_profile(benchmark, sched):
    """The paper's fig6 pin/release load-balancing scenario: 32
    spinners on the 32-core Opteron topology — the steal-scan /
    ``loads_for`` hot path."""
    from repro.experiments.fig6_load_balancing import run_release

    timeout_ns = _scaled(sec(4))

    def run():
        engine, _, _ = run_release(sched, 32, seed=1,
                                   timeout_ns=timeout_ns)
        return engine

    engine = benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    return _record_result(benchmark, engine, f"fig6_{sched}",
                          engine.now)


def test_perf_fig6_cfs(benchmark):
    engine = _fig6_profile(benchmark, "cfs")
    assert engine.metrics.counter("engine.switches") > 0


def test_perf_fig6_ule(benchmark):
    engine = _fig6_profile(benchmark, "ule")
    assert engine.metrics.counter("engine.switches") > 0


def test_perf_idle_heavy(benchmark):
    """30 of 32 cores idle: tickless parks their ticks, so the event
    count collapses compared to an always-tick engine (which posts
    ~32 ticks/ms regardless)."""
    def build():
        engine = Engine(smp(32), scheduler_factory("cfs"), seed=1)
        for i in range(2):
            engine.spawn(ThreadSpec(
                f"s{i}", lambda ctx: iter([run_forever()]), app="app"))
        return engine

    simulated = _scaled(sec(5))
    engine = _events_per_second(benchmark, build, simulated,
                                "idle_heavy")
    assert engine.now == simulated
    assert engine.metrics.counter("engine.tick_stops") >= 30
