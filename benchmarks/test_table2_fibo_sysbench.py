"""Bench: Table 2 — fibo + sysbench throughput and latency.

Paper: sysbench 290 tx/s on CFS vs 532 on ULE (1.83x); latency 441 ms
vs 125 ms (3.5x); fibo runtime roughly equal.
"""


def test_table2_fibo_sysbench(run_experiment_bench):
    result = run_experiment_bench("table2")
    # ULE sysbench throughput is well above CFS's (paper: 1.83x)
    assert result.data["tps_ratio"] > 1.4
    # CFS latency is a multiple of ULE's (paper: 3.5x)
    assert result.data["latency_ratio"] > 2.0
