"""Bench: Fig. 9 — multi-application pairs vs running alone.

Paper: batch+batch (c-ray+EP) and interactive+interactive
(apache+sysbench) pairs behave similarly on both schedulers; in the
mixed blackscholes+ferret pair, ULE shields ferret while blackscholes
pays heavily; CFS shares the pain.
"""


def _row(result, pair, app):
    return next(r for r in result.rows
                if r["pair"] == pair and r["app"] == app)


def test_fig9_multi_application_pairs(run_experiment_bench):
    result = run_experiment_bench("fig9")

    # batch + batch: EP suffers comparably under both schedulers
    ep = _row(result, "c-ray+EP", "EP")
    assert ep["cfs_multi_pct"] < -20
    assert ep["ule_multi_pct"] < -20

    # mixed pair: ULE shields ferret; blackscholes pays much more
    # than ferret does
    ferret = _row(result, "blackscholes+ferret", "ferret")
    bs = _row(result, "blackscholes+ferret", "blackscholes")
    assert ferret["ule_multi_pct"] > -20
    assert bs["ule_multi_pct"] < ferret["ule_multi_pct"]
    # CFS spreads the cost across both applications
    assert bs["cfs_multi_pct"] < -10

    # interactive + interactive: similar on both schedulers
    apache = _row(result, "apache+sysbench", "apache")
    assert abs(apache["ule_multi_pct"] - apache["cfs_multi_pct"]) < 15
