"""Bench: Fig. 5 — per-core performance of the application suite.

Paper: average difference +1.5 % for ULE; scimark ~-36 % (JVM service
threads get interactive priority over the compute thread); apache
~+40 % (CFS preempts ab on every request).
"""


def test_fig5_single_core_suite(run_experiment_bench):
    result = run_experiment_bench("fig5")
    diffs = result.data["diff_by_app"]
    # scimark: much slower on ULE
    assert diffs["scimark2-(1)"] < -20
    # apache: much faster on ULE
    assert diffs["Apache"] > 15
    # the bulk of the suite is within a few percent
    near_zero = [d for app, d in diffs.items()
                 if not app.startswith("scimark") and app != "Apache"]
    assert sum(1 for d in near_zero if abs(d) < 8) >= len(near_zero) - 2
    # ab preemption counts: huge on CFS, ~zero on ULE
    assert result.data["ab_preemptions_cfs"] > 1000
    assert result.data["ab_preemptions_ule"] < 100
