"""Bench: Fig. 1 — cumulative runtime of fibo and sysbench.

Paper: fibo keeps progressing under CFS; under ULE it stalls for
sysbench's entire execution.
"""

from repro.core.clock import sec


def test_fig1_starvation_curves(run_experiment_bench):
    result = run_experiment_bench("fig1")
    # fibo never stalls longer than a second on CFS...
    assert result.data["cfs_stall_s"] < 1.0
    # ...but stalls for multiple seconds (sysbench's whole run) on ULE
    assert result.data["ule_stall_s"] > 5.0
