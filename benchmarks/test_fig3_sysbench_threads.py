"""Bench: Fig. 3 — single-application starvation under ULE.

Paper: of 128 sysbench threads, ~80 (interactive) execute and ~48
(batch) starve completely; ULE still beats CFS on latency by avoiding
over-subscription.
"""


def test_fig3_single_app_starvation(run_experiment_bench):
    result = run_experiment_bench("fig3")
    # a large batch-classified contingent starves under ULE
    assert result.data["ule_starved"] >= 30
    # CFS starves nobody
    assert result.data["cfs_starved"] == 0
    # the over-subscription cost: CFS latency far above ULE's
    assert result.data["cfs_latency_ms"] > 2 * result.data["ule_latency_ms"]
