"""Bench: Fig. 2 — interactivity penalties over time under ULE.

Paper: fibo's penalty rises to the maximum (batch); sysbench threads'
penalties drop toward 0 and stay below the interactive threshold.
"""


def test_fig2_penalty_classification(run_experiment_bench):
    result = run_experiment_bench("fig2")
    assert result.data["fibo_max_penalty"] > 90
    assert result.data["sysb_steady_penalty"] < 30
