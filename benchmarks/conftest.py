"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure.  Experiments are
deterministic discrete-event simulations, so a single round per bench
is meaningful; ``REPRO_FULL=1`` switches to the full-size (paper-
scale) configurations.
"""

import os

import pytest


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture()
def run_experiment_bench(benchmark, full_mode):
    """Run an experiment driver once under pytest-benchmark and echo
    its report."""
    def runner(name: str):
        from repro.experiments import run_experiment
        result = benchmark.pedantic(
            lambda: run_experiment(name, quick=not full_mode),
            rounds=1, iterations=1)
        print()
        print(result.text)
        return result
    return runner
