"""Shard-executor scaling: cells/sec and simulated events/sec at 1,
2 and 4 workers, appended to ``BENCH_trajectory.json``.

Run by ``make bench-shard``.  The sweep reuses the shard-chaos gate's
cell function (a short deterministic 2-CPU spinner simulation), so
the numbers measure executor overhead — store claims, heartbeats,
checkpoint merges, process forks — over a realistic cell, not a
no-op.  The 1-worker figure is the serial-supervisor path; the
speedup at 2/4 workers is bounded by the machine's core count
(CI boxes with one core will show overhead-only scaling, which is
exactly what the trajectory should record for them).

Entries are keyed ``(sha, smoke="shard")``: re-runs on the same sha
replace their own entry, and ``check_bench.py``'s boolean smoke
entries are never touched (and vice versa).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

TRAJECTORY = os.path.join(HERE, "BENCH_trajectory.json")

#: worker counts to measure (the N in "1/2/N workers")
WORKER_COUNTS = (1, 2, 4)

#: cells per measurement — small enough for a CI smoke stage, large
#: enough that per-cell executor overhead dominates fork cost and
#: that a 4-worker pool stays saturated past its start-up ramp (a
#: doubled-seed chaos sweep; was 64, which understated 4-worker
#: scaling by charging the fork ramp to too few cells)
CELLS = 240

#: measurements per worker count; the median smooths scheduling
#: noise on shared CI boxes
ROUNDS = 3


def _cells():
    from repro.faults.__main__ import shard_chaos_cells
    cells = [dict(cell, sweep="bench-shard")
             for cell in shard_chaos_cells(seeds=30)][:CELLS]
    assert len(cells) == CELLS, "chaos sweep shrank below CELLS"
    return cells


def _measure_all() -> dict:
    """Median of :data:`ROUNDS` runs per worker count (by cells/sec),
    with the per-round throughputs recorded alongside for noise
    inspection.  Rounds are interleaved across worker counts —
    (1,2,4),(1,2,4),... — so a CPU-frequency ramp or thermal phase
    biases every worker count equally instead of whichever happened
    to run last."""
    rounds: dict = {workers: [] for workers in WORKER_COUNTS}
    for _ in range(ROUNDS):
        for workers in WORKER_COUNTS:
            rounds[workers].append(_measure(workers))
    scaling = {}
    for workers in WORKER_COUNTS:
        runs = sorted(rounds[workers],
                      key=lambda r: r["cells_per_sec"])
        result = dict(runs[len(runs) // 2])
        result["rounds_cells_per_sec"] = [r["cells_per_sec"]
                                          for r in runs]
        scaling[str(workers)] = result
    return scaling


def _measure(workers: int) -> dict:
    from repro.experiments.parallel import FailedCell
    from repro.experiments.shard import shard_map
    from repro.faults.__main__ import shard_chaos_cell

    cells = _cells()
    with tempfile.TemporaryDirectory(prefix="bench-shard-") as tmp:
        t0 = time.perf_counter()
        results = shard_map(shard_chaos_cell, cells, workers,
                            store_dir=os.path.join(tmp, "store"))
        elapsed = time.perf_counter() - t0
    failed = sum(1 for r in results if isinstance(r, FailedCell))
    if failed:
        raise SystemExit(f"bench-shard: {failed} cell(s) failed at "
                         f"{workers} worker(s)")
    events = sum(r["events"] for r in results)
    return {
        "cells": len(cells),
        "elapsed_s": round(elapsed, 3),
        "cells_per_sec": round(len(cells) / elapsed, 2),
        "events_per_sec": round(events / elapsed),
    }


def append_trajectory(scaling: dict) -> dict:
    from check_bench import _git_sha

    from repro.core.artifacts import atomic_write_json
    entry = {"sha": _git_sha(), "smoke": "shard",
             "shard_scaling": scaling}
    try:
        with open(TRAJECTORY) as fh:
            trajectory = json.load(fh)
    except (OSError, ValueError):
        trajectory = []
    if not isinstance(trajectory, list):
        trajectory = []
    trajectory = [e for e in trajectory
                  if not (e.get("sha") == entry["sha"]
                          and e.get("smoke") == "shard")]
    trajectory.append(entry)
    atomic_write_json(TRAJECTORY, trajectory)
    return entry


def main() -> int:
    sys.path.insert(0, HERE)  # for check_bench._git_sha
    scaling = _measure_all()
    for workers in WORKER_COUNTS:
        result = scaling[str(workers)]
        rounds = "/".join(f"{r:.0f}"
                          for r in result["rounds_cells_per_sec"])
        print(f"  {workers} worker(s): "
              f"{result['cells_per_sec']:>8.1f} cells/s  "
              f"{result['events_per_sec']:>12,} ev/s  "
              f"({result['cells']} cells, median of "
              f"{ROUNDS}: {rounds})")
    entry = append_trajectory(scaling)
    print(f"bench-shard: trajectory entry recorded for "
          f"sha {entry['sha']} (smoke=shard)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
