"""Bench: the scheduling-latency extension study.

Not a paper figure — it quantifies the design contrast behind several
of them (wakeup preemption and sleeper credit vs absolute interactive
priority without local preemption).
"""


def test_latency_distributions(run_experiment_bench):
    result = run_experiment_bench("latency")
    rows = {(r["sched"], r["cls"]): r for r in result.rows}
    # CFS: interactive wakes preempt instantly
    assert rows[("cfs", "ia")]["p99"] < 0.5  # ms
    # ULE: interactive latency bounded by slice granularity (a few ms)
    assert rows[("ule", "ia")]["p99"] < 16.0
    # the batch hog: fair share on CFS, starved on ULE
    assert result.data["cfs_hog_share"] > 0.3
    assert result.data["ule_hog_share"] < 0.15
