"""Bench: Fig. 8 — multicore performance of the application suite.

Paper: +2.75 % for ULE on average; MG +73 % (FT/UA also positive —
ULE's one-thread-per-core placement); sysbench negative on ULE (up to
13 % of cycles scanning cores in sched_pickcpu).
"""


def test_fig8_multicore_suite(run_experiment_bench):
    result = run_experiment_bench("fig8")
    diffs = result.data["diff_by_app"]
    # the spin-barrier NAS kernels clearly favor ULE
    assert diffs["MG"] > 5
    assert diffs["FT"] > 3
    assert diffs["UA"] > 3
    # sysbench pays for pickcpu scans under ULE
    assert diffs["Sysbench"] < -5
    sysb = next(r for r in result.rows if r["app"] == "Sysbench")
    assert sysb["ule_overhead_pct"] > 3
    assert sysb["cfs_overhead_pct"] < sysb["ule_overhead_pct"]
