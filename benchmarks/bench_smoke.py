"""Bench-smoke gate: heap/wheel digest equality + a throughput floor.

A fast (<~30 s) CI stage that runs a small fixed scenario set under
**both** event-queue implementations and asserts:

1. **Digest equality** — every scenario's canonical schedule digest is
   identical under ``REPRO_EVENTQ=heap`` and ``=wheel``.  This is the
   always-on differential guard for the timing wheel: the seeded fuzz
   suite (``tests/test_eventq_differential.py``) explores breadth,
   this gate pins the paper-shaped scenarios on every push.
2. **A per-profile events/sec floor** — each floor is deliberately
   ~20x below that profile's observed throughput, so hardware
   variance never trips it but an accidental algorithmic regression
   (an O(n) scan in the event queue, a quadratic balance pass) fails
   fast without waiting for the full ``make bench`` + baseline
   comparison.  Per-profile floors matter because the profiles sit at
   very different absolute rates: one shared floor low enough for the
   slowest profile would leave the fastest with a ~100x blind spot.

Exit status: 0 = all green, 1 = digest mismatch or floor violation.
Run via ``make bench-smoke`` (part of ``make verify`` and CI), which
executes the gate **twice**: once with ``REPRO_FAST=0`` (the
instrumented run loop) and once with ``REPRO_FAST=1`` (the
specialized fast loop), so a regression or digest drift confined to
either path still fails.  CI uploads ``BENCH_trajectory.json`` and
the ``make bench-profile`` per-subsystem breakdown so the cross-PR
perf story rides along with every run.
"""

from __future__ import annotations

import os
import sys
import time

#: per-profile events/sec floors, each ~20x below observed smoke
#: throughput on developer hardware (~½ that in CI): only
#: catastrophic regressions trip
FLOORS = {
    "tick_8x16": 5_000,
    "fig6/cfs": 4_000,
    "fig6/ule": 3_000,
}

QUEUE_KINDS = ("heap", "wheel")


def _tick_cell(kind: str):
    """16 spinners on 8 cores under the 1 ms CFS tick, 500 ms."""
    from repro.core import Engine, ThreadSpec, run_forever
    from repro.core.clock import msec
    from repro.core.topology import smp
    from repro.sched import scheduler_factory

    engine = Engine(smp(8), scheduler_factory("cfs"), seed=1,
                    event_queue=kind)
    for i in range(16):
        engine.spawn(ThreadSpec(f"s{i}",
                                lambda ctx: iter([run_forever()]),
                                app="app"))
    engine.run(until=msec(500))
    return engine


def _fig6_cell(sched: str, kind: str):
    """The paper's pin/release load-balancing scenario, truncated."""
    from repro.core.clock import sec
    from repro.experiments.fig6_load_balancing import run_release

    os.environ["REPRO_EVENTQ"] = kind
    try:
        engine, _, _ = run_release(sched, 32, seed=1,
                                   timeout_ns=sec(1))
    finally:
        os.environ.pop("REPRO_EVENTQ", None)
    return engine


SCENARIOS = (
    ("tick_8x16", lambda kind: _tick_cell(kind)),
    ("fig6/cfs", lambda kind: _fig6_cell("cfs", kind)),
    ("fig6/ule", lambda kind: _fig6_cell("ule", kind)),
)


def main() -> int:
    from repro.core.engine import _fast_from_env
    from repro.tracing.digest import schedule_digest

    print(f"bench-smoke: run loop = "
          f"{'fast' if _fast_from_env() else 'instrumented'} "
          f"(REPRO_FAST={os.environ.get('REPRO_FAST', '')!r})")
    failures = []
    for name, build in SCENARIOS:
        digests = {}
        best_eps = 0.0
        for kind in QUEUE_KINDS:
            t0 = time.perf_counter()
            engine = build(kind)
            wall = time.perf_counter() - t0
            digests[kind] = schedule_digest(engine)
            eps = engine.events_processed / wall if wall else 0.0
            best_eps = max(best_eps, eps)
            print(f"  {name:<12} {kind:<6} digest={digests[kind]} "
                  f"{eps:>10,.0f} ev/s")
        if digests["heap"] != digests["wheel"]:
            failures.append(f"{name}: digest mismatch "
                            f"heap={digests['heap']} "
                            f"wheel={digests['wheel']}")
        # best-of-both: the floor gates the algorithm, not the noise
        floor = FLOORS[name]
        if best_eps < floor:
            failures.append(f"{name}: {best_eps:,.0f} ev/s below the "
                            f"{floor:,} floor")
    if failures:
        print("\nbench-smoke: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"bench-smoke: {len(SCENARIOS)} scenarios digest-identical "
          f"under heap and wheel, all above their per-profile floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
