"""Task groups (cgroups) for hierarchical fairness.

Since Linux 2.6.38, CFS is fair between *applications*, not threads
(§2.1): threads of one application are grouped in a cgroup, the cgroup
competes on the timeline as a single entity per CPU, and its threads
compete with each other inside the group's own runqueue.  This is why,
in Table 2, fibo (1 thread) gets ~50 % of a core against sysbench's 80
threads on CFS.

A :class:`TaskGroup` owns one :class:`~repro.cfs.runqueue.CfsRq` and
one group :class:`~repro.cfs.entity.SchedEntity` per CPU.  The group
entity's weight on a CPU is the group's share scaled by how much of the
group's queued load sits on that CPU (the kernel's
``calc_group_shares`` approximation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .entity import SchedEntity
from .runqueue import CfsRq
from .weights import MIN_WEIGHT, NICE_0_LOAD

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .params import CfsTunables


class TaskGroup:
    """A cgroup: a named set of threads with a CPU share."""

    __slots__ = ("name", "parent", "shares", "children", "cfs_rqs",
                 "entities")

    def __init__(self, name: str, ncpus: int, tunables: "CfsTunables",
                 parent: Optional["TaskGroup"] = None,
                 shares: int = NICE_0_LOAD):
        self.name = name
        self.parent = parent
        self.shares = shares
        self.children: list["TaskGroup"] = []
        if parent is None:
            # The root group's runqueues are the per-CPU top levels;
            # they have no owner entity.
            self.cfs_rqs = [CfsRq(cpu, tunables) for cpu in range(ncpus)]
            self.entities: list[Optional[SchedEntity]] = [None] * ncpus
        else:
            parent.children.append(self)
            self.entities = []
            self.cfs_rqs = []
            for cpu in range(ncpus):
                se = SchedEntity(thread=None, weight=shares)
                rq = CfsRq(cpu, tunables, group=self, owner_entity=se)
                se.my_rq = rq
                self.entities.append(se)
                self.cfs_rqs.append(rq)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def rq_on(self, cpu: int) -> CfsRq:
        """This group's runqueue on ``cpu``."""
        return self.cfs_rqs[cpu]

    def entity_on(self, cpu: int) -> Optional[SchedEntity]:
        """This group's entity on ``cpu`` (None for the root)."""
        return self.entities[cpu]

    def total_load_weight(self) -> int:
        """Sum of this group's queued task weight across all CPUs."""
        return sum(rq.load_weight for rq in self.cfs_rqs)

    def group_weight_on(self, cpu: int) -> int:
        """The weight the group entity should have on ``cpu``:
        ``shares * cpu_load / total_load`` (>= MIN_WEIGHT)."""
        total = self.total_load_weight()
        if total <= 0:
            return max(MIN_WEIGHT, self.shares)
        weight = self.shares * self.cfs_rqs[cpu].load_weight // total
        return max(MIN_WEIGHT, min(weight, self.shares))

    def update_group_weight(self, cpu: int) -> None:
        """Recompute and apply the group entity weight on ``cpu``."""
        se = self.entities[cpu]
        if se is None:
            return
        new_weight = self.group_weight_on(cpu)
        if new_weight != se.weight and se.cfs_rq is not None:
            se.cfs_rq.reweight_entity(se, new_weight)
        else:
            se.weight = new_weight
            se.avg.weight = new_weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskGroup {self.name} shares={self.shares}>"
