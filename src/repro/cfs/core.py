"""The Completely Fair Scheduler, as a pluggable scheduler class.

Faithful to §2.1 of the paper:

* weighted fair queueing on vruntime, leftmost-first from a red-black
  tree;
* 48 ms scheduling period stretching to 6 ms x nr beyond 8 threads,
  slice-expiry preemption at every 1 ms tick;
* wakeup preemption only when the woken thread's vruntime is more than
  1 ms (weight-scaled) behind the running thread's;
* fork placement one slice ahead, wakeup placement at no less than
  ``min_vruntime`` (minus the sleeper credit);
* per-application task groups (cgroup fairness);
* PELT load metric, hierarchical load balancing every 4 ms with a 25 %
  NUMA imbalance threshold, and immediate idle balancing.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Iterable, Optional

from ..core.clock import LINUX_TICK_NSEC
from ..core.errors import SchedulerError
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from ..sched.base import SchedClass
from . import balance, placement
from .cgroup import TaskGroup
from .domains import SchedDomain, build_domains
from .entity import SchedEntity
from .params import CfsTunables
from .pelt import (HALF_LIFE_NS, _DECAY_CACHE, _DECAY_CACHE_MAX, _LN2,
                   _SATURATED)
from .peltbank import fold_loads, fold_loads_python, prewarm_decay
from .runqueue import CfsRq
from .weights import calc_delta_fair, nice_to_weight

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core
    from ..core.thread import SimThread


class CfsTaskState:
    """Per-thread CFS state (hangs off ``thread.policy``)."""

    __slots__ = ("se", "group", "last_wakee", "wakee_flips",
                 "wakee_flip_ts")

    def __init__(self, se: SchedEntity, group: TaskGroup):
        self.se = se
        self.group = group
        self.last_wakee: Optional["SimThread"] = None
        self.wakee_flips = 0
        self.wakee_flip_ts = 0


class CfsCpuRq:
    """Per-CPU container: the root timeline plus balancing state."""

    __slots__ = ("root", "domains", "curr_chain")

    def __init__(self, root: CfsRq, domains: list[SchedDomain]):
        self.root = root
        self.domains = domains
        #: the chain of runqueues whose ``curr`` leads to the running
        #: task (root first, task's runqueue last)
        self.curr_chain: list[CfsRq] = []


# schedlint: ignore[missing-slots] -- one instance per engine; fault injection patches methods and attributes
class CfsScheduler(SchedClass):
    """Linux CFS (4.9-era behaviour, the paper's baseline)."""

    name = "cfs"
    tick_ns = LINUX_TICK_NSEC

    def __init__(self, engine: "Engine",
                 tunables: Optional[CfsTunables] = None, **overrides):
        super().__init__(engine)
        tun = tunables or CfsTunables(**overrides)
        if tun.flat_timeline is None:
            # Unset: follow the engine's fast mode (a copy, so a caller
            # sharing one tunables object across engines is unaffected).
            tun = dataclasses.replace(
                tun, flat_timeline=bool(getattr(engine, "fast", False)))
        self.tunables = tun
        ncpus = len(self.machine)
        self.root_group = TaskGroup("root", ncpus, self.tunables)
        self._app_groups: dict[str, TaskGroup] = {}
        self._started = False
        #: per-instant load memo, cpu-indexed (None = not computed at
        #: ``_load_cache_time``); balancing reads the same loads many
        #: times within one event instant.  All three per-cpu caches
        #: below are flat lists rather than dicts: cpu indices are
        #: dense and fixed at construction, and the balancer fold hits
        #: them hundreds of thousands of times per smoke run, where a
        #: list index is measurably cheaper than a dict probe.
        self._load_cache: list = [None] * ncpus
        self._load_cache_time = -1
        #: cpu -> ``(avgs, weights)`` bank (None = stale): the task
        #: ``LoadAvg`` objects in traversal order plus their weights,
        #: valid until the cpu's runnable set (or timeline order, or a
        #: task weight) changes; lets :meth:`cpu_load` skip the
        #: hierarchy walk entirely and hand :func:`~repro.cfs.peltbank
        #: .fold_loads` parallel arrays
        self._avgs_cache: list = [None] * ncpus
        #: cpu -> (load, min_last_update) or None: a cpu whose every
        #: runnable average sits at the saturated fixed point has a
        #: time-invariant load (each term is ``u * weight``); the sum
        #: stays bit-identical until the runnable set changes (cleared
        #: alongside ``_avgs_cache``) or the stalest average leaves the
        #: d >= 0.5 window
        self._sat_loads: list = [None] * ncpus
        #: reusable per-core balance-tick events
        self._lb_events: dict[int, object] = {}
        #: core index -> resolved :class:`CfsCpuRq`; ``core.rq`` is
        #: assigned once at engine init and never rebound, so the
        #: isinstance dispatch in :meth:`cpurq` can be done exactly
        #: once per core
        self._cpurqs: dict[int, CfsCpuRq] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def init_core(self, core: "Core") -> CfsCpuRq:
        domains = build_domains(core.index, self.topology, self.tunables)
        return CfsCpuRq(self.root_group.rq_on(core.index), domains)

    def cpurq(self, core: "Core") -> CfsCpuRq:
        """This class's per-CPU state — ``core.rq`` when CFS runs
        standalone, ``core.rq.fair`` under a class stack.  Memoized per
        core (``core.rq`` is never rebound after engine init)."""
        cached = self._cpurqs.get(core.index)
        if cached is not None:
            return cached
        rq = core.rq
        if rq is None:
            raise SchedulerError(f"cpu{core.index} has no runqueue yet")
        resolved = rq if isinstance(rq, CfsCpuRq) else rq.fair
        self._cpurqs[core.index] = resolved
        return resolved

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        interval = self.tunables.balance_interval_ns
        for core in self.machine.cores:
            stagger = (core.index * interval) // max(1, len(self.machine))
            event = self.engine.events.make_reusable(
                self._balance_tick, core, label=f"cfs-lb:cpu{core.index}")
            self._lb_events[core.index] = event
            self.engine.events.repost(
                event, self.engine.now + interval + stagger)

    def _balance_tick(self, core: "Core") -> None:
        self.engine.events.repost(
            self._lb_events[core.index],
            self.engine.now + self.tunables.balance_interval_ns)
        if not core.online:
            # Offlined by fault injection: keep the chain ticking (the
            # core may come back) but pull no work onto a dead CPU.
            return
        if core.tick_stopped and core.is_idle:
            # The core's scheduler tick is parked (NO_HZ idle) but its
            # balance pass still arrives on schedule — the model of
            # Linux's nohz.idle_balance kick.
            balance.nohz_idle_balance(self, core)
        else:
            balance.periodic_balance(self, core)

    # ------------------------------------------------------------------
    # per-thread state
    # ------------------------------------------------------------------

    def state_of(self, thread: "SimThread") -> CfsTaskState:
        """The thread's CFS state (``thread.policy``)."""
        return thread.policy

    def group_by_path(self, path: str) -> TaskGroup:
        """Resolve (creating as needed) a nested cgroup path such as
        ``"user1/appA"`` — the systemd pattern of §2.1: fairness
        between users, then between one user's applications."""
        group = self.root_group
        prefix = ""
        for part in path.strip("/").split("/"):
            if not part:
                continue
            prefix = f"{prefix}/{part}" if prefix else part
            child = self._app_groups.get(prefix)
            if child is None:
                child = TaskGroup(prefix, len(self.machine),
                                  self.tunables, parent=group)
                self._app_groups[prefix] = child
            group = child
        return group

    def _group_for(self, thread: "SimThread") -> TaskGroup:
        # An explicit cgroup path wins; otherwise autogroup groups by
        # application label; otherwise everything shares the root.
        path = thread.tags.get("cgroup")
        if path:
            return self.group_by_path(path)
        if not self.tunables.autogroup:
            return self.root_group
        return self.group_by_path(thread.app)

    def task_fork(self, parent: Optional["SimThread"],
                  child: "SimThread") -> None:
        weight = nice_to_weight(child.nice)
        se = SchedEntity(child, weight, self.engine.now)
        child.policy = CfsTaskState(se, self._group_for(child))

    def task_dead(self, thread: "SimThread") -> None:
        pass  # the entity was dequeued on exit; nothing to release

    def task_waking(self, thread: "SimThread", slept_ns: int) -> None:
        self.state_of(thread).se.avg.update(self.engine.now, False)

    def task_nice_changed(self, thread: "SimThread") -> None:
        se = self.state_of(thread).se
        new_weight = nice_to_weight(thread.nice)
        if se.cfs_rq is not None and se.on_rq:
            se.cfs_rq.reweight_entity(se, new_weight)
            self._avgs_cache[se.cfs_rq.cpu] = None
            self._sat_loads[se.cfs_rq.cpu] = None
        else:
            se.weight = new_weight
            se.avg.weight = new_weight

    # ------------------------------------------------------------------
    # enqueue / dequeue
    # ------------------------------------------------------------------

    @staticmethod
    def _group_path(group: TaskGroup) -> list[TaskGroup]:
        """Groups from the thread's group up to (excluding) the root."""
        path = []
        cursor = group
        while not cursor.is_root:
            path.append(cursor)
            cursor = cursor.parent
        return path

    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        cpu = core.index
        state = self.state_of(thread)
        se = state.se
        rq = state.group.rq_on(cpu)
        if flags & EnqueueFlags.MIGRATE:
            se.vruntime += rq.min_vruntime
        elif flags & EnqueueFlags.NEW:
            rq.place_entity(se, initial=True)
        elif flags & EnqueueFlags.WAKEUP:
            rq.place_entity(se, initial=False)
        rq.enqueue_entity(se)
        rq.h_nr_running += 1
        for group in self._group_path(state.group):
            gse = group.entity_on(cpu)
            parent_rq = group.parent.rq_on(cpu)
            if not gse.on_rq:
                parent_rq.place_entity(gse, initial=False)
                gse.cfs_rq = parent_rq
                parent_rq.enqueue_entity(gse)
            parent_rq.h_nr_running += 1
            group.update_group_weight(cpu)
        self._load_cache[cpu] = None
        self._avgs_cache[cpu] = None
        self._sat_loads[cpu] = None

    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        cpu = core.index
        state = self.state_of(thread)
        se = state.se
        if flags & DequeueFlags.SLEEP:
            se.avg.update(self.engine.now, True)
        rq = state.group.rq_on(cpu)
        rq.dequeue_entity(se)
        rq.h_nr_running -= 1
        if flags & DequeueFlags.MIGRATE:
            se.vruntime -= rq.min_vruntime
        for group in self._group_path(state.group):
            gse = group.entity_on(cpu)
            parent_rq = group.parent.rq_on(cpu)
            if gse.on_rq and group.rq_on(cpu).nr_running == 0:
                parent_rq.dequeue_entity(gse)
            parent_rq.h_nr_running -= 1
            group.update_group_weight(cpu)
        self._load_cache[cpu] = None
        self._avgs_cache[cpu] = None
        self._sat_loads[cpu] = None

    # ------------------------------------------------------------------
    # picking
    # ------------------------------------------------------------------

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        cpurq = self.cpurq(core)
        # set_next/put_prev move entities between curr and the tree,
        # which reorders queued_entities() traversal.
        self._avgs_cache[core.index] = None
        self._sat_loads[core.index] = None
        for rq in reversed(cpurq.curr_chain):
            if rq.curr is not None:
                rq.put_prev(rq.curr)
        cpurq.curr_chain = []
        if cpurq.root.h_nr_running == 0:
            balance.newidle_balance(self, core)
            if cpurq.root.h_nr_running == 0:
                return None
        rq = cpurq.root
        chain: list[CfsRq] = []
        while True:
            se = rq.pick_first()
            if se is None:
                raise SchedulerError(
                    f"cpu{core.index}: h_nr_running says runnable but "
                    f"{rq} is empty")
            rq.set_next(se)
            chain.append(rq)
            if se.is_task:
                cpurq.curr_chain = chain
                return se.thread
            rq = se.my_rq

    def put_prev(self, core: "Core") -> None:
        """Reinsert the current entity chain into the timelines without
        picking (used when another scheduling class takes over)."""
        cpurq = self.cpurq(core)
        self._avgs_cache[core.index] = None
        self._sat_loads[core.index] = None
        for rq in reversed(cpurq.curr_chain):
            if rq.curr is not None:
                rq.put_prev(rq.curr)
        cpurq.curr_chain = []

    def yield_task(self, core: "Core") -> None:
        chain = self.cpurq(core).curr_chain
        if chain:
            leaf = chain[-1]
            leaf.skip = leaf.curr

    # ------------------------------------------------------------------
    # accounting, ticks, preemption
    # ------------------------------------------------------------------

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        for rq in self.cpurq(core).curr_chain:
            rq.update_curr(delta_ns)
        self.state_of(thread).se.avg.update(self.engine.now, True)

    def task_tick(self, core: "Core") -> None:
        min_gran = self.tunables.min_granularity_ns
        for rq in reversed(self.cpurq(core).curr_chain):
            se = rq.curr
            if se is None:
                continue
            # _check_preempt_tick inlined: this runs per level on
            # every 1 ms tick.
            ideal = rq.sched_slice(se)
            slice_exec = se.slice_exec
            if slice_exec > ideal:
                core.need_resched = True
                continue
            if slice_exec < min_gran:
                continue
            first = rq.pick_first()
            if first is not None and \
                    se.vruntime - first.vruntime > ideal:
                core.need_resched = True

    def needs_tick(self, core: "Core") -> bool:
        # An idle CFS core has no tick work: PELT decays lazily (the
        # continuous form needs no periodic folding) and periodic
        # balancing runs from its own event chain, which keeps firing
        # on parked cores as a nohz kick (see _balance_tick).
        return not core.is_idle

    def make_tick_hook(self, core: "Core"):
        """Fused CFS tick (see ``SchedClass.make_tick_hook``).

        Inlines ``Engine._tick`` → ``Engine._update_curr`` →
        :meth:`update_curr` → :meth:`task_tick` into one closure over
        per-core state.  Every statement mirrors the generic chain
        line-for-line (same order, same arithmetic), so the schedule
        is bit-identical — the fusion only removes call/dispatch
        overhead from the hottest periodic path.
        """
        from ..core.engine import RUN_FOREVER
        engine = self.engine
        events = engine._sink
        tick_ns = self.tick_ns
        cpurq = self.cpurq(core)
        min_gran = self.tunables.min_granularity_ns

        def tick(_core: "Core") -> None:
            if not core.online:
                return
            curr = core.current
            now = engine.now
            if curr is None:
                if engine.tickless:
                    # needs_tick() is False for every idle CFS core
                    core.tick_stopped = True
                    engine._nr_stopped_ticks += 1
                    engine.metrics.incr("engine.tick_stops")
                    return
                events.repost(core.tick_event, now + tick_ns)
                # CFS has no idle_tick work; keep the generic tick's
                # post-idle_tick dispatch check.
                if core.need_resched:
                    engine._dispatch(core)
                return
            events.repost(core.tick_event, now + tick_ns)
            # -- Engine._update_curr, inlined --
            delta = now - core._curr_account_start
            core._curr_account_start = now
            if delta > 0:
                core.account_to_now()
                curr.total_runtime += delta
                curr.last_ran = now
                remaining = curr.run_remaining
                if remaining is not None and remaining is not RUN_FOREVER:
                    speed = core._curr_speed
                    progress = delta if speed == 1.0 \
                        else int(delta * speed)
                    remaining -= progress
                    curr.run_remaining = remaining if remaining > 0 else 0
                # -- update_curr, inlined --
                for rq in cpurq.curr_chain:
                    rq.update_curr(delta)
                curr.policy.se.avg.update(now, True)
            # -- task_tick, inlined --
            for rq in reversed(cpurq.curr_chain):
                se = rq.curr
                if se is None:
                    continue
                ideal = rq.sched_slice(se)
                slice_exec = se.slice_exec
                if slice_exec > ideal:
                    core.need_resched = True
                    continue
                if slice_exec < min_gran:
                    continue
                first = rq.pick_first()
                if first is not None and \
                        se.vruntime - first.vruntime > ideal:
                    core.need_resched = True
            if core.need_resched:
                engine._dispatch(core)
            elif core.completion_event is not None:
                engine._cancel_completion(core)
                engine._arm_completion(core)

        return tick

    def epoch_prefold(self, cores: list, now: int) -> None:
        """Epoch-tick prework (see ``SchedClass.epoch_prefold``): the
        fused tick of every core in the group is about to decay its
        running task's PELT average to the shared instant ``now``, so
        each distinct decay factor is evaluated once here, through the
        shared ``math.exp`` cache — bit-identical to the per-core
        fills it fronts (:func:`~repro.cfs.peltbank.prewarm_decay`)."""
        deltas = []
        state_of = self.state_of
        for core in cores:
            curr = core.current
            if curr is None:
                continue
            avg = state_of(curr).se.avg
            delta = now - avg.last_update
            if delta > 0 and not (avg.util_avg >= _SATURATED
                                  and delta < HALF_LIFE_NS):
                deltas.append(delta)
        if deltas:
            prewarm_decay(deltas)

    def check_preempt_wakeup(self, core: "Core",
                             thread: "SimThread") -> None:
        curr = core.current
        if curr is None or not curr.is_running:
            core.need_resched = True
            return
        if not self.tunables.wakeup_preemption:
            return
        curr_se = self.state_of(curr).se
        woken_se = self.state_of(thread).se
        matched = _find_matching(curr_se, woken_se)
        if matched is None:
            return
        curr_m, woken_m = matched
        gran = calc_delta_fair(self.tunables.wakeup_granularity_ns,
                               woken_m.weight)
        if curr_m.vruntime - woken_m.vruntime > gran:
            core.need_resched = True
            self.engine.metrics.incr("cfs.wakeup_preemptions")

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        return placement.select_task_rq_fair(
            self, thread, is_fork=bool(flags & SelectFlags.FORK),
            waker=waker)

    # ------------------------------------------------------------------
    # load queries & introspection
    # ------------------------------------------------------------------

    def weight_of(self, thread: "SimThread") -> int:
        """The thread's load weight (derived from its nice value)."""
        return self.state_of(thread).se.weight

    def vruntime_of(self, thread: "SimThread") -> int:
        """The thread's current virtual runtime, in weighted ns.

        Only comparable between threads queued on the same
        :class:`CfsRq` — cross-runqueue vruntimes live on different
        virtual clocks.
        """
        return self.state_of(thread).se.vruntime

    def cfs_rqs(self, core: "Core"):
        """Iterate every :class:`CfsRq` in ``core``'s cgroup hierarchy
        (root first).  Differential-oracle hook: fairness bounds such
        as the vruntime lag bound are per-runqueue properties."""
        stack = [self.cpurq(core).root]
        while stack:
            rq = stack.pop()
            yield rq
            entities = [se for _, se in rq.tree.items()]
            if rq.curr is not None:
                entities.append(rq.curr)
            for se in entities:
                if not se.is_task and se.my_rq is not None:
                    stack.append(se.my_rq)

    def thread_load(self, thread: "SimThread") -> float:
        """The thread's current PELT load contribution."""
        return self.state_of(thread).se.avg.peek(self.engine.now, True)

    def cpu_load(self, cpu: int) -> float:
        """Sum of runnable tasks' PELT loads on ``cpu`` (memoized per
        event instant, invalidated on enqueue/dequeue).

        The balancing hot path: instead of re-walking the runqueue
        hierarchy every pass, the per-task banks (``_avgs_cache``,
        invalidated on any runnable-set, timeline-order or weight
        change) feed :func:`~repro.cfs.peltbank.fold_loads`, whose
        arithmetic is expression-for-expression identical to
        ``LoadAvg.peek`` so the result is bit-identical.
        """
        return self.loads_for((cpu,))[cpu]

    def _build_bank(self, cpu: int) -> tuple:
        """Collect ``cpu``'s runnable-task ``LoadAvg`` bank (see
        ``_avgs_cache``)."""
        avgs = []
        weights = []
        pairs = []
        core = self.machine.cores[cpu]
        for t in self.runnable_threads(core):
            avg = t.policy.se.avg
            avgs.append(avg)
            weights.append(avg.weight)
            pairs.append((avg, avg.weight))
        # Third element pre-zips the parallel arrays for the inlined
        # python fold in loads_for (one tuple alloc here instead of a
        # zip object per balancing fold).
        bank = (avgs, tuple(weights), pairs)
        self._avgs_cache[cpu] = bank
        return bank

    def loads_for(self, cpus: Iterable[int]) -> list:
        """Batch form of :meth:`cpu_load` for the balancer: validate
        the per-instant memo once, fill the missing entries in one
        tight loop, and return the live cpu-indexed memo list (entries
        outside ``cpus`` may be ``None``).

        With the pure-python kernel the bank fold from
        :func:`~repro.cfs.peltbank.fold_loads_python` is inlined here —
        one loop per balancing pass instead of one call per CPU; keep
        the two bodies in sync (``tests/test_peltbank.py`` pins them
        against each other).  A non-default kernel (the numpy probe)
        is still dispatched per bank.
        """
        now = self.engine.now
        cache = self._load_cache
        if self._load_cache_time != now:
            self._load_cache_time = now
            self._load_cache = cache = [None] * len(cache)
        avgs_cache = self._avgs_cache
        sat_loads = self._sat_loads
        half_life = HALF_LIFE_NS
        if fold_loads is not fold_loads_python:
            fold = fold_loads
            for cpu in cpus:
                if cache[cpu] is not None:
                    continue
                sat = sat_loads[cpu]
                if sat is not None and now - sat[1] < half_life:
                    # time-invariant saturated sum, still valid
                    cache[cpu] = sat[0]
                    continue
                bank = avgs_cache[cpu]
                if bank is None:
                    bank = self._build_bank(cpu)
                load, saturated, min_lu = fold(bank[0], bank[1], now)
                cache[cpu] = load
                if saturated:
                    sat_loads[cpu] = (load, min_lu)
            return cache
        exp = math.exp
        decay_cache = _DECAY_CACHE
        cache_get = decay_cache.get
        sat_point = _SATURATED
        build_bank = self._build_bank
        for cpu in cpus:
            if cache[cpu] is not None:
                continue
            sat = sat_loads[cpu]
            if sat is not None and now - sat[1] < half_life:
                # Every average on this cpu sat at the saturated fixed
                # point when the sum was stored, and the stalest of
                # them is still within a half-life: each per-avg term
                # is the time-invariant ``u * weight`` (see
                # pelt._SATURATED), so the stored sum is bit-identical
                # to recomputing it now.
                cache[cpu] = sat[0]
                continue
            bank = avgs_cache[cpu]
            if bank is None:
                bank = build_bank(cpu)
            load = 0.0
            saturated = True
            min_lu = now
            for avg, weight in bank[2]:
                lu = avg.last_update
                delta = now - lu
                u = avg.util_avg
                if u >= sat_point and delta < half_life:
                    # saturated fixed point, d >= 0.5: the decayed
                    # value is u itself, bit-for-bit
                    load += u * weight
                    if lu < min_lu:
                        min_lu = lu
                elif delta <= 0:
                    load += u * weight
                    saturated = False
                else:
                    d = cache_get(delta)
                    if d is None:
                        # continuous-form PELT decay: delta/half_life is a dimensionless ratio
                        d = exp(-_LN2 * delta / half_life)
                        if len(decay_cache) >= _DECAY_CACHE_MAX:
                            decay_cache.clear()
                        decay_cache[delta] = d
                    load += (u * d + (1.0 - d)) * weight
                    saturated = False
            cache[cpu] = load
            if saturated:
                sat_loads[cpu] = (load, min_lu)
        return cache

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        out: list["SimThread"] = []
        self._collect_tasks(self.cpurq(core).root, out)
        return out

    def _collect_tasks(self, rq: CfsRq, out: list) -> None:
        for se in rq.queued_entities():
            if se.is_task:
                out.append(se.thread)
            else:
                self._collect_tasks(se.my_rq, out)

    def nr_runnable(self, core: "Core") -> int:
        """Hierarchical runnable-task count (``h_nr_running``)."""
        return self.cpurq(core).root.h_nr_running


def _find_matching(se_a: SchedEntity, se_b: SchedEntity):
    """Walk two entity chains up to the level where they share a
    runqueue, so their vruntimes are comparable (the kernel's
    ``find_matching_se``).  Returns None when either leaves the
    hierarchy (different CPUs)."""
    chain_a = list(se_a.chain_up())
    chain_b = list(se_b.chain_up())
    ia, ib = len(chain_a) - 1, len(chain_b) - 1
    # Walk down from the roots while the runqueues keep matching.
    if chain_a[ia].cfs_rq is not chain_b[ib].cfs_rq:
        return None
    while ia > 0 and ib > 0 and \
            chain_a[ia - 1].cfs_rq is chain_b[ib - 1].cfs_rq:
        ia -= 1
        ib -= 1
    return chain_a[ia], chain_b[ib]
