"""A flat sorted-array CFS timeline (the red-black tree's fast twin).

Keeps ``(vruntime, tie)`` keys in a sorted list with a parallel value
list: insert/remove locate the slot by binary search and shift with
``list.insert`` / ``del`` (a C memmove).  At the per-runqueue depths
the benchmark profiles produce (tens of entities), the memmove beats
the pointer-chasing red-black fixups by a wide margin; the O(n) shift
only overtakes the tree's O(log n) at queue depths in the hundreds,
which is why the backend is selected per run (``CfsTunables
.flat_timeline`` / the engine's fast mode) instead of replacing the
tree — see docs/performance.md.

Both backends maintain ``leftmost_value`` as a plain attribute (the
hot read on the tick and min_vruntime paths) and expose the same
ordered-map surface, so :class:`~repro.cfs.runqueue.CfsRq` is
representation-blind and the schedule is digest-identical either way
(``tests/test_flat_timeline.py`` pins this differentially).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator


class FlatTimeline:
    """Sorted parallel key/value arrays with a cached leftmost value."""

    __slots__ = ("_keys", "_values", "leftmost_value")

    def __init__(self):
        self._keys: list = []
        self._values: list = []
        #: value of the smallest key (None when empty) — maintained,
        #: not computed, so hot paths read one attribute
        self.leftmost_value: Any = None

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, key) -> bool:
        keys = self._keys
        idx = bisect_left(keys, key)
        return idx < len(keys) and keys[idx] == key

    # ------------------------------------------------------------------
    # public operations (the RBTree surface)
    # ------------------------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert ``key -> value``; raises on duplicate keys."""
        keys = self._keys
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            raise KeyError(f"duplicate key {key!r}")
        keys.insert(idx, key)
        self._values.insert(idx, value)
        if idx == 0:
            self.leftmost_value = value

    def remove(self, key) -> Any:
        """Remove ``key`` and return its value; raises KeyError if
        absent."""
        keys = self._keys
        idx = bisect_left(keys, key)
        if idx >= len(keys) or keys[idx] != key:
            raise KeyError(key)
        del keys[idx]
        value = self._values.pop(idx)
        if idx == 0:
            values = self._values
            self.leftmost_value = values[0] if values else None
        return value

    def min_key(self):
        """Smallest key, or None when empty."""
        keys = self._keys
        return keys[0] if keys else None

    def min_value(self):
        """Value of the smallest key (the leftmost entity)."""
        return self.leftmost_value

    def second_value(self):
        """Value of the second-smallest key, or None."""
        values = self._values
        return values[1] if len(values) > 1 else None

    def items(self) -> Iterator[tuple]:
        """In-order ``(key, value)`` iteration."""
        return zip(self._keys, self._values)

    def values(self) -> Iterator[Any]:
        """In-order value iteration."""
        return iter(self._values)

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert sortedness and cache coherence; raises on violation."""
        keys = self._keys
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys)), "duplicate keys"
        assert len(keys) == len(self._values)
        expected = self._values[0] if self._values else None
        assert self.leftmost_value is expected, "leftmost cache stale"
