"""Linux CFS (Completely Fair Scheduler), as described in §2.1 of the
paper: vruntime fair queueing, cgroup fairness, PELT load tracking, and
hierarchical load balancing."""

from .cgroup import TaskGroup
from .core import CfsScheduler, CfsTaskState
from .entity import SchedEntity
from .params import CfsTunables
from .pelt import LoadAvg
from .rbtree import RBTree
from .runqueue import CfsRq
from .weights import NICE_0_LOAD, calc_delta_fair, nice_to_weight

__all__ = [
    "CfsScheduler",
    "CfsTaskState",
    "CfsTunables",
    "CfsRq",
    "SchedEntity",
    "TaskGroup",
    "RBTree",
    "LoadAvg",
    "NICE_0_LOAD",
    "nice_to_weight",
    "calc_delta_fair",
]
