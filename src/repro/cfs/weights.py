"""The kernel's nice-to-weight table.

CFS turns a nice value into a load weight such that each nice step is a
~10 % CPU share change (a factor of ~1.25).  This is the exact
``sched_prio_to_weight`` table from ``kernel/sched/core.c`` (Linux 4.9,
the version the paper compares against).
"""

from __future__ import annotations

#: weight of a nice-0 thread; all shares are relative to this
NICE_0_LOAD = 1024

#: minimum weight of a (group) entity
MIN_WEIGHT = 2

# Index 0 is nice -20, index 39 is nice +19.
_PRIO_TO_WEIGHT = (
    88761, 71755, 56483, 46273, 36291,   # -20 .. -16
    29154, 23254, 18705, 14949, 11916,   # -15 .. -11
    9548, 7620, 6100, 4904, 3906,        # -10 .. -6
    3121, 2501, 1991, 1586, 1277,        # -5 .. -1
    1024, 820, 655, 526, 423,            # 0 .. 4
    335, 272, 215, 172, 137,             # 5 .. 9
    110, 87, 70, 56, 45,                 # 10 .. 14
    36, 29, 23, 18, 15,                  # 15 .. 19
)


#: memoized nice -> weight mapping (dict lookup beats the range check
#: plus offset indexing on the fork/renice path)
_NICE_TO_WEIGHT = {nice: _PRIO_TO_WEIGHT[nice + 20]
                   for nice in range(-20, 20)}

#: memoized weight -> 1/weight, normalised to NICE_0_LOAD (the
#: kernel's ``sched_prio_to_wmult`` idea).  For float consumers only —
#: integer vruntime scaling must keep using the exact floor division
#: in :func:`calc_delta_fair`.
INV_WEIGHT = {w: NICE_0_LOAD / w for w in _PRIO_TO_WEIGHT}


def nice_to_weight(nice: int) -> int:
    """Load weight for a nice level in [-20, 19]."""
    try:
        return _NICE_TO_WEIGHT[nice]
    except KeyError:
        raise ValueError(f"nice out of range: {nice}") from None


def calc_delta_fair(delta_ns: int, weight: int) -> int:
    """Scale an execution delta into vruntime units.

    A nice-0 thread's vruntime advances at wall speed; heavier threads
    advance slower, lighter ones faster (``delta * NICE_0_LOAD /
    weight``), which is exactly how CFS divides the CPU by weight.
    """
    if weight == NICE_0_LOAD:
        return delta_ns
    return delta_ns * NICE_0_LOAD // weight
