"""Scheduling entities: what CFS actually queues.

A :class:`SchedEntity` is either a *task* entity (wrapping a
:class:`~repro.core.thread.SimThread`) or a *group* entity (standing in
for a whole task group on one CPU; its ``my_rq`` holds the group's own
runqueue on that CPU).  Entities form a parent chain from a task up to
the root runqueue, which is how cgroup fairness composes.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from .pelt import LoadAvg
from .weights import NICE_0_LOAD, nice_to_weight

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.thread import SimThread
    from .runqueue import CfsRq

_IDS = itertools.count(1)


class SchedEntity:
    """One schedulable unit in a CFS runqueue."""

    __slots__ = ("id", "thread", "my_rq", "cfs_rq", "vruntime", "weight",
                 "sum_exec", "slice_exec", "avg", "on_rq", "exec_start")

    def __init__(self, thread: Optional["SimThread"] = None,
                 weight: int = NICE_0_LOAD, now: int = 0):
        self.id = next(_IDS)
        #: the task, for task entities; None for group entities
        self.thread = thread
        #: the runqueue this group entity *owns* (group entities only)
        self.my_rq: Optional["CfsRq"] = None
        #: the runqueue this entity is (or was) queued on
        self.cfs_rq: Optional["CfsRq"] = None
        self.vruntime = 0
        self.weight = weight
        #: total ns executed
        self.sum_exec = 0
        #: ns executed since last picked (for slice-expiry checks)
        self.slice_exec = 0
        self.avg = LoadAvg(weight, now)
        self.on_rq = False
        self.exec_start = now

    @property
    def is_task(self) -> bool:
        return self.thread is not None

    @property
    def key(self) -> tuple:
        """Timeline key: vruntime ordered, entity id as tiebreak."""
        return (self.vruntime, self.id)

    @property
    def parent_entity(self) -> Optional["SchedEntity"]:
        """The group entity representing this entity's runqueue one
        level up (None at the root)."""
        if self.cfs_rq is None:
            return None
        return self.cfs_rq.owner_entity

    def chain_up(self):
        """Yield this entity and each ancestor group entity."""
        se: Optional[SchedEntity] = self
        while se is not None:
            yield se
            se = se.parent_entity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.thread.name if self.thread else f"group#{self.id}"
        return f"<se {label} vrt={self.vruntime}>"


def task_weight(thread: "SimThread") -> int:
    """Load weight for a thread from its nice value."""
    return nice_to_weight(thread.nice)
