"""Scheduling domains: CFS's hierarchical view of the topology.

Each CPU owns a chain of domains from the tightest sharing level (LLC)
to the whole machine.  Periodic balancing walks this chain: small
domains are balanced often with a small imbalance tolerance, large
(NUMA-crossing) domains rarely and only for big imbalances — the
paper's "the greater the distance between two cores, the higher the
imbalance has to be" (§2.1, §6.1).

Degenerate levels (same span as the level below) are elided, like the
kernel's ``sd_degenerate`` — on the paper's Opteron the LLC and
NUMA-node levels coincide, leaving two domains per CPU: intra-node and
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.topology import Topology
    from .params import CfsTunables


@dataclass
class SchedDomain:
    """One balancing level for one CPU."""

    cpu: int
    name: str
    #: all CPUs this domain spans
    span: frozenset[int]
    #: the balancing groups inside the span (child-level spans)
    groups: tuple[frozenset[int], ...]
    #: how often this domain is balanced
    interval_ns: int
    #: busiest/local load ratio (x100) required to act
    imbalance_pct: int
    #: last time this domain was balanced (mutable bookkeeping)
    last_balance: int = 0
    #: consecutive balance attempts that moved nothing
    nr_balance_failed: int = 0

    def __post_init__(self):
        #: span in a fixed iteration order, index-paired with
        #: ``skip_sig`` (frozenset iteration is stable for a given
        #: object, but pinning a tuple makes the pairing explicit)
        self.span_cpus = tuple(self.span)
        #: the saturated-load entries (by identity) of the last
        #: balance pass over this domain that took no action; while
        #: every entry is still live the pass would replay
        #: bit-identically, so it can be skipped outright (see
        #: :func:`repro.cfs.balance.load_balance`)
        self.skip_sig = None

    def local_group(self) -> frozenset[int]:
        """The group containing this domain's CPU."""
        for group in self.groups:
            if self.cpu in group:
                return group
        raise ValueError(f"cpu {self.cpu} not in any group of {self.name}")


#: blueprint memo: (id(topology), balancing tunables) -> (topology,
#: {cpu: immutable constructor rows}).  Topologies are interned by
#: :mod:`repro.core.topology`, so campaign cells sharing a machine
#: shape hit the same entry and every engine after the first skips the
#: level/partition walk entirely; each engine still gets *fresh*
#: ``SchedDomain`` objects (last_balance / nr_balance_failed are
#: per-run state).  The stored topology reference both pins the id
#: against reuse and is identity-checked before trusting the entry.
_BLUEPRINTS: dict = {}
_BLUEPRINTS_MAX = 64


def build_domains(cpu: int, topology: "Topology",
                  tunables: "CfsTunables") -> list[SchedDomain]:
    """Build the non-degenerate domain chain for one CPU, smallest
    first.  A domain's groups are the partition of its span by the next
    finer (non-degenerate) level; the finest partition is single CPUs.

    Memoized per (topology, balancing tunables): the chain *shape* is
    a pure function of those, so repeat engines (campaign cells, bench
    rounds) only pay fresh-object construction.
    """
    key = (id(topology), tunables.balance_interval_ns,
           tunables.imbalance_pct_llc, tunables.imbalance_pct_numa)
    entry = _BLUEPRINTS.get(key)
    if entry is None or entry[0] is not topology:
        if len(_BLUEPRINTS) >= _BLUEPRINTS_MAX:
            _BLUEPRINTS.clear()
        entry = _BLUEPRINTS[key] = (topology, {})
    rows = entry[1].get(cpu)
    if rows is None:
        rows = entry[1][cpu] = tuple(
            (d.cpu, d.name, d.span, d.groups, d.interval_ns,
             d.imbalance_pct)
            for d in _build_domains(cpu, topology, tunables))
    return [SchedDomain(*row) for row in rows]


def _build_domains(cpu: int, topology: "Topology",
                   tunables: "CfsTunables") -> list[SchedDomain]:
    """The uncached walk behind :func:`build_domains`."""
    domains: list[SchedDomain] = []
    child_partition: list[frozenset[int]] = [
        frozenset({c}) for c in range(topology.ncpus)]
    prev_span: frozenset[int] = frozenset({cpu})
    level_idx = 0
    for level in topology.levels:
        span = topology.group_of(level.name, cpu)
        if span == prev_span:
            # Degenerate (e.g. LLC == NUMA node): skip, but remember
            # this level as the partition for the next one up.
            child_partition = list(level.groups)
            continue
        groups = tuple(sorted((g for g in child_partition if g <= span),
                              key=min))
        crosses_numa = (topology.has_level("numa")
                        and not span <= topology.node_of(cpu))
        pct = (tunables.imbalance_pct_numa if crosses_numa
               else tunables.imbalance_pct_llc)
        domains.append(SchedDomain(
            cpu=cpu,
            name=level.name,
            span=span,
            groups=groups,
            interval_ns=tunables.balance_interval_ns * (2 ** level_idx),
            imbalance_pct=pct,
        ))
        prev_span = span
        child_partition = list(level.groups)
        level_idx += 1
    return domains
