"""Batched PELT folding: the balancer's array-of-struct load layer.

The CFS balancer sums the decayed ``LoadAvg`` of every runnable task
on a CPU many times per balancing pass.  :class:`~repro.cfs.core
.CfsScheduler` keeps, per CPU, a *bank*: the task ``LoadAvg`` objects
in traversal order plus a parallel tuple of their weights, valid until
the runnable set (or timeline order, or a task weight) changes.  This
module owns the tight fold over one bank.

The fold is kept expression-for-expression identical to
``LoadAvg.peek`` so every term — and therefore the sequential sum —
is **bit-identical** to walking the hierarchy and peeking each average
(the property the golden-trace and differential gates pin down):

* the decay factor comes from the shared ``pelt._DECAY_CACHE``
  (``exp`` on the same integer delta yields the same float);
* a saturated average inside the ``d >= 0.5`` window contributes the
  time-invariant ``u * weight`` (see ``pelt._SATURATED``);
* terms accumulate left-to-right (float addition is order-sensitive).

An optional numpy kernel (``REPRO_NUMPY=1`` and numpy importable)
vectorizes the term computation and the running sum.  It stays
bit-identical by construction: elementwise IEEE-754 multiply/add
round exactly like the scalar ops, decay factors still come from the
``math.exp``-filled cache (``np.exp`` is *not* guaranteed to match
``math.exp`` bit-for-bit), and the reduction uses ``np.cumsum`` —
whose prefix sums are sequential by definition — never the pairwise
``np.sum``.  It is off by default because at smoke scale (a handful
of runnable tasks per CPU) the array round-trip costs about what it
saves; the probe exists for hackbench-scale banks and is verified
digest-identical either way (``tests/test_peltbank.py``).
"""

from __future__ import annotations

import math
import os

from .pelt import (HALF_LIFE_NS, _DECAY_CACHE, _DECAY_CACHE_MAX, _LN2,
                   _SATURATED)


def numpy_enabled() -> bool:
    """``REPRO_NUMPY`` truthiness AND numpy importable (feature probe)."""
    value = os.environ.get("REPRO_NUMPY", "")
    if value.strip().lower() in ("", "0", "false", "no", "off"):
        return False
    try:  # pragma: no cover - exercised only where numpy exists
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is normally present
        return False
    return True


def fold_loads_python(avgs, weights, now):
    """Fold one bank: returns ``(load, saturated, min_last_update)``.

    ``load`` is the weighted sum of the decayed averages at ``now``;
    ``saturated`` says every average sat at the fixed point (so the
    caller may memo the sum as time-invariant) and ``min_last_update``
    is the stalest clock among those saturated terms.
    """
    load = 0.0
    saturated = True
    min_lu = now
    exp = math.exp
    decay_cache = _DECAY_CACHE
    cache_get = decay_cache.get
    sat_point = _SATURATED
    half_life = HALF_LIFE_NS
    for avg, weight in zip(avgs, weights):
        lu = avg.last_update
        delta = now - lu
        u = avg.util_avg
        if u >= sat_point and delta < half_life:
            # saturated fixed point, d >= 0.5: the decayed value is u
            # itself, bit-for-bit (see pelt._SATURATED)
            load += u * weight
            if lu < min_lu:
                min_lu = lu
        elif delta <= 0:
            load += u * weight
            saturated = False
        else:
            d = cache_get(delta)
            if d is None:
                # continuous-form PELT decay: delta/half_life is a dimensionless ratio
                d = exp(-_LN2 * delta / half_life)
                if len(decay_cache) >= _DECAY_CACHE_MAX:
                    decay_cache.clear()
                decay_cache[delta] = d
            load += (u * d + (1.0 - d)) * weight
            saturated = False
    return load, saturated, min_lu


def fold_loads_numpy(avgs, weights, now):
    """Numpy form of :func:`fold_loads_python` (same contract).

    Bit-identical: per-element ``(u*d + (1-d)) * w`` in IEEE-754
    elementwise ops (a saturated or zero-delta entry uses ``d = 1.0``,
    whose term ``(u*1.0 + 0.0) * w`` equals the scalar path's
    ``u * w`` exactly), decay factors gathered through the shared
    ``math.exp`` cache, and a sequential-prefix ``cumsum`` reduction.
    """
    import numpy as np

    n = len(avgs)
    if n == 0:
        return 0.0, True, now
    u_arr = np.empty(n)
    d_arr = np.empty(n)
    w_arr = np.asarray(weights, dtype=float)
    saturated = True
    min_lu = now
    exp = math.exp
    decay_cache = _DECAY_CACHE
    cache_get = decay_cache.get
    sat_point = _SATURATED
    half_life = HALF_LIFE_NS
    for i, avg in enumerate(avgs):
        lu = avg.last_update
        delta = now - lu
        u_arr[i] = avg.util_avg
        if u_arr[i] >= sat_point and delta < half_life:
            d_arr[i] = 1.0
            if lu < min_lu:
                min_lu = lu
        elif delta <= 0:
            d_arr[i] = 1.0
            saturated = False
        else:
            d = cache_get(delta)
            if d is None:
                # continuous-form PELT decay: delta/half_life is a dimensionless ratio
                d = exp(-_LN2 * delta / half_life)
                if len(decay_cache) >= _DECAY_CACHE_MAX:
                    decay_cache.clear()
                decay_cache[delta] = d
            d_arr[i] = d
            saturated = False
    terms = (u_arr * d_arr + (1.0 - d_arr)) * w_arr
    load = float(np.cumsum(terms)[-1])
    return load, saturated, min_lu


def prewarm_decay(deltas) -> None:
    """Batch-fill the shared decay cache for a set of integer deltas.

    The epoch-batched tick kernel (``Engine._pop_next`` →
    ``SchedClass.epoch_prefold``) calls this once per multi-core tick
    instant with the deltas the epoch group is about to decay by, so
    each distinct transcendental is evaluated once instead of once per
    (core, entity).  Pure cache warm and therefore digest-neutral:
    factors come from the same ``math.exp`` expression as
    :func:`repro.cfs.pelt.decay_factor` (never ``np.exp``), so later
    lookups are bit-identical whether or not the prewarm ran.
    """
    exp = math.exp
    decay_cache = _DECAY_CACHE
    half_life = HALF_LIFE_NS
    for delta in deltas:
        if delta <= 0 or delta in decay_cache:
            continue
        if len(decay_cache) >= _DECAY_CACHE_MAX:
            decay_cache.clear()
        # continuous-form PELT decay: delta/half_life is a
        # dimensionless ratio
        decay_cache[delta] = exp(-_LN2 * delta / half_life)


#: the active fold kernel, selected once at import (the probe is an
#: environment decision, not a per-call branch)
fold_loads = fold_loads_numpy if numpy_enabled() else fold_loads_python
