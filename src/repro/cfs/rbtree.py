"""A red-black tree ordered timeline, as CFS uses for its runqueue.

CFS keeps runnable entities sorted by ``(vruntime, tid)`` in a
red-black tree and always runs the leftmost.  This is a faithful
implementation (insert/delete with the classic fixups, cached leftmost
node) rather than a sorted list, both for fidelity and because the
O(log n) bound matters for the hackbench-scale simulations (tens of
thousands of threads).

Keys are ``(vruntime, tie)`` tuples; values are opaque.  Duplicate full
keys are rejected — CFS breaks vruntime ties with the entity pointer,
we use the tid, so full keys are unique by construction.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None
        self.color = RED


class RBTree:
    """Red-black tree with a cached leftmost node."""

    __slots__ = ("root", "_leftmost", "_nodes", "leftmost_value")

    def __init__(self):
        self.root: Optional[_Node] = None
        self._leftmost: Optional[_Node] = None
        self._nodes: dict[Any, _Node] = {}
        #: value of the leftmost node (None when empty) — maintained,
        #: not computed, so the tick/min_vruntime hot paths read one
        #: attribute (the same seam FlatTimeline provides)
        self.leftmost_value: Any = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return self.root is not None

    def __contains__(self, key) -> bool:
        return key in self._nodes

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert ``key -> value``; raises on duplicate keys."""
        if key in self._nodes:
            raise KeyError(f"duplicate key {key!r}")
        node = _Node(key, value)
        self._nodes[key] = node
        # ordinary BST insert
        parent = None
        cursor = self.root
        leftmost = True
        while cursor is not None:
            parent = cursor
            if key < cursor.key:
                cursor = cursor.left
            else:
                cursor = cursor.right
                leftmost = False
        node.parent = parent
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        if leftmost:
            self._leftmost = node
            self.leftmost_value = value
        self._insert_fixup(node)

    def remove(self, key) -> Any:
        """Remove ``key`` and return its value; raises KeyError if
        absent."""
        node = self._nodes.pop(key)
        value = node.value
        if self._leftmost is node:
            succ = self._successor(node)
            self._leftmost = succ
            self.leftmost_value = succ.value if succ is not None else None
        self._delete(node)
        return value

    def min_key(self):
        """Smallest key, or None when empty."""
        return self._leftmost.key if self._leftmost else None

    def min_value(self):
        """Value of the smallest key (the leftmost entity)."""
        return self._leftmost.value if self._leftmost else None

    def second_value(self):
        """Value of the second-smallest key, or None."""
        if self._leftmost is None:
            return None
        succ = self._successor(self._leftmost)
        return succ.value if succ else None

    def items(self) -> Iterator[tuple]:
        """In-order ``(key, value)`` iteration."""
        node = self._leftmost
        while node is not None:
            yield node.key, node.value
            node = self._successor(node)

    def values(self) -> Iterator[Any]:
        """In-order value iteration."""
        for _, value in self.items():
            yield value

    # ------------------------------------------------------------------
    # red-black machinery
    # ------------------------------------------------------------------

    @staticmethod
    def _is_red(node: Optional[_Node]) -> bool:
        return node is not None and node.color is RED

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while self._is_red(z.parent):
            parent = z.parent
            grand = parent.parent
            if parent is grand.left:
                uncle = grand.right
                if self._is_red(uncle):
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is parent.right:
                        z = parent
                        self._rotate_left(z)
                        parent = z.parent
                        grand = parent.parent
                    parent.color = BLACK
                    grand.color = RED
                    self._rotate_right(grand)
            else:
                uncle = grand.left
                if self._is_red(uncle):
                    parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is parent.left:
                        z = parent
                        self._rotate_right(z)
                        parent = z.parent
                        grand = parent.parent
                    parent.color = BLACK
                    grand.color = RED
                    self._rotate_left(grand)
        self.root.color = BLACK

    @staticmethod
    def _minimum(node: _Node) -> _Node:
        while node.left is not None:
            node = node.left
        return node

    def _successor(self, node: _Node) -> Optional[_Node]:
        if node.right is not None:
            return self._minimum(node.right)
        parent = node.parent
        while parent is not None and node is parent.right:
            node = parent
            parent = parent.parent
        return parent

    def _transplant(self, u: _Node, v: Optional[_Node]) -> None:
        if u.parent is None:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        if v is not None:
            v.parent = u.parent

    def _delete(self, z: _Node) -> None:
        # CLRS delete with a phantom-free fixup (tracks the fixup
        # position via its parent to support None children).
        y = z
        y_original_color = y.color
        if z.left is None:
            x, x_parent = z.right, z.parent
            self._transplant(z, z.right)
        elif z.right is None:
            x, x_parent = z.left, z.parent
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x_parent = y
            else:
                x_parent = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color is BLACK:
            self._delete_fixup(x, x_parent)

    def _delete_fixup(self, x: Optional[_Node],
                      x_parent: Optional[_Node]) -> None:
        while x is not self.root and not self._is_red(x):
            if x_parent is None:
                break
            if x is x_parent.left:
                w = x_parent.right
                if self._is_red(w):
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_left(x_parent)
                    w = x_parent.right
                if w is None:
                    x, x_parent = x_parent, x_parent.parent
                    continue
                if not self._is_red(w.left) and not self._is_red(w.right):
                    w.color = RED
                    x, x_parent = x_parent, x_parent.parent
                else:
                    if not self._is_red(w.right):
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x_parent.right
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(x_parent)
                    x = self.root
                    x_parent = None
            else:
                w = x_parent.left
                if self._is_red(w):
                    w.color = BLACK
                    x_parent.color = RED
                    self._rotate_right(x_parent)
                    w = x_parent.left
                if w is None:
                    x, x_parent = x_parent, x_parent.parent
                    continue
                if not self._is_red(w.left) and not self._is_red(w.right):
                    w.color = RED
                    x, x_parent = x_parent, x_parent.parent
                else:
                    if not self._is_red(w.left):
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x_parent.left
                    w.color = x_parent.color
                    x_parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(x_parent)
                    x = self.root
                    x_parent = None
        if x is not None:
            x.color = BLACK

    # ------------------------------------------------------------------
    # validation (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the red-black and BST invariants; raises on violation."""
        if self.root is None:
            assert self._leftmost is None
            assert self.leftmost_value is None
            return
        assert self.root.color is BLACK, "root must be black"

        def walk(node) -> int:
            if node is None:
                return 1
            if node.left is not None:
                assert node.left.key < node.key, "BST order violated"
                assert node.left.parent is node, "broken parent link"
            if node.right is not None:
                assert node.key < node.right.key, "BST order violated"
                assert node.right.parent is node, "broken parent link"
            if node.color is RED:
                assert not self._is_red(node.left), "red-red violation"
                assert not self._is_red(node.right), "red-red violation"
            lh = walk(node.left)
            rh = walk(node.right)
            assert lh == rh, "black-height mismatch"
            return lh + (1 if node.color is BLACK else 0)

        walk(self.root)
        assert self._leftmost is self._minimum(self.root), \
            "leftmost cache stale"
        assert self.leftmost_value is self._leftmost.value, \
            "leftmost value cache stale"
        keys = [k for k, _ in self.items()]
        assert keys == sorted(keys)
        assert len(keys) == len(self._nodes)
