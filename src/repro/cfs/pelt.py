"""Per-entity load tracking (PELT), continuous-time form.

CFS's load metric is a decaying average of time spent runnable: recent
activity counts fully, activity 32 ms ago counts half, 64 ms ago a
quarter, and so on.  The kernel computes this with 1024 us segments and
a ``y^32 = 0.5`` lookup table; we use the mathematically equivalent
continuous exponential with a 32 ms half-life, which is exact for any
interval length and avoids the segment bookkeeping.

``util_avg`` is the fraction of time the entity was running/runnable in
[0, 1]; ``load_avg`` additionally scales by the entity's weight, so a
high-priority thread registers as more load — the paper's "the load of
a thread is weighted by the thread's priority".
"""

from __future__ import annotations

import math

from .weights import NICE_0_LOAD

#: decay half-life (the kernel's 32 ms)
HALF_LIFE_NS = 32_000_000

_LN2 = math.log(2.0)

#: memo for :func:`decay_factor`.  Event times live on a discrete
#: grid (tick periods, slice lengths, balance intervals), so the same
#: integer deltas recur constantly on the balancing hot path; caching
#: the transcendental is a pure win and **bit-identical** — the same
#: expression on the same integer input yields the same float.
#: Bounded (cleared when full) so pathological delta streams cannot
#: grow it without limit.
_DECAY_CACHE: dict[int, float] = {}
_DECAY_CACHE_MAX = 8192

#: one ulp below 1.0 — the floating-point **fixed point** a saturated
#: average settles on.  ``u' = fl(fl(u*d) + (1.0 - d))`` maps both
#: ``1.0`` and ``1.0 - 2**-53`` to themselves for every decay factor
#: ``d`` in [0.5, 1] (``1.0 - d`` is exact by Sterbenz; ``u*d`` rounds
#: down by exactly one ulp of ``d``), so once an always-runnable
#: entity's average reaches this value the transcendental's result is
#: known in advance and can be skipped **bit-identically**.
_SATURATED = 1.0 - 2.0 ** -53


def decay_factor(delta_ns: int) -> float:
    """Fraction of an old average that survives ``delta_ns``."""
    if delta_ns <= 0:
        return 1.0
    d = _DECAY_CACHE.get(delta_ns)
    if d is None:
        # continuous-form PELT: the decay exponent is a dimensionless
        # ratio, not clock arithmetic
        d = math.exp(-_LN2 * delta_ns / HALF_LIFE_NS)  # schedlint: ignore[float-ns-clock]
        if len(_DECAY_CACHE) >= _DECAY_CACHE_MAX:
            _DECAY_CACHE.clear()
        _DECAY_CACHE[delta_ns] = d
    return d


class LoadAvg:
    """A decaying running/not-running average for one entity."""

    __slots__ = ("util_avg", "last_update", "weight")

    def __init__(self, weight: int = NICE_0_LOAD, now: int = 0):
        self.util_avg = 0.0
        self.last_update = now
        self.weight = weight

    def update(self, now: int, running: bool) -> None:
        """Fold in the interval since the last update.

        ``running`` says whether the entity was runnable for the whole
        interval (the caller updates at every state transition, so the
        interval is homogeneous).
        """
        delta = now - self.last_update
        if delta <= 0:
            return
        if running and self.util_avg >= _SATURATED and \
                delta < HALF_LIFE_NS:
            # Saturated fixed point with d >= 0.5: the update would
            # reproduce util_avg bit-for-bit (see _SATURATED), so only
            # the clock needs touching.
            self.last_update = now
            return
        # decay_factor inlined for the cache-hit case (one update per
        # running entity per tick); misses take the full helper
        d = _DECAY_CACHE.get(delta)
        if d is None:
            d = decay_factor(delta)
        target = 1.0 if running else 0.0
        self.util_avg = self.util_avg * d + target * (1.0 - d)
        self.last_update = now

    @property
    def load_avg(self) -> float:
        """Utilization scaled by weight (the balancing metric)."""
        return self.util_avg * self.weight

    def peek(self, now: int, running: bool) -> float:
        """``load_avg`` as it would be after ``update(now, running)``,
        without mutating state."""
        delta = now - self.last_update
        if delta <= 0:
            return self.load_avg
        if running and self.util_avg >= _SATURATED and \
                delta < HALF_LIFE_NS:
            # same bit-identical saturation shortcut as update()
            return self.load_avg
        d = decay_factor(delta)
        target = 1.0 if running else 0.0
        return (self.util_avg * d + target * (1.0 - d)) * self.weight
