"""Thread placement: ``select_task_rq_fair``.

The paper (§2.1) describes the two regimes CFS distinguishes on
wakeup:

* **1-to-1 communication** — the woken thread is kept close to the
  waker: the candidate set is the waker's LLC (plus the wakee's
  previous CPU), and an idle sibling is preferred.
* **1-to-many producer/consumer** — a waker that wakes many distinct
  threads spreads its wakees machine-wide onto the least loaded CPU.

The regime is detected with the kernel's ``wake_wide`` heuristic on
decaying *wakee-flip* counters.  Forked threads always take the slow
path (machine-wide idlest CPU).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core.clock import NSEC_PER_SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.thread import SimThread
    from .core import CfsScheduler


def record_wakee(waker_state, wakee: "SimThread", now: int) -> None:
    """Update the waker's wakee-flip counter (decays by half every
    second, increments when the wakee changes)."""
    if now - waker_state.wakee_flip_ts > NSEC_PER_SEC:
        waker_state.wakee_flips //= 2
        waker_state.wakee_flip_ts = now
    if waker_state.last_wakee is not wakee:
        waker_state.last_wakee = wakee
        waker_state.wakee_flips += 1


def wake_wide(sched: "CfsScheduler", waker: "SimThread",
              wakee: "SimThread") -> bool:
    """The kernel's 1-to-many detector: compare master/slave flip
    counts against the LLC size."""
    factor = len(sched.topology.llc_of(waker.cpu or 0))
    master = sched.state_of(waker).wakee_flips
    slave = sched.state_of(wakee).wakee_flips
    if master < slave:
        master, slave = slave, master
    if slave < factor or master < slave * factor:
        return False
    return True


def select_task_rq_fair(sched: "CfsScheduler", thread: "SimThread",
                        is_fork: bool,
                        waker: Optional["SimThread"]) -> int:
    """Choose a CPU for a forked or waking thread.

    Offline (hotplugged-away) CPUs are excluded from the candidate
    set, like the kernel masking with ``cpu_active_mask``; a mask with
    no online CPU falls back to the whole online machine (the engine's
    ``_constrain_cpu`` breaks affinity the same way).
    """
    cores = sched.machine.cores
    allowed = [c for c in range(len(sched.machine))
               if thread.allows_cpu(c) and cores[c].online]
    if not allowed:
        allowed = sched.machine.online_cpus()
    if len(allowed) == 1:
        return allowed[0]
    prev_cpu = thread.cpu if thread.cpu is not None else allowed[0]
    if not cores[prev_cpu].online:
        prev_cpu = allowed[0]

    if is_fork:
        # Forks take the slow path: the idlest CPU machine-wide
        # (SD_BALANCE_FORK).
        return find_idlest_cpu(sched, allowed)

    # Wakeups never search globally in Linux 4.9 (SD_BALANCE_WAKE is
    # off): the candidate set is the LLC around either the waker's CPU
    # (1-to-1 pattern) or the thread's previous CPU (1-to-many), which
    # is how micro load (a kernel thread occupying the previous CPU)
    # can bounce a woken thread onto a sibling that already has a
    # runnable thread — the paper's MG misplacement (§6.3).
    target = prev_cpu
    if waker is not None and waker.cpu is not None:
        record_wakee(sched.state_of(waker), thread, sched.engine.now)
        if not wake_wide(sched, waker, thread):
            waker_cpu = waker.cpu
            if waker_cpu in allowed and \
                    sched.cpu_load(waker_cpu) <= sched.cpu_load(prev_cpu):
                target = waker_cpu
    return select_idle_sibling(sched, thread, target, allowed)


def _cpu_is_idle(sched: "CfsScheduler", cpu: int) -> bool:
    """The kernel's ``idle_cpu()``: nothing running *or queued*."""
    return sched.nr_runnable(sched.machine.cores[cpu]) == 0


def select_idle_sibling(sched: "CfsScheduler", thread: "SimThread",
                        target: int, allowed: Iterable[int]) -> int:
    """Prefer an idle CPU sharing a cache with ``target``."""
    allowed = set(allowed)
    if target in allowed and _cpu_is_idle(sched, target):
        return target
    prev = thread.cpu
    if (prev is not None and prev in allowed
            and _cpu_is_idle(sched, prev)
            and sched.topology.shares_llc(prev, target)):
        return prev
    for cpu in sorted(sched.topology.llc_of(target)):
        if cpu in allowed and _cpu_is_idle(sched, cpu):
            return cpu
    if target in allowed:
        return target
    return find_idlest_cpu(sched, sorted(allowed))


def find_idlest_cpu(sched: "CfsScheduler", allowed: Iterable[int]) -> int:
    """The slow path: the allowed CPU with the smallest load, breaking
    ties by queued-thread count (fresh forks all have zero PELT load,
    so pure load comparison would pile them onto one CPU)."""
    best = None
    best_key = None
    for cpu in allowed:
        core = sched.machine.cores[cpu]
        key = (sched.cpu_load(cpu), sched.nr_runnable(core), cpu)
        if best_key is None or key < best_key:
            best, best_key = cpu, key
    return best if best is not None else 0
