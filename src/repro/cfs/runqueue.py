"""The per-CPU (and per-group) CFS runqueue.

Implements the vruntime timeline exactly as described in §2.1 of the
paper:

* entities ordered by vruntime in a red-black tree, leftmost runs next;
* ``min_vruntime`` advances monotonically and anchors placement;
* a newly forked entity starts one slice into the future (the paper's
  "starts with a vruntime equal to the maximum vruntime of the threads
  waiting in the runqueue" — START_DEBIT);
* a waking entity is placed no earlier than ``min_vruntime`` minus a
  sleeper credit (the paper's "updated to be at least equal to the
  minimum vruntime", which makes sleepers run first);
* the running entity is taken out of the tree (``set_next``) and
  reinserted when preempted (``put_prev``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from ..core.errors import SchedulerError
from .entity import SchedEntity
from .rbtree import RBTree
from .timeline import FlatTimeline
from .weights import calc_delta_fair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cgroup import TaskGroup
    from .params import CfsTunables


class CfsRq:
    """One CFS timeline: the runqueue of one task group on one CPU."""

    #: global structure generation, bumped by every enqueue / dequeue /
    #: reweight on *any* rq.  :meth:`sched_slice` results only depend
    #: on queue membership, weights and the (constant) tunables, so a
    #: memoized slice is valid exactly while the generation stands.
    #: Global rather than per-chain so invalidation needs no hierarchy
    #: walk; the cost is only spurious misses after unrelated churn.
    _gen = 0

    # ``_gen`` is a class attribute and must stay out of __slots__.
    __slots__ = ("cpu", "tunables", "group", "owner_entity", "tree",
                 "curr", "skip", "min_vruntime", "nr_running",
                 "load_weight", "h_nr_running", "_slice_memo")

    def __init__(self, cpu: int, tunables: "CfsTunables",
                 group: Optional["TaskGroup"] = None,
                 owner_entity: Optional[SchedEntity] = None):
        self.cpu = cpu
        self.tunables = tunables
        #: the task group whose threads this rq holds (None = root)
        self.group = group
        #: the group entity representing this rq one level up
        self.owner_entity = owner_entity
        #: the timeline backend: both expose the same ordered-map
        #: surface and a maintained ``leftmost_value``, and produce
        #: identical schedules (see cfs/timeline.py)
        self.tree = FlatTimeline() if tunables.flat_timeline else RBTree()
        self.curr: Optional[SchedEntity] = None
        self.skip: Optional[SchedEntity] = None
        self.min_vruntime = 0
        #: queued entities incl. curr
        self.nr_running = 0
        #: total weight of queued entities incl. curr
        self.load_weight = 0
        #: tasks queued in this rq and every descendant rq
        self.h_nr_running = 0
        #: id(se) -> (generation, slice_ns) memo for sched_slice
        self._slice_memo: dict = {}

    # ------------------------------------------------------------------
    # entity queue/dequeue
    # ------------------------------------------------------------------

    def enqueue_entity(self, se: SchedEntity) -> None:
        """Add an entity to this timeline (curr stays out of the tree)."""
        if se.on_rq:
            raise SchedulerError(f"{se} already queued")
        CfsRq._gen += 1
        se.cfs_rq = self
        se.on_rq = True
        self.nr_running += 1
        self.load_weight += se.weight
        if se is not self.curr:
            self.tree.insert(se.key, se)

    def dequeue_entity(self, se: SchedEntity) -> None:
        """Remove an entity (handles the running entity too)."""
        if not se.on_rq:
            raise SchedulerError(f"{se} not queued")
        CfsRq._gen += 1
        if se is self.curr:
            self.curr = None
        else:
            self.tree.remove(se.key)
        if se is self.skip:
            self.skip = None
        se.on_rq = False
        self.nr_running -= 1
        self.load_weight -= se.weight
        self.update_min_vruntime()

    def reweight_entity(self, se: SchedEntity, new_weight: int) -> None:
        """Change a queued entity's weight (group share updates)."""
        CfsRq._gen += 1
        if se.on_rq:
            self.load_weight += new_weight - se.weight
        if se.on_rq and se is not self.curr:
            self.tree.remove(se.key)
            se.weight = new_weight
            self.tree.insert(se.key, se)
        else:
            se.weight = new_weight
        se.avg.weight = new_weight

    # ------------------------------------------------------------------
    # picking
    # ------------------------------------------------------------------

    def pick_first(self) -> Optional[SchedEntity]:
        """Leftmost entity, honouring the yield-skip hint."""
        # maintained leftmost_value read (tick path; backend-agnostic)
        first = self.tree.leftmost_value
        if first is None:
            return None
        if first is self.skip:
            second = self.tree.second_value()
            if second is not None:
                first = second
        return first

    def set_next(self, se: SchedEntity) -> None:
        """Mark ``se`` running: remove it from the tree (Linux keeps the
        running entity out of the timeline)."""
        if se is self.curr:
            return
        if self.curr is not None:
            raise SchedulerError(f"rq cpu{self.cpu} already has a curr")
        self.tree.remove(se.key)
        self.curr = se
        self.skip = None
        se.slice_exec = 0

    def put_prev(self, se: SchedEntity) -> None:
        """The entity stopped running; reinsert it into the timeline."""
        if se is not self.curr:
            raise SchedulerError(f"{se} is not curr of cpu{self.cpu}")
        self.curr = None
        if se.on_rq:
            self.tree.insert(se.key, se)

    # ------------------------------------------------------------------
    # vruntime accounting
    # ------------------------------------------------------------------

    def update_curr(self, delta_ns: int) -> None:
        """Charge ``delta_ns`` of execution to the running entity."""
        se = self.curr
        if se is None or delta_ns <= 0:
            return
        se.sum_exec += delta_ns
        se.slice_exec += delta_ns
        weight = se.weight
        # nice-0 fast path inlined (calc_delta_fair would return
        # delta_ns unchanged)
        se.vruntime += delta_ns if weight == 1024 \
            else calc_delta_fair(delta_ns, weight)
        self.update_min_vruntime()

    def update_min_vruntime(self) -> None:
        """Advance ``min_vruntime`` monotonically toward the smallest
        live vruntime (curr or leftmost).  Allocation-free: this runs
        once per ``update_curr`` on the hottest accounting path."""
        curr = self.curr
        # maintained leftmost_value read (hottest path; backend-agnostic)
        leftmost = self.tree.leftmost_value
        if curr is not None and curr.on_rq:
            vruntime = curr.vruntime
            if leftmost is not None and leftmost.vruntime < vruntime:
                vruntime = leftmost.vruntime
        elif leftmost is not None:
            vruntime = leftmost.vruntime
        else:
            return
        if vruntime > self.min_vruntime:
            self.min_vruntime = vruntime

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place_entity(self, se: SchedEntity, initial: bool) -> None:
        """Pick a vruntime for an entity joining this timeline."""
        vruntime = self.min_vruntime
        if initial and self.tunables.start_debit:
            # New threads start one slice into the future so they do
            # not immediately starve the queue (the "maximum vruntime"
            # rule of the paper).
            vruntime += self.sched_vslice(se)
        if not initial:
            credit = self.tunables.sched_latency_ns
            if self.tunables.gentle_fair_sleepers:
                credit //= 2
            vruntime -= credit
            # A sleeper keeps its old vruntime if it is already ahead.
            vruntime = max(se.vruntime, vruntime)
        se.vruntime = vruntime

    # ------------------------------------------------------------------
    # slice computation
    # ------------------------------------------------------------------

    def sched_slice(self, se: SchedEntity) -> int:
        """The wall-clock slice ``se`` should get per period, walking up
        the group hierarchy like the kernel's ``sched_slice``.

        Memoized per (entity, structure generation): the tick path
        recomputes the same slice every millisecond while the queue is
        unchanged.  An ``id(se)`` key cannot alias a dead entity — an
        entity only dies after a dequeue, which bumps the generation.
        """
        gen = CfsRq._gen
        memo = self._slice_memo
        hit = memo.get(id(se))
        if hit is not None and hit[0] == gen:
            return hit[1]
        nr = self.nr_running + (0 if se.on_rq else 1)
        slice_ns = self.tunables.sched_period(nr)
        rq: Optional[CfsRq] = self
        cursor: Optional[SchedEntity] = se
        while rq is not None and cursor is not None:
            load = rq.load_weight + (0 if cursor.on_rq else cursor.weight)
            if load > 0:
                slice_ns = slice_ns * cursor.weight // load
            cursor = rq.owner_entity
            rq = cursor.cfs_rq if cursor is not None else None
        if len(memo) > 256:
            memo.clear()
        memo[id(se)] = (gen, slice_ns)
        return slice_ns

    def sched_vslice(self, se: SchedEntity) -> int:
        """``sched_slice`` converted to vruntime units for ``se``."""
        return calc_delta_fair(self.sched_slice(se), se.weight)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def queued_entities(self) -> Iterator[SchedEntity]:
        """All queued entities including curr, timeline order last."""
        if self.curr is not None and self.curr.on_rq:
            yield self.curr
        yield from self.tree.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.group.name if self.group else "root"
        return (f"<CfsRq cpu{self.cpu} {label} nr={self.nr_running} "
                f"h_nr={self.h_nr_running}>")
