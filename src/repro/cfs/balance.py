"""CFS load balancing: periodic, hierarchical, load-metric driven.

Implements §2.1's description:

* every ``balance_interval`` (4 ms) each core walks its domain chain,
  larger domains at longer intervals;
* balancing evens out *load* (PELT averages weighted by priority), not
  thread counts;
* a pass detaches up to 32 tasks from the busiest CPU of the busiest
  group when the imbalance exceeds the domain's threshold (17 % inside
  a node, 25 % across nodes — the reason CFS never perfectly balances
  Fig. 6's spinners);
* cache-hot tasks (ran < 0.5 ms ago) resist migration until repeated
  failures override it;
* a core that goes idle immediately pulls work (idle/newidle balance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .pelt import HALF_LIFE_NS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread
    from .core import CfsScheduler
    from .domains import SchedDomain


def nohz_idle_balance(sched: "CfsScheduler", core: "Core") -> None:
    """Balance on behalf of a tick-stopped idle core.

    Linux kicks one unparked CPU to run ``nohz_idle_balance()`` for all
    tickless-idle siblings; our per-core balance event chain never
    stops, so the kick degenerates to running the core's own periodic
    pass — identical work to the always-tick engine, plus a counter so
    experiments can see how often parked cores were balanced.
    """
    sched.engine.metrics.incr("cfs.nohz_kicks")
    periodic_balance(sched, core)


def periodic_balance(sched: "CfsScheduler", core: "Core") -> None:
    """One tick of the periodic balancer on ``core``: run every domain
    whose interval elapsed."""
    now = sched.engine.now
    idle = core.is_idle
    factor = sched.tunables.idle_balance_factor if idle else 1
    for domain in sched.cpurq(core).domains:
        if now - domain.last_balance < domain.interval_ns * factor:
            continue
        domain.last_balance = now
        load_balance(sched, core, domain, idle=idle)


def load_balance(sched: "CfsScheduler", core: "Core",
                 domain: "SchedDomain", idle: bool) -> int:
    """Try to pull load into ``core`` from the busiest group of
    ``domain``; returns the number of migrated tasks."""
    now = sched.engine.now
    sig = domain.skip_sig
    if sig is not None:
        # The last pass over this domain found nothing to move while
        # every CPU in the span sat at the saturated PELT fixed point.
        # Saturated entries are time-invariant (pelt._SATURATED) and
        # popped on any runnable-set / weight / timeline change, so as
        # long as each memoized entry is still the live one (and still
        # inside its half-life window) the inputs to the busiest-group
        # search are bit-identical and the pass would no-op again.
        sat_loads = sched._sat_loads
        for i, cpu in enumerate(domain.span_cpus):
            ent = sat_loads[cpu]
            if ent is not sig[i] or now - ent[1] >= HALF_LIFE_NS:
                domain.skip_sig = None
                break
        else:
            domain.nr_balance_failed = 0
            return 0
    local_group = domain.local_group()
    # One batched pass over the span fills the per-instant memo; the
    # group sums then index it directly (the balancer's hot path).
    loads = sched.loads_for(domain.span)
    local_load = 0.0
    for cpu in local_group:
        local_load += loads[cpu]
    busiest_group = None
    busiest_load = local_load
    local_cpu = core.index
    for group in domain.groups:
        if group is local_group or local_cpu in group:
            continue
        load = 0.0
        for cpu in group:
            load += loads[cpu]
        if load > busiest_load:
            busiest_group = group
            busiest_load = load
    if busiest_group is None:
        domain.nr_balance_failed = 0
        _memo_no_action(sched, domain, now)
        return 0
    # Average over group size: the paper's "load of the NUMA nodes,
    # defined as the average load of their cores".
    local_avg = local_load / len(local_group)
    busiest_avg = busiest_load / len(busiest_group)
    if busiest_avg * 100 <= local_avg * domain.imbalance_pct:
        domain.nr_balance_failed = 0
        _memo_no_action(sched, domain, now)
        return 0
    victim_cpu = busiest_cpu_in(sched, busiest_group)
    if victim_cpu is None:
        return 0
    # Move enough load to even the two groups out, capped at
    # max_migrate tasks (the paper's 32).
    target_gap = (busiest_avg - local_avg) * len(local_group) / 2
    moved = detach_and_move(sched, victim_cpu, core.index, target_gap,
                            domain)
    if moved:
        domain.nr_balance_failed = 0
    else:
        domain.nr_balance_failed += 1
    return moved


def _memo_no_action(sched: "CfsScheduler", domain: "SchedDomain",
                    now: int) -> None:
    """Record a no-action pass's saturated-load signature so the next
    pass can be skipped while it stays valid (see ``load_balance``).
    Only passes whose *every* span CPU is saturated are memoable —
    any decaying average would change the inputs next time."""
    sat_loads = sched._sat_loads
    sig = []
    for cpu in domain.span_cpus:
        ent = sat_loads[cpu]
        if ent is None or now - ent[1] >= HALF_LIFE_NS:
            return
        sig.append(ent)
    domain.skip_sig = tuple(sig)


def group_load(sched: "CfsScheduler", group) -> float:
    """Sum of the CPU loads of a balancing group."""
    return sum(sched.cpu_load(cpu) for cpu in group)


def busiest_cpu_in(sched: "CfsScheduler", group) -> Optional[int]:
    """The CPU with the highest load that has something to give."""
    best, best_load = None, 0.0
    for cpu in group:
        if sched.nr_runnable(sched.machine.cores[cpu]) == 0:
            continue
        load = sched.cpu_load(cpu)
        if best is None or load > best_load:
            best, best_load = cpu, load
    return best


def can_migrate_task(sched: "CfsScheduler", thread: "SimThread",
                     dst_cpu: int, domain: Optional["SchedDomain"]) -> bool:
    """The kernel's ``can_migrate_task``: not running, affinity allows
    the destination, and not cache-hot (unless balancing keeps
    failing)."""
    if thread.is_running:
        return False
    if not thread.allows_cpu(dst_cpu):
        return False
    if not sched.machine.cores[dst_cpu].online:
        return False
    hot = (sched.engine.now - thread.last_ran) < sched.tunables.cache_hot_ns
    if hot and domain is not None \
            and domain.nr_balance_failed <= sched.tunables.cache_nice_tries:
        return False
    return True


def detach_and_move(sched: "CfsScheduler", src_cpu: int, dst_cpu: int,
                    target_load: float,
                    domain: Optional["SchedDomain"]) -> int:
    """Detach tasks from ``src_cpu`` and attach them to ``dst_cpu``
    until ``target_load`` worth of load moved or the cap is hit.

    A task is never moved when doing so would leave the source with
    *less* load than the destination (the kernel rounds its imbalance
    the same way); otherwise two near-equal CPUs would trade the same
    task back and forth every balancing interval.
    """
    src_core = sched.machine.cores[src_cpu]
    moved = 0
    moved_load = 0.0
    src_load = sched.cpu_load(src_cpu)
    dst_load = sched.cpu_load(dst_cpu)
    candidates = [t for t in sched.runnable_threads(src_core)
                  if can_migrate_task(sched, t, dst_cpu, domain)]
    for thread in candidates:
        if moved >= sched.tunables.max_migrate:
            break
        if moved_load >= target_load:
            break
        if sched.nr_runnable(src_core) <= 1:
            break
        load = sched.thread_load(thread)
        if src_load - load < dst_load + load:
            continue  # would invert the imbalance: ping-pong
        sched.engine.migrate_thread(thread, dst_cpu)
        sched.engine.metrics.incr("cfs.balance_migrations")
        moved += 1
        moved_load += load
        src_load -= load
        dst_load += load
    return moved


def newidle_balance(sched: "CfsScheduler", core: "Core") -> int:
    """A core just ran out of work: immediately pull from the busiest
    CPU, walking domains from near to far (§2.1: "cores also
    immediately call the periodic load balancer when they become
    idle")."""
    moved = 0
    for domain in sched.cpurq(core).domains:
        moved = load_balance(sched, core, domain, idle=True)
        if moved:
            break
    sched.engine.metrics.incr("cfs.newidle_calls")
    return moved
