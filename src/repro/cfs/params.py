"""CFS tunables, using the values the paper reports.

The paper describes the behaviour of Linux 4.9 on the test machine:

* a scheduling period of 48 ms while a core runs at most 8 threads,
* 6 ms minimum granularity (period grows as ``6 ms x nr`` beyond 8
  threads, and bounds the vruntime spread),
* 1 ms wakeup granularity (a woken thread preempts only when its
  vruntime is more than ~1 ms behind the current thread's),
* periodic load balancing every 4 ms per core,
* a 25 % imbalance threshold between NUMA nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.clock import msec, usec


@dataclass
class CfsTunables:
    """All CFS knobs in one place (ablation benches vary these)."""

    #: target period in which every runnable thread runs once
    sched_latency_ns: int = msec(48)
    #: minimum slice per thread; also the period factor beyond nr_latency
    min_granularity_ns: int = msec(6)
    #: vruntime lead a waking thread needs to preempt
    wakeup_granularity_ns: int = msec(1)
    #: number of threads above which the period stretches
    nr_latency: int = 8
    #: half of sched_latency credited to waking sleepers
    gentle_fair_sleepers: bool = True
    #: start new tasks one slice into the future (START_DEBIT)
    start_debit: bool = True
    #: wakeup preemption enabled at all
    wakeup_preemption: bool = True
    #: periodic balance interval of the smallest domain
    balance_interval_ns: int = msec(4)
    #: per-level imbalance thresholds, percent (117 = 17 % slack)
    imbalance_pct_llc: int = 117
    imbalance_pct_numa: int = 125
    #: max tasks detached in one balancing pass (the paper's "as many
    #: as 32 threads")
    max_migrate: int = 32
    #: idle (tickless) cores balance this much less often than busy
    #: ones: they depend on nohz ILB kicks, which 4.9 delivers lazily
    #: (cf. "The Linux Scheduler: a Decade of Wasted Cores")
    idle_balance_factor: int = 32
    #: a task that ran this recently is cache-hot and resists migration
    cache_hot_ns: int = usec(500)
    #: failed balance passes before cache-hotness is overridden
    cache_nice_tries: int = 1
    #: group threads into per-application task groups (autogroup)
    autogroup: bool = True
    #: timeline representation: True = flat sorted-array backend
    #: (binary-insert, digest-identical, faster at per-rq queue depths
    #: up to the low hundreds), False = red-black tree, None = follow
    #: the engine's fast mode (see docs/performance.md)
    flat_timeline: Optional[bool] = None

    def sched_period(self, nr_running: int) -> int:
        """The paper's rule: 48 ms up to 8 threads, then 6 ms each."""
        if nr_running > self.nr_latency:
            return nr_running * self.min_granularity_ns
        return self.sched_latency_ns
