"""Command-line interface: ``repro-sched`` / ``python -m repro``.

Subcommands::

    repro-sched list                      # experiments and workloads
    repro-sched experiment fig6 [--full] [--seed N] [--jobs N]
    repro-sched run MG --sched ule --cpus 32 [--trace]
    repro-sched compare MG --cpus 32      # CFS vs ULE on one workload

``--jobs N`` fans independent simulation cells out to N worker
processes (0 = all cores); results are identical to a serial run —
parallelism only changes the wall clock.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.stats import percent_diff
from .core.clock import sec, to_sec, usec
from .experiments import (EXPERIMENTS, experiment_names, run_experiment)
from .experiments.base import make_engine, run_workload
from .sched import available_schedulers
from .workloads import make_workload, workload_names


def _cmd_list(args) -> int:
    print("experiments:")
    for name in experiment_names():
        print(f"  {name:<8} {EXPERIMENTS[name][1]}")
    print("\nschedulers:", ", ".join(available_schedulers()))
    print("\nworkloads:")
    names = workload_names()
    for i in range(0, len(names), 6):
        print("  " + ", ".join(names[i:i + 6]))
    return 0


def _cmd_experiment(args) -> int:
    result = run_experiment(args.name, quick=not args.full,
                            seed=args.seed, jobs=args.jobs)
    print(result.text)
    return 0


def _run_one(name: str, sched: str, cpus: int, seed: int,
             noise: bool, sanitize: bool = False,
             faults_path: str | None = None,
             profile: bool = False,
             decisions: bool = False) -> tuple:
    faults = None
    if faults_path is not None:
        from .faults import FaultPlan
        faults = FaultPlan.load(faults_path)
    engine = make_engine(sched, ncpus=cpus, seed=seed,
                         ctx_switch_cost_ns=usec(15),
                         sanitize=True if sanitize else None,
                         faults=faults,
                         profile=True if profile else None)
    trace = None
    if decisions:
        from .tracing.decisions import attach_decision_trace
        trace = attach_decision_trace(engine)
    if noise:
        from .workloads.noise import KernelNoiseWorkload
        KernelNoiseWorkload().launch(engine, at=0)
    workload = make_workload(name)
    reason = run_workload(engine, workload, sec(600))
    return engine, workload, reason, trace


def _cmd_run(args) -> int:
    engine, workload, reason, trace = _run_one(
        args.name, args.sched, args.cpus, args.seed, args.noise,
        sanitize=args.sanitize, faults_path=args.faults,
        profile=args.profile, decisions=args.decisions is not None)
    perf = workload.performance(engine)
    print(f"{args.name} on {args.sched} ({args.cpus} cpus): "
          f"performance={perf:.4f} ops/s, simulated "
          f"{to_sec(engine.now):.2f}s, end={reason}")
    print(f"  switches={engine.metrics.counter('engine.switches'):.0f} "
          f"migrations={engine.metrics.counter('engine.migrations'):.0f} "
          f"preemptions="
          f"{engine.metrics.counter('engine.preemptions'):.0f}")
    if engine.faults is not None:
        counts = " ".join(f"{k}={v}" for k, v
                          in sorted(engine.faults.counts.items()) if v)
        print(f"  faults: {len(engine.faults.applied)} applied"
              + (f" ({counts})" if counts else ""))
    if args.digest:
        from .tracing.digest import schedule_digest
        print(f"  digest={schedule_digest(engine)}")
    if trace is not None:
        with open(args.decisions, "w") as fh:
            count = trace.write_jsonl(fh)
        print(f"  decisions: {count} pick records -> {args.decisions}")
    if args.profile and engine.profiler is not None:
        print("\nper-subsystem profile (see docs/performance.md):")
        print(engine.profiler.report())
    return 0


def _cmd_compare(args) -> int:
    perfs = {}
    for sched in ("cfs", "ule"):
        engine, workload, _, _ = _run_one(args.name, sched, args.cpus,
                                          args.seed, args.noise,
                                          sanitize=args.sanitize)
        perfs[sched] = workload.performance(engine)
        print(f"  {sched}: {perfs[sched]:.4f} ops/s")
    diff = percent_diff(perfs["ule"], perfs["cfs"])
    print(f"{args.name}: ULE is {diff:+.1f}% vs CFS "
          f"({args.cpus} cpus)")
    return 0


def _cmd_report(args) -> int:
    """Run every experiment and write one combined report."""
    import io
    import time

    from .experiments import experiment_names, run_experiment

    buf = io.StringIO()
    buf.write("# Reproduction report\n")
    buf.write("# The Battle of the Schedulers: FreeBSD ULE vs. "
              "Linux CFS (ATC'18)\n")
    names = args.only or experiment_names()
    if args.jobs is not None and len(names) > 1:
        # Fan whole experiments out to worker processes; results come
        # back in submission order, so the report is byte-identical to
        # a serial run (minus the per-experiment timing lines).
        from .experiments.parallel import run_experiments
        t0 = time.time()  # schedlint: ignore[wall-clock] -- wall-clock progress reporting
        print(f"running {len(names)} experiments with "
              f"--jobs {args.jobs} ...", flush=True)
        results = run_experiments(names, quick=not args.full,
                                  seed=args.seed, jobs=args.jobs)
        elapsed = time.time() - t0  # schedlint: ignore[wall-clock] -- wall-clock progress reporting
        print(f"completed in {elapsed:.1f}s wall", flush=True)
        for name, result in zip(names, results):
            header = (f"\n\n{'=' * 72}\n== {name}: {result.claim}\n"
                      f"{'=' * 72}\n")
            buf.write(header)
            buf.write(result.text)
        names = []
    for name in names:
        t0 = time.time()  # schedlint: ignore[wall-clock] -- wall-clock progress reporting
        print(f"running {name} ...", flush=True)
        result = run_experiment(name, quick=not args.full,
                                seed=args.seed)
        elapsed = time.time() - t0  # schedlint: ignore[wall-clock] -- wall-clock progress reporting
        header = (f"\n\n{'=' * 72}\n== {name}: {result.claim}\n"
                  f"== (completed in {elapsed:.1f}s wall)\n{'=' * 72}\n")
        buf.write(header)
        buf.write(result.text)
    text = buf.getvalue()
    if args.output:
        from .core.artifacts import atomic_write_text
        atomic_write_text(args.output, text)
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-sched argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Reproduction of 'The Battle of the Schedulers: "
                    "FreeBSD ULE vs. Linux CFS' (ATC'18)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workloads") \
        .set_defaults(func=_cmd_list)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", choices=experiment_names())
    p.add_argument("--full", action="store_true",
                   help="full-size configuration (slower)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="fan simulation cells out to N worker "
                        "processes (0 = all cores); rows are "
                        "identical to a serial run")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("report",
                       help="run every experiment, write one report")
    p.add_argument("--output", "-o", default=None,
                   help="write to a file instead of stdout")
    p.add_argument("--only", nargs="*", default=None,
                   choices=experiment_names(), metavar="EXP",
                   help="subset of experiments")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="run experiments in N worker processes "
                        "(0 = all cores)")
    p.set_defaults(func=_cmd_report)

    for cmd, func, help_ in (("run", _cmd_run, "run one workload"),
                             ("compare", _cmd_compare,
                              "compare CFS vs ULE on one workload")):
        p = sub.add_parser(cmd, help=help_)
        p.add_argument("name", choices=workload_names(), metavar="NAME")
        p.add_argument("--sched", default="ule",
                       choices=available_schedulers())
        p.add_argument("--cpus", type=int, default=32)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--noise", action="store_true",
                       help="add per-CPU kernel-thread noise")
        p.add_argument("--sanitize", action="store_true",
                       help="validate scheduler invariants after "
                            "every event (slow; raises "
                            "SanitizerError on violation)")
        if cmd == "run":
            p.add_argument("--digest", action="store_true",
                           help="print the canonical schedule digest "
                                "(see docs/testing.md)")
            p.add_argument("--faults", default=None, metavar="PLAN",
                           help="inject a fault plan (JSON; see "
                                "docs/fault-injection.md) — hotplug, "
                                "tick jitter, IPI loss, stalls")
            p.add_argument("--profile", action="store_true",
                           help="report per-subsystem event counts "
                                "and callback self-time after the "
                                "run (see docs/performance.md)")
            p.add_argument("--decisions", default=None, metavar="PATH",
                           help="export every pick_next decision as "
                                "tid-free JSONL records (the "
                                "predictive-scheduler training "
                                "format; see docs/scheduler-zoo.md)")
        p.set_defaults(func=func)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
