"""Table 2 — fibo and sysbench on one core, CFS vs ULE.

Paper numbers (unscaled)::

                              CFS      ULE
    Fibo - Runtime            160 s    158 s
    Sysbench - Transactions/s 290      532
    Sysbench - Avg. latency   441 ms   125 ms

The reproduction is scaled 1/10 in time; the claims that must hold are
the *ratios*: sysbench throughput ~1.8x higher on ULE, sysbench
latency several times lower on ULE, fibo's total runtime roughly equal
(slightly lower on ULE thanks to running alone, cache-cleanly, after
sysbench finishes).
"""

from __future__ import annotations

from ..analysis.report import render_table
from .base import ExperimentResult
from .fibo_sysbench import TIME_SCALE, run_scenario

CLAIM = ("ULE starves fibo while sysbench runs, which doubles sysbench "
         "throughput and cuts its latency versus CFS's fair sharing")


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("table2", CLAIM)
    outcomes = {sched: run_scenario(sched, seed=seed)
                for sched in ("cfs", "ule")}
    cfs, ule = outcomes["cfs"], outcomes["ule"]

    rows = [
        ["Fibo - Runtime (s)", round(cfs.fibo_runtime_s, 2),
         round(ule.fibo_runtime_s, 2)],
        ["Fibo - Completion (s)", round(cfs.fibo_completion_s, 2),
         round(ule.fibo_completion_s, 2)],
        ["Sysbench - Transactions/s", round(cfs.sysbench_tps, 1),
         round(ule.sysbench_tps, 1)],
        ["Sysbench - Avg. latency (ms)",
         round(cfs.sysbench_latency_ms, 2),
         round(ule.sysbench_latency_ms, 2)],
    ]
    for label, c, u in rows:
        result.row(metric=label, cfs=c, ule=u)

    result.data["tps_ratio"] = ule.sysbench_tps / cfs.sysbench_tps
    result.data["latency_ratio"] = (cfs.sysbench_latency_ms
                                    / ule.sysbench_latency_ms)
    result.data["outcomes"] = outcomes

    table = render_table(
        ["Metric", "CFS", "ULE"], rows,
        title=f"Table 2 (time scaled 1/{TIME_SCALE}) - fibo + sysbench "
              f"on one core")
    paper = ("Paper (unscaled): fibo 160/158 s; sysbench 290/532 tx/s "
             "(ULE 1.83x); latency 441/125 ms (CFS 3.5x higher)")
    measured = (f"Measured ratios: ULE tx/s {result.data['tps_ratio']:.2f}x "
                f"CFS; CFS latency "
                f"{result.data['latency_ratio']:.2f}x ULE")
    result.text = f"{table}\n\n{paper}\n{measured}"
    return result
