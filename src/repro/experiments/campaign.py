"""Resumable experiment campaigns (``python -m repro.experiments``).

A *campaign* runs a list of experiments as independent cells through
the hardened :func:`~repro.experiments.parallel.cell_map` — per-cell
timeouts, bounded retries with exponential backoff, graceful
``FAILED(reason)`` rows — and checkpoints every finished cell through
a :class:`~repro.experiments.checkpoint.CampaignCheckpoint` so an
interrupted ``--jobs`` run can be re-invoked with ``--resume`` and
re-execute only the unfinished cells.

Cells and results are plain JSON dicts (not
:class:`~repro.experiments.base.ExperimentResult` objects) so they
round-trip through the checkpoint manifest unchanged; the report is
rendered *after* the map from those values, with no timing lines, so
a resumed campaign's report is byte-identical to an uninterrupted
one.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .cellcache import CellCache
from .checkpoint import CampaignCheckpoint
from .parallel import FailedCell, cell_map
from .registry import run_experiment
from .store import DEFAULT_DIR as DEFAULT_STORE_DIR

REPORT_HEADER = ("# Reproduction report\n"
                 "# The Battle of the Schedulers: FreeBSD ULE vs. "
                 "Linux CFS (ATC'18)\n")


def run_campaign_cell(cell: dict) -> dict:
    """Execute one campaign cell (one experiment) and return a plain
    JSON-serializable summary — checkpoint manifests store exactly
    this value."""
    result = run_experiment(cell["experiment"], quick=cell["quick"],
                            seed=cell["seed"])
    return {"experiment": cell["experiment"], "claim": result.claim,
            "text": result.text}


def build_cells(names: Sequence[str], quick: bool,
                seed: int) -> list[dict]:
    """The campaign's stable cell list (one dict per experiment)."""
    return [{"experiment": name, "quick": quick, "seed": seed}
            for name in names]


def reseed_cell(cell: dict, attempt: int) -> dict:
    """The campaign reseeding policy: retry ``attempt`` perturbs the
    cell's seed by a large deterministic stride, dodging a
    seed-specific pathology.  Opt-in (``--reseed``) because it trades
    byte-identical reports for forward progress."""
    return dict(cell, seed=cell["seed"] + 100_000 * attempt)


def render_report(cells: Sequence[dict], results: Sequence) -> str:
    """Render the combined report.  Deterministic: derived only from
    cell/result values (no wall-clock timing), so serial, parallel
    and resumed runs all render byte-identically."""
    parts = [REPORT_HEADER]
    rule = "=" * 72
    for cell, result in zip(cells, results):
        name = cell["experiment"]
        if isinstance(result, FailedCell):
            parts.append(f"\n\n{rule}\n== {name}: {result.render()}\n"
                         f"{rule}\n")
            parts.append(f"(no rows: cell failed after "
                         f"{result.attempts} attempt(s))\n")
        else:
            parts.append(f"\n\n{rule}\n== {name}: {result['claim']}\n"
                         f"{rule}\n")
            parts.append(result["text"])
    return "".join(parts)


def run_campaign(names: Sequence[str], quick: bool = True,
                 seed: int = 1, jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None, retries: int = 0,
                 backoff_s: float = 0.5, reseed: bool = False,
                 checkpoint_path=None,
                 resume: bool = False,
                 cache: Optional[CellCache] = None,
                 shard_workers: Optional[int] = None,
                 store_dir=None
                 ) -> tuple[list, list]:
    """Run a campaign; returns ``(cells, results)`` where each result
    is a summary dict or a :class:`FailedCell` marker.

    When ``checkpoint_path`` is given, finished cells are flushed to
    it atomically as they complete; ``resume=True`` replays a prior
    manifest (matching experiment list/quick/seed) instead of
    re-running its cells, and a fully successful campaign removes the
    manifest.

    ``cache`` is the content-addressed cell cache
    (:mod:`~repro.experiments.cellcache`): unlike the checkpoint it
    survives successful campaigns and is shared across campaigns with
    overlapping cells, so a warm rerun executes zero cells.  Reseeded
    retries are deliberately *not* cached under the original cell —
    the cache stores only what the cell's own parameters produced.

    ``shard_workers`` switches the map to the leased work-stealing
    shard executor (:mod:`~repro.experiments.shard`,
    docs/distributed-campaigns.md): workers coordinate through the
    shared store under ``store_dir`` and the sweep survives worker
    SIGKILLs, poison cells, and supervisor crashes.  Incompatible
    with ``reseed`` (shard results must stay content-addressed) —
    sharded retries re-run the cell's own parameters.
    """
    cells = build_cells(names, quick, seed)
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = CampaignCheckpoint(
            checkpoint_path,
            meta={"experiments": list(names), "quick": quick,
                  "seed": seed})
        checkpoint.load(resume=resume)
    store = None
    if shard_workers is not None:
        if reseed:
            raise ValueError("--reseed is incompatible with "
                             "--shard-workers (sharded cells are "
                             "content-addressed by their parameters)")
        from .shard import shard_map
        if store_dir is None:
            store_dir = DEFAULT_STORE_DIR
        if not resume:
            # fresh sweep: a stale store from an older interrupted
            # run must not replay (mirrors checkpoint.load semantics)
            from .store import ShardStore
            ShardStore(store_dir).clear()
        results = shard_map(run_campaign_cell, cells, shard_workers,
                            store_dir=store_dir, timeout_s=timeout_s,
                            retries=retries, backoff_s=backoff_s,
                            checkpoint=checkpoint, cache=cache)
        store = store_dir
    else:
        results = cell_map(run_campaign_cell, cells, jobs,
                           timeout_s=timeout_s, retries=retries,
                           backoff_s=backoff_s,
                           reseed=reseed_cell if reseed else None,
                           mark_failures=True, checkpoint=checkpoint,
                           cache=None if reseed else cache)
    if not any(isinstance(r, FailedCell) for r in results):
        if checkpoint is not None:
            checkpoint.clear()
        if store is not None:
            from .store import ShardStore
            ShardStore(store).clear()
    return cells, results
