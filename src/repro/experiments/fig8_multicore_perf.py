"""Fig. 8 — performance of ULE relative to CFS on the 32-core machine
(§6.3).

Every application runs on the full Opteron topology under each
scheduler, with per-CPU kernel-thread noise running in the background
(the paper attributes CFS's HPC misplacements to reactions to exactly
this kind of micro load).

Paper claims:

* average difference small (+2.75 % for ULE);
* **MG +73 %** (FT and UA also clearly positive): ULE places one
  thread per core and never moves them; CFS occasionally puts two
  spin-barrier threads on one core, delaying every iteration;
* **sysbench negative**: ULE's ``sched_pickcpu`` scans up to all cores
  three times per wakeup — up to 13 % of all cycles;
* hackbench: both schedulers cope with tens of thousands of threads
  (ULE overhead 1 % vs CFS 0.3 %).
"""

from __future__ import annotations

from ..analysis.report import render_bar_chart
from ..analysis.stats import percent_diff
from ..core.clock import msec, sec, usec
from ..workloads.hackbench import HackbenchWorkload
from ..workloads.noise import KernelNoiseWorkload
from ..workloads.registry import FIGURE5_APPS
from ..workloads.sysbench import SysbenchWorkload
from .base import ExperimentResult, make_engine, run_workload

CLAIM = ("multicore: ULE ~= CFS on average (+2.75%), MG/FT/UA much "
         "faster on ULE (placement), sysbench slower on ULE (pickcpu "
         "scan overhead)")

CTX_SWITCH_COST_NS = usec(15)
#: modelled cost of examining one core in ULE's sched_pickcpu
PICKCPU_SCAN_COST_NS = usec(8)
TIMEOUT_NS = sec(200)
NCPUS = 32

QUICK_APPS = ["Gzip", "7zip", "scimark2-(1)", "Apache", "EP", "FT",
              "MG", "UA", "CG", "Sysbench", "Rocksdb", "blackscholes",
              "ferret", "streamcluster", "Hackb-10"]


def _sysbench_multicore() -> SysbenchWorkload:
    """sysbench sized for 32 cores: many threads, short waits, MySQL
    lock contention — a wakeup-heavy workload (~25k wakeups/s)."""
    return SysbenchWorkload(nthreads=256, wait_ns=msec(10),
                            transactions_per_thread=400,
                            init_per_thread_ns=msec(2),
                            lock_fraction=0.25)


def _figure8_factory(name: str):
    if name == "Sysbench":
        return _sysbench_multicore
    if name == "Hackb-800":
        return lambda: HackbenchWorkload(groups=20, fan=20, loops=10)
    if name == "Hackb-10":
        return lambda: HackbenchWorkload(groups=1, fan=5, loops=40)
    return FIGURE5_APPS[name]


def run_app(name: str, sched: str, seed: int = 1) -> dict:
    """Run one app on the 32-core machine with ambient kernel noise."""
    sched_options = {}
    if sched == "ule":
        sched_options["pickcpu_scan_cost_ns"] = PICKCPU_SCAN_COST_NS
    engine = make_engine(sched, ncpus=NCPUS, seed=seed,
                         ctx_switch_cost_ns=CTX_SWITCH_COST_NS,
                         **sched_options)
    KernelNoiseWorkload(tail_prob=0.005).launch(engine, at=0)
    workload = _figure8_factory(name)()
    reason = run_workload(engine, workload, TIMEOUT_NS)
    if not workload.done(engine) and reason == "deadline":
        raise RuntimeError(f"{name} on {sched} hit the deadline")
    busy = sum(c.busy_ns for c in engine.machine.cores)
    overhead = engine.metrics.counter("sched.overhead_ns")
    return {
        "perf": workload.performance(engine),
        "overhead_pct": 100.0 * overhead / max(1, busy),
        "elapsed_ns": engine.now,
    }


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig8", CLAIM)
    apps = QUICK_APPS if quick else (list(FIGURE5_APPS)
                                     + ["Hackb-800", "Hackb-10"])
    diffs = []
    for name in apps:
        cfs = run_app(name, "cfs", seed=seed)
        ule = run_app(name, "ule", seed=seed)
        diff = percent_diff(ule["perf"], cfs["perf"])
        diffs.append(diff)
        result.row(app=name, perf_cfs=round(cfs["perf"], 4),
                   perf_ule=round(ule["perf"], 4),
                   diff_pct=round(diff, 1),
                   ule_overhead_pct=round(ule["overhead_pct"], 2),
                   cfs_overhead_pct=round(cfs["overhead_pct"], 2))
    average = sum(diffs) / len(diffs)
    result.data["average_diff_pct"] = average
    result.data["diff_by_app"] = {r["app"]: r["diff_pct"]
                                  for r in result.rows}

    chart = render_bar_chart([r["app"] for r in result.rows],
                             [r["diff_pct"] for r in result.rows],
                             title="Fig. 8: ULE perf vs CFS, 32 cores "
                                   "(positive = ULE faster)")
    sysb = result.data["diff_by_app"].get("Sysbench")
    mg = result.data["diff_by_app"].get("MG")
    result.text = "\n".join([
        chart, "",
        f"average difference: {average:+.1f}% (paper: +2.75% for ULE)",
        f"MG: {mg:+.1f}% (paper: +73%); "
        f"Sysbench: {sysb:+.1f}% (paper: negative, scan overhead)",
    ])
    return result
