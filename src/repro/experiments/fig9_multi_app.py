"""Fig. 9 — multi-application workloads on 32 cores (§6.4).

Four pairs, each run alone and co-scheduled, under both schedulers;
bars are the performance relative to running alone on CFS:

* **c-ray + EP** (batch + batch): both schedulers treat two batch
  applications alike; EP's small ULE edge survives co-scheduling.
* **fibo + sysbench** (batch + interactive): sysbench is correctly
  prioritized by ULE, yet performs *worse* than on CFS — MySQL's lock
  convoys meet ULE's lack of preemption: when a lock is released, the
  woken MySQL thread does not preempt the running fibo thread, adding
  up to a timeslice of delay per handoff.
* **blackscholes + ferret** (batch + interactive): ULE gives ferret
  absolute priority (it is barely affected), while blackscholes loses
  >80 %; CFS shares fairly and both suffer moderately.
* **apache + sysbench** (interactive + interactive): both schedulers
  perform similarly.
"""

from __future__ import annotations

from ..analysis.report import render_bar_chart, render_table
from ..analysis.stats import percent_diff
from ..core.clock import msec, sec, usec
from ..workloads import (ApacheWorkload, CrayWorkload, FiboWorkload,
                         SysbenchWorkload)
from ..workloads.nas import ep
from ..workloads.parsec import PipelineWorkload, blackscholes
from .base import ExperimentResult, make_engine

CLAIM = ("co-scheduling: batch+batch and interactive+interactive pairs "
         "behave alike on both schedulers; ULE shields the interactive "
         "app of a mixed pair (starving the batch one), except that "
         "missing preemption hurts sysbench's lock handoffs")

CTX_SWITCH_COST_NS = usec(15)
TIMEOUT_NS = sec(120)
NCPUS = 32


def _fibo32():
    return FiboWorkload(work_ns=sec(40))


def _sysbench32():
    # MySQL at 32-core scale: enough threads to saturate the machine
    # and heavy internal lock contention (the paper: "lock contention
    # forces the threads to sleep while waiting for the locks")
    return SysbenchWorkload(nthreads=160, wait_ns=msec(4),
                            transactions_per_thread=150,
                            init_per_thread_ns=msec(2),
                            lock_fraction=0.4)


def _apache32():
    return ApacheWorkload(nworkers=100, outstanding=100,
                          total_requests=60_000)


def _ferret32():
    # ferret at 32-core scale: an unpaced throughput pipeline (the
    # PARSEC configuration processes a fixed dataset flat out) with
    # 128 stage threads -- it swamps blackscholes' 16 threads on both
    # schedulers, but keeps most of the machine for itself under ULE
    return PipelineWorkload(app="ferret", nstages=4, stage_threads=32,
                            items=12000, stage_work_ns=msec(2))


def _cray32():
    # a thread-per-core render (c-ray -t 32), compute-dominated, so
    # the two batch applications have comparable thread counts
    return CrayWorkload(nthreads=64, compute_ns=msec(750),
                        fork_spacing_ns=msec(3))


PAIRS = [
    ("c-ray", _cray32, "EP", ep, "batch + batch"),
    ("fibo", _fibo32, "sysbench", _sysbench32, "batch + interactive"),
    ("blackscholes", blackscholes, "ferret", _ferret32,
     "batch + interactive"),
    ("apache", _apache32, "sysbench", _sysbench32,
     "interactive + interactive"),
]


def _run_pair(sched: str, factories, seed: int = 1) -> list[float]:
    engine = make_engine(sched, ncpus=NCPUS, seed=seed,
                         ctx_switch_cost_ns=CTX_SWITCH_COST_NS)
    workloads = [factory() for factory in factories]
    for wl in workloads:
        wl.launch(engine, at=0)
    engine.run(until=TIMEOUT_NS,
               stop_when=lambda e: all(w.done(e) for w in workloads),
               check_interval=64)
    return [wl.performance(engine) for wl in workloads]


def _run_alone(sched: str, factory, seed: int = 1) -> float:
    return _run_pair(sched, [factory], seed=seed)[0]


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig9", CLAIM)
    pairs = PAIRS if not quick else PAIRS
    labels = []
    series = {"cfs_multi": [], "ule_single": [], "ule_multi": []}
    for name_a, fa, name_b, fb, kind in pairs:
        # baselines: each app alone on CFS (the figure's reference)
        base_a = _run_alone("cfs", fa, seed=seed)
        base_b = _run_alone("cfs", fb, seed=seed)
        ule_alone_a = _run_alone("ule", fa, seed=seed)
        ule_alone_b = _run_alone("ule", fb, seed=seed)
        cfs_a, cfs_b = _run_pair("cfs", [fa, fb], seed=seed)
        ule_a, ule_b = _run_pair("ule", [fa, fb], seed=seed)
        for label, base, ule_single, cfs_m, ule_m in (
                (name_a, base_a, ule_alone_a, cfs_a, ule_a),
                (name_b, base_b, ule_alone_b, cfs_b, ule_b)):
            row = dict(pair=f"{name_a}+{name_b}", app=label, kind=kind,
                       cfs_multi_pct=round(percent_diff(cfs_m, base), 1),
                       ule_single_pct=round(
                           percent_diff(ule_single, base), 1),
                       ule_multi_pct=round(percent_diff(ule_m, base), 1))
            result.rows.append(row)
            labels.append(f"{label} ({name_a}+{name_b})")
            series["cfs_multi"].append(row["cfs_multi_pct"])
            series["ule_single"].append(row["ule_single_pct"])
            series["ule_multi"].append(row["ule_multi_pct"])
    result.data["series"] = series

    table = render_table(
        ["pair", "app", "CFS multi %", "ULE single %", "ULE multi %"],
        [[r["pair"], r["app"], r["cfs_multi_pct"], r["ule_single_pct"],
          r["ule_multi_pct"]] for r in result.rows],
        title="Fig. 9: perf improvement relative to running alone on "
              "CFS (%)")
    chart = render_bar_chart(
        labels, series["ule_multi"],
        title="ULE multi-app perf vs alone-on-CFS")
    paper = ("Paper: c-ray+EP similar on both; ferret unaffected under "
             "ULE while blackscholes loses >80%; sysbench under ULE "
             "hurt by missing preemption on MySQL lock handoffs; "
             "apache+sysbench similar on both")
    result.text = "\n\n".join([table, chart, paper])
    return result
