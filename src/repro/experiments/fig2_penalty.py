"""Fig. 2 — interactivity penalty of fibo and of the sysbench threads
over time, under ULE.

The claim: both start near 0; fibo's penalty rises quickly to the
maximum (100) and it stops being interactive, while sysbench's
threads' penalties drop to ~0 and stay below the interactive
threshold (30) for their entire execution — which is what makes the
starvation of Fig. 1(b) unbounded.
"""

from __future__ import annotations

from ..core.clock import sec
from ..tracing.export import ascii_chart
from ..ule.params import UleTunables
from .base import ExperimentResult
from .fibo_sysbench import run_scenario

CLAIM = ("under ULE, fibo's penalty climbs to ~100 (batch) while "
         "sysbench threads stay below the interactive threshold")


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig2", CLAIM)
    out = run_scenario("ule", seed=seed, sample_penalty=True)
    fibo_pen = out.engine.metrics.series("penalty.fibo")
    sysb_pen = out.engine.metrics.series("penalty.sysbench")
    threshold = UleTunables().interact_thresh

    # Steady-state values: averages over the window where sysbench ran.
    active = [v for t, v in fibo_pen
              if sec(3) < t < (out.sysbench.finished_at or sec(10))]
    fibo_steady = max(fibo_pen.values) if fibo_pen.values else 0
    sysb_steady = (sum(sysb_pen.values[-20:]) /
                   min(20, len(sysb_pen.values)))

    result.row(thread="fibo", max_penalty=fibo_steady,
               classified="batch" if fibo_steady > threshold
               else "interactive")
    result.row(thread="sysbench workers (mean)",
               steady_penalty=round(sysb_steady, 1),
               classified="interactive" if sysb_steady <= threshold
               else "batch")
    result.data["fibo_series"] = fibo_pen
    result.data["sysb_series"] = sysb_pen
    result.data["fibo_max_penalty"] = fibo_steady
    result.data["sysb_steady_penalty"] = sysb_steady

    text = "\n\n".join([
        ascii_chart(fibo_pen,
                    title="Fig. 2: interactivity penalty of fibo"),
        ascii_chart(sysb_pen,
                    title="Fig. 2: mean interactivity penalty of "
                          "sysbench threads"),
        f"fibo max penalty: {fibo_steady:.0f} (paper: rises to 100); "
        f"sysbench steady penalty: {sysb_steady:.1f} (paper: drops "
        f"to ~0, always < {threshold})",
    ])
    result.text = text
    return result
