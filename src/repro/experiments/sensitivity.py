"""Seed-sensitivity study: are the headline claims robust?

Each key ratio is re-measured across several random seeds and reported
as mean with a 95 % confidence interval.  The paper's claims should
hold for *every* seed, not just a lucky one:

* Table 2: ULE/CFS sysbench throughput ratio stays well above 1;
* Fig. 3: ULE starves a large fraction of the 128 sysbench threads
  while CFS starves none;
* Fig. 6: ULE's balancer converges in tens of seconds, CFS in under a
  second (rough balance).
"""

from __future__ import annotations

from ..analysis.report import render_table
from ..analysis.stats import confidence_interval95, mean, stdev
from ..core.clock import to_sec
from .base import ExperimentResult

CLAIM = ("the headline ratios hold across random seeds: ULE's sysbench "
         "boost, the fig3 starvation split, and the two balancing "
         "convergence regimes")

DEFAULT_SEEDS = (1, 2, 3)


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    from . import fig3_sysbench_threads, fig6_load_balancing
    from .fibo_sysbench import run_scenario

    seeds = DEFAULT_SEEDS if quick else tuple(range(1, 8))
    result = ExperimentResult("sensitivity", CLAIM)

    tps_ratios = []
    for s in seeds:
        cfs = run_scenario("cfs", seed=s)
        ule = run_scenario("ule", seed=s)
        tps_ratios.append(ule.sysbench_tps / cfs.sysbench_tps)

    starved = []
    for s in seeds:
        engine, sysb = fig3_sysbench_threads.run_single_app("ule",
                                                            seed=s)
        starved.append(len(sysb.starved_workers(engine)))

    ule_converge = []
    cfs_rough = []
    for s in seeds:
        eng, _, _ = fig6_load_balancing.run_release(
            "ule", nthreads=64, seed=s)
        ule_converge.append(to_sec(eng.now))
        eng, _, _ = fig6_load_balancing.run_release(
            "cfs", nthreads=64, seed=s,
            timeout_ns=6 * 10**9)
        from ..analysis.convergence import time_to_balance
        ttb = time_to_balance(eng.metrics, 32, start_ns=2 * 10**9,
                              tolerance=4)
        cfs_rough.append(to_sec(ttb) if ttb is not None else 6.0)

    rows = []
    for label, values, expect in (
            ("table2 ULE/CFS tx-rate ratio", tps_ratios, "> 1.3"),
            ("fig3 starved threads (of 128)", starved, "> 30"),
            ("fig6 ULE time-to-balance (s)", ule_converge, "10..600"),
            ("fig6 CFS rough balance (s)", cfs_rough, "< 1.5")):
        lo, hi = confidence_interval95([float(v) for v in values])
        rows.append([label, round(mean([float(v) for v in values]), 2),
                     round(stdev([float(v) for v in values]), 2),
                     f"[{lo:.2f}, {hi:.2f}]", expect])
        result.row(metric=label,
                   values=[round(float(v), 2) for v in values])
    result.data["tps_ratios"] = tps_ratios
    result.data["starved"] = starved
    result.data["ule_converge_s"] = ule_converge
    result.data["cfs_rough_s"] = cfs_rough

    table = render_table(
        ["metric", "mean", "stdev", "95% CI", "expected"], rows,
        title=f"Seed sensitivity over seeds {list(seeds)}")
    result.text = table
    return result
