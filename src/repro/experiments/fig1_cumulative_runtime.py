"""Fig. 1 — cumulative runtime of fibo and sysbench on (a) CFS and
(b) ULE.

The claim: on CFS fibo keeps accumulating runtime (more slowly) while
sysbench runs — no starvation; on ULE fibo's curve goes flat the
moment sysbench is up (unbounded starvation) and resumes when
sysbench finishes.
"""

from __future__ import annotations

from ..core.clock import sec, to_sec
from ..tracing.export import ascii_chart
from .base import ExperimentResult
from .fibo_sysbench import SYSBENCH_START_NS, run_scenario

CLAIM = ("fibo shares the core under CFS but is fully starved under "
         "ULE while sysbench runs")


def _flat_interval(series) -> float:
    """Longest time (s) the cumulative-runtime curve stayed flat."""
    longest = 0.0
    flat_start = None
    prev_v = None
    for t, v in series:
        if prev_v is not None and v == prev_v:
            if flat_start is None:
                flat_start = prev_t
            longest = max(longest, to_sec(t - flat_start))
        else:
            flat_start = None
        prev_t, prev_v = t, v
    return longest


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig1", CLAIM)
    charts = []
    for sched in ("cfs", "ule"):
        out = run_scenario(sched, seed=seed)
        fibo_series = out.engine.metrics.series("runtime.fibo")
        sysb_series = out.engine.metrics.series("runtime.sysbench")
        stall = _flat_interval(fibo_series)
        result.row(sched=sched,
                   fibo_final_s=round(to_sec(fibo_series.values[-1]), 2),
                   sysbench_final_s=round(
                       to_sec(sysb_series.values[-1]), 2),
                   fibo_longest_stall_s=round(stall, 2))
        result.data[f"{sched}_fibo_series"] = fibo_series
        result.data[f"{sched}_sysbench_series"] = sysb_series
        label = "(a) CFS" if sched == "cfs" else "(b) ULE"
        charts.append(ascii_chart(
            fibo_series, title=f"Fig. 1{label}: fibo cumulative "
            f"runtime (ns) over time"))
        charts.append(ascii_chart(
            sysb_series, title=f"Fig. 1{label}: sysbench cumulative "
            f"runtime (ns) over time"))

    cfs_stall = result.rows[0]["fibo_longest_stall_s"]
    ule_stall = result.rows[1]["fibo_longest_stall_s"]
    summary = (f"fibo's longest progress stall: CFS {cfs_stall:.2f}s vs "
               f"ULE {ule_stall:.2f}s (paper: CFS never stalls; ULE "
               f"stalls for sysbench's entire execution)")
    result.data["cfs_stall_s"] = cfs_stall
    result.data["ule_stall_s"] = ule_stall
    result.text = "\n\n".join(charts) + "\n\n" + summary
    return result
