"""Scheduling-latency study (extension).

The paper's related work (Abaffy et al., Torrey et al., Wong et al.)
compares schedulers by *wait time* distributions; the paper itself only
reports application metrics.  This extension measures the wake-to-run
latency distribution directly for three thread classes sharing one
core under each scheduler:

* an interactive thread (short bursts, long voluntary sleeps),
* a batch hog,
* a pool of middling service threads.

Expectations from the schedulers' designs:

* CFS bounds everyone's latency by the scheduling period (no thread
  waits forever), with sleepers served almost immediately (sleeper
  credit + wakeup preemption);
* ULE gives the interactive thread low latency only at slice
  boundaries (no local preemption) but *absolute* priority, while the
  batch hog's latency under load is unbounded (starvation).
"""

from __future__ import annotations

from ..analysis.distributions import percentile_row, render_histogram
from ..analysis.report import render_table
from ..core.actions import Run, Sleep, ThreadSpec, run_forever
from ..core.clock import msec, sec, usec
from .base import ExperimentResult, make_engine

CLAIM = ("wake-to-run latency: both schedulers keep interactive "
         "latency in the milliseconds on a loaded core; ULE starves "
         "the batch class outright while CFS bounds it by the period")


def _interactive(ctx):
    while True:
        yield Sleep(msec(8) + usec(137))
        yield Run(usec(400))


def _service(ctx):
    while True:
        yield Sleep(msec(2) + usec(61))
        yield Run(msec(1))


def _measure(sched: str, seed: int):
    engine = make_engine(sched, ncpus=1, seed=seed)
    hog = engine.spawn(ThreadSpec("hog", lambda ctx: iter(
        [run_forever()]), app="hog"))
    ia = engine.spawn(ThreadSpec("ia", _interactive, app="ia"))
    pool = [engine.spawn(ThreadSpec(f"svc{i}", _service, app="svc"))
            for i in range(4)]

    # per-thread wait recorders via the switch hook
    waits: dict[str, list[int]] = {"ia": [], "svc": [], "hog": []}
    wait_start: dict[int, int] = {}

    def on_wake(thread, cpu, waker):
        wait_start[thread.tid] = engine.now

    def on_switch(core, prev, nxt):
        if nxt is None:
            return
        started = wait_start.pop(nxt.tid, None)
        if started is not None:
            waits[nxt.app].append(engine.now - started)

    engine.tracer.on_wake.append(on_wake)
    engine.tracer.on_switch.append(on_switch)
    # warm up so ULE's classifications settle, then measure
    engine.run(until=sec(4))
    for lst in waits.values():
        lst.clear()
    engine.run(until=sec(12))
    # reporting-only ratio computed after the run; never feeds back
    hog_share = hog.total_runtime / engine.now  # schedlint: ignore[float-ns-clock]
    return waits, hog_share


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("latency", CLAIM)
    sections = []
    for sched in ("cfs", "ule"):
        waits, hog_share = _measure(sched, seed)
        for cls in ("ia", "svc"):
            samples = waits[cls]
            if not samples:
                continue
            from ..core.metrics import LatencyRecorder
            rec = LatencyRecorder(cls)
            rec.samples = samples
            row = percentile_row(rec)
            result.row(sched=sched, cls=cls, **{
                k: round(v, 3) for k, v in row.items()})
        result.data[f"{sched}_hog_share"] = hog_share
        result.data[f"{sched}_waits"] = waits
        sections.append(render_histogram(
            waits["ia"], title=f"{sched.upper()}: interactive "
            f"wake-to-run latency (log buckets, ms)"))

    table = render_table(
        ["sched", "class", "count", "mean", "p50", "p95", "p99", "max"],
        [[r["sched"], r["cls"], r["count"], r["mean"], r["p50"],
          r["p95"], r["p99"], r["max"]] for r in result.rows],
        title="Wake-to-run latency on a loaded core (ms)")
    hogs = (f"batch hog CPU share: CFS "
            f"{100 * result.data['cfs_hog_share']:.1f}% vs ULE "
            f"{100 * result.data['ule_hog_share']:.1f}% "
            f"(ULE starves it)")
    result.text = "\n\n".join([table] + sections + [hogs])
    return result
