"""Table 1 — the Linux scheduler API and its FreeBSD equivalents.

The table is executable here: :mod:`repro.sched.freebsd_api` maps each
FreeBSD entry point onto the Linux-style operation, and this driver
both prints the table and *exercises* every mapping against a live
scheduler to prove the adapter is faithful (including the 2-to-1
``sched_add``/``sched_wakeup`` -> ``enqueue_task`` mapping).
"""

from __future__ import annotations

from ..analysis.report import render_table
from ..core.actions import ThreadSpec, run_forever
from ..core.clock import msec
from ..sched.freebsd_api import TABLE1_MAPPINGS, FreeBSDSchedAdapter
from .base import ExperimentResult, make_engine

CLAIM = ("Linux scheduler API operations map onto FreeBSD's sched_* "
         "functions (the port's translation layer)")


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("table1", CLAIM)

    # Exercise every adapter function against the ULE scheduler.
    engine = make_engine("ule", ncpus=2, seed=seed)
    adapter = FreeBSDSchedAdapter(engine.scheduler)
    core = engine.machine.cores[0]

    exercised: dict[str, bool] = {}

    t = engine.spawn(ThreadSpec("probe", lambda ctx: iter([run_forever()])))
    engine.run(until=msec(5))

    # sched_pickcpu: placement decision for a hypothetical wakeup
    cpu = adapter.sched_pickcpu(t, waking=True)
    exercised["select_task_rq"] = 0 <= cpu < 2

    # sched_rem / sched_add round trip (thread must not be running)
    probe2 = engine.spawn(ThreadSpec(
        "probe2", lambda ctx: iter([run_forever()]),
        affinity=frozenset({0})))
    engine.run(until=msec(10))
    queued = [x for x in (t, probe2) if not x.is_running and x.is_runnable]
    if queued:
        victim = queued[0]
        vcore = engine.machine.cores[victim.rq_cpu]
        before = engine.scheduler.nr_runnable(vcore)
        adapter.sched_rem(vcore, victim)
        adapter.sched_add(vcore, victim)
        exercised["enqueue_task/dequeue_task"] = \
            engine.scheduler.nr_runnable(vcore) == before
    else:
        exercised["enqueue_task/dequeue_task"] = False

    # sched_relinquish (yield) and sched_choose (pick)
    adapter.sched_relinquish(core)
    chosen = adapter.sched_choose(core)
    exercised["yield_task/pick_next_task"] = chosen is not None
    # put the choice back so the engine state stays consistent
    if chosen is not None and chosen is not core.current:
        core.rq.add(chosen)

    # sched_switch (stats update)
    if core.current is not None:
        adapter.sched_switch(core, core.current, msec(1))
        exercised["put_prev_task"] = True

    rows = [(m.linux, m.freebsd, m.usage) for m in TABLE1_MAPPINGS]
    result.rows = [dict(linux=m.linux, freebsd=m.freebsd, usage=m.usage)
                   for m in TABLE1_MAPPINGS]
    result.data["exercised"] = exercised
    table = render_table(
        ["Linux", "FreeBSD equivalent", "Usage"], rows,
        title="Table 1: Linux scheduler API and FreeBSD equivalents")
    checks = "\n".join(f"  [{'ok' if v else 'FAIL'}] {k}"
                       for k, v in exercised.items())
    result.text = f"{table}\n\nAdapter exercised against live ULE:\n{checks}"
    return result
