"""Experiment framework: each paper table/figure has a driver module
exposing ``run(quick=...) -> ExperimentResult``.

Experiments run in *scaled* time — the paper's multi-minute benchmarks
are shrunk so the full suite executes in minutes of wall clock while
preserving every ratio the paper reports (which scheduler wins, by
what factor, where behaviour flips).  Each driver documents its scale
factor; EXPERIMENTS.md records paper-vs-measured numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.engine import Engine
from ..core.topology import opteron_6172, single_core
from ..sched import scheduler_factory


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver."""

    #: experiment id, e.g. "table2" or "fig6"
    experiment: str
    #: one-line description (what the paper shows)
    claim: str
    #: structured results, one dict per row/series-point
    rows: list[dict] = field(default_factory=list)
    #: rendered human-readable report
    text: str = ""
    #: free-form extras (series, raw numbers) for tests and plotting
    data: dict[str, Any] = field(default_factory=dict)

    def row(self, **kwargs) -> dict:
        """Append a structured result row and return it."""
        entry = dict(kwargs)
        self.rows.append(entry)
        return entry

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text or repr(self)


#: warm engine pool: one reusable engine per construction signature,
#: recycled with :meth:`Engine.reset` between cells.  Only consulted
#: when ``REPRO_WARM_ENGINES`` is truthy — campaign worker processes
#: turn it on (they run many same-shaped cells back to back and
#: engine construction is a visible slice of small-cell runtime);
#: everything else defaults to fresh construction.
_WARM_POOL: dict = {}


def _warm_enabled() -> bool:
    return os.environ.get("REPRO_WARM_ENGINES", "") not in (
        "", "0", "false", "no")


def make_engine(sched: str, ncpus: int = 1, seed: int = 1,
                corun_slowdown: float = 1.0,
                ctx_switch_cost_ns: int = 0,
                tickless: Optional[bool] = None,
                sanitize: Optional[bool] = None,
                faults=None,
                profile=None,
                **sched_options) -> Engine:
    """Engine factory used by all experiment drivers.

    ``ncpus=32`` builds the paper's Opteron topology (4 NUMA nodes of
    8 cores); ``ncpus=1`` the per-core-scheduling setup of §5.
    ``tickless`` overrides the engine-wide NO_HZ default (the
    determinism tests run both settings and compare); ``sanitize``
    overrides the ``REPRO_SANITIZE`` environment default; ``faults``
    injects a :class:`~repro.faults.plan.FaultPlan` (empty plans are
    digest-identical to no plan; see docs/fault-injection.md);
    ``profile`` overrides the ``REPRO_PROFILE`` environment default
    (see docs/performance.md).

    With ``REPRO_WARM_ENGINES`` set (campaign workers export it), an
    engine with the same construction signature is reused via
    :meth:`Engine.reset` instead of rebuilt — digest-identical to a
    fresh engine (see ``tests/test_engine_reset.py``).  ``seed`` and
    ``faults`` are per-run reset arguments, not part of the
    signature.  Reuse assumes drivers run same-signature engines
    sequentially within a process, which is how every driver and the
    cell executors behave.
    """
    key = None
    if _warm_enabled():
        try:
            key = (sched, ncpus, corun_slowdown, ctx_switch_cost_ns,
                   tickless, sanitize, profile,
                   tuple(sorted(sched_options.items())))
            engine = _WARM_POOL.get(key)
        except TypeError:
            key = None  # unhashable sched_option value: don't pool
            engine = None
        if engine is not None:
            engine.reset(seed=seed, faults=faults)
            return engine
    if ncpus == 1:
        topo = single_core()
    elif ncpus == 32:
        topo = opteron_6172()
    else:
        from ..core.topology import smp
        topo = smp(ncpus)
    engine = Engine(topo, scheduler_factory(sched, **sched_options),
                    seed=seed, corun_slowdown=corun_slowdown,
                    ctx_switch_cost_ns=ctx_switch_cost_ns,
                    tickless=tickless, sanitize=sanitize, faults=faults,
                    profile=profile)
    if key is not None:
        _WARM_POOL[key] = engine
    return engine


def run_workload(engine: Engine, workload, timeout_ns: int,
                 at: int = 0) -> str:
    """Launch a workload and run until it finishes (or timeout)."""
    workload.launch(engine, at=at)
    return engine.run(until=timeout_ns,
                      stop_when=lambda e: workload.done(e),
                      check_interval=32)


SCHEDULERS = ("cfs", "ule")
