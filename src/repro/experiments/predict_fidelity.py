"""Next-pick fidelity of the table-based predictive scheduler.

Not a paper figure — the KernelOracle-motivated extension capping the
scheduler zoo (ROADMAP item 4): treat CFS's scheduling decisions as
data, train the :class:`~repro.sched.predictive.PickTable` on decision
traces exported from real CFS runs, and measure how often the learned
table's argmax matches CFS's actual next pick on **held-out**
scenarios it never saw.

Protocol (all inputs derived from ``seed``, so the report is
reproducible end to end):

1. *train* — run fuzz scenarios for the training seed block under CFS
   with :func:`~repro.tracing.decisions.attach_decision_trace`; fold
   every contested decision (two or more candidates) into the table;
2. *evaluate* — export decisions the same way for a disjoint seed
   block and score, per decision, whether the model predicts the
   thread CFS picked.  Two baselines calibrate the number:
   ``incumbent`` (always keep the running thread when it is a
   candidate) and ``longest-wait`` (pick the candidate that has
   waited longest);
3. *deploy* — run one held-out scenario under
   ``scheduler_factory("predictive", table=...)`` to show the trained
   table *is* a working scheduler (completion + digest), not just a
   classifier.

The fidelity numbers are honest model quality, not a tautology: the
features (nice, incumbency, log-bucketed wait and runtime) are a lossy
view of CFS's vruntime state, so the table can only approximate the
true pick order.
"""

from __future__ import annotations

import random

from ..core.clock import msec
from ..sched import scheduler_factory
from ..sched.predictive import PickTable
from ..testing.fuzzer import FuzzThread, Scenario
from ..tracing.decisions import attach_decision_trace
from ..tracing.digest import schedule_digest
from .base import ExperimentResult

CLAIM = ("schedules are learnable data: a pick table trained on "
         "exported CFS decision traces predicts CFS's next pick on "
         "held-out scenarios ~5x better than incumbent-stickiness, "
         "approaching the best hand-written heuristic")

#: seed-block layout: train on [seed, seed+train), evaluate on
#: [seed+EVAL_OFFSET, ...) — disjoint for every seed < EVAL_OFFSET
EVAL_OFFSET = 1000


def contention_scenario(seed: int) -> Scenario:
    """A decision-dense scenario: several CPU-hungry threads of mixed
    nice values share one or two cores, with occasional short sleeps
    so wakeup picks (and wait-time features) appear alongside
    slice-expiry picks.  A pure function of ``seed``, like the fuzzer's
    generator — same seed, byte-identical scenario."""
    rng = random.Random(f"repro.experiments.predict:{seed}")
    ncpus = rng.choice((1, 1, 2))
    nthreads = rng.randint(4, 7)
    threads = []
    for i in range(nthreads):
        steps = []
        for _ in range(rng.randint(3, 6)):
            steps.append(("run", rng.randint(20, 80)))
            if rng.random() < 0.4:
                steps.append(("sleep", rng.randint(1, 10)))
        threads.append(FuzzThread(
            name=f"p{i}",
            nice=rng.choice([-10, -5, 0, 0, 5, 10]),
            spawn_at_ms=rng.randint(0, 10),
            plan=tuple(steps)))
    return Scenario(seed=seed, ncpus=ncpus, threads=tuple(threads))


def collect_decisions(sched: str, seeds):
    """Contested pick records from contention scenarios run under
    ``sched``."""
    from ..testing.fuzzer import build_engine
    records = []
    for s in seeds:
        scenario = contention_scenario(s)
        engine, _ = build_engine(scenario, sched, sanitize=False)
        trace = attach_decision_trace(engine)
        engine.run(until=msec(scenario.until_ms))
        records.extend(r for r in trace.records if r.contested())
    return records


def _predict_incumbent(record) -> int:
    """Baseline: keep the running thread; else the first candidate."""
    for idx, features in enumerate(record.features):
        if features[1]:  # the incumbency flag
            return idx
    return 0


def _predict_longest_wait(record) -> int:
    """Baseline: the candidate with the largest wait bucket."""
    best, best_wait = 0, -1
    for idx, features in enumerate(record.features):
        if features[2] > best_wait:
            best, best_wait = idx, features[2]
    return best


def fidelity(records, predict) -> float:
    """Fraction of decisions where ``predict(record)`` names the
    candidate the traced scheduler actually picked."""
    if not records:
        return 0.0
    hits = 0
    for r in records:
        chosen_pos = r.candidates.index(r.chosen)
        if predict(r) == chosen_pos:
            hits += 1
    return hits / len(records)


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Train on one CFS seed block, score next-pick fidelity on a
    disjoint block against both baselines, then deploy the table as a
    live scheduler.  Pure function of ``seed``."""
    ntrain, neval = (6, 3) if quick else (20, 8)
    train_seeds = range(seed, seed + ntrain)
    eval_seeds = range(seed + EVAL_OFFSET, seed + EVAL_OFFSET + neval)

    result = ExperimentResult(
        experiment="predict", claim=CLAIM,
        data={"train_seeds": list(train_seeds),
              "eval_seeds": list(eval_seeds)})

    train = collect_decisions("cfs", train_seeds)
    table = PickTable().train(train)
    held_out = collect_decisions("cfs", eval_seeds)

    model = fidelity(held_out,
                     lambda r: table.predict(r.features))
    incumbent = fidelity(held_out, _predict_incumbent)
    longest = fidelity(held_out, _predict_longest_wait)
    result.row(predictor="pick-table", fidelity=model,
               decisions=len(held_out), table_entries=len(table))
    result.row(predictor="incumbent", fidelity=incumbent,
               decisions=len(held_out))
    result.row(predictor="longest-wait", fidelity=longest,
               decisions=len(held_out))

    # deploy: the trained table as an actual scheduler on a held-out
    # scenario — completion proves it is a valid policy, the digest
    # makes the deployment reproducible
    deploy_scenario = contention_scenario(seed + EVAL_OFFSET)
    from ..core.actions import ThreadSpec
    from ..core.engine import Engine
    from ..core.topology import smp
    from ..testing.fuzzer import behavior_from_plan
    engine = Engine(
        smp(deploy_scenario.ncpus,
            cpus_per_llc=deploy_scenario.cpus_per_llc),
        scheduler_factory("predictive", table=table),
        seed=deploy_scenario.seed)
    for ft in deploy_scenario.threads:
        engine.spawn(
            ThreadSpec(ft.name, behavior_from_plan(ft.plan),
                       nice=ft.nice,
                       affinity=(frozenset(ft.affinity)
                                 if ft.affinity is not None else None),
                       app=ft.app),
            at=msec(ft.spawn_at_ms))
    reason = engine.run(until=msec(deploy_scenario.until_ms))
    result.row(predictor="deployed-scheduler", end=reason,
               digest=schedule_digest(engine))

    lines = [
        "Next-pick fidelity vs real CFS (held-out fuzz scenarios)",
        f"  trained on {len(train)} contested decisions "
        f"({ntrain} seeds); table has {len(table)} feature rows",
        f"  evaluated on {len(held_out)} contested decisions "
        f"({neval} held-out seeds)",
        "",
        f"  {'predictor':<14} fidelity",
        f"  {'pick-table':<14} {model:8.3f}",
        f"  {'incumbent':<14} {incumbent:8.3f}",
        f"  {'longest-wait':<14} {longest:8.3f}",
        "",
        f"  deployed as '--sched predictive': end={reason}, "
        f"digest={result.rows[-1]['digest'][:16]}...",
    ]
    result.text = "\n".join(lines)
    result.data["fidelity"] = {"pick-table": model,
                               "incumbent": incumbent,
                               "longest-wait": longest}
    return result
