"""Registry of experiment drivers, one per paper table/figure."""

from __future__ import annotations

import importlib
import inspect
from typing import Callable, Optional

from ..core.errors import ExperimentError
from .base import ExperimentResult

#: experiment id -> (module, one-line description)
EXPERIMENTS = {
    "table1": ("table1_api",
               "Linux scheduler API vs FreeBSD equivalents"),
    "table2": ("table2_fibo_sysbench",
               "fibo + sysbench on one core: throughput & latency"),
    "fig1": ("fig1_cumulative_runtime",
             "cumulative runtime of fibo/sysbench (starvation)"),
    "fig2": ("fig2_penalty",
             "interactivity penalties of fibo and sysbench over time"),
    "fig3": ("fig3_sysbench_threads",
             "single-app starvation: 128-thread sysbench on ULE"),
    "fig4": ("fig4_penalty_single_app",
             "penalty bifurcation of the 128 sysbench threads"),
    "fig5": ("fig5_single_core_perf",
             "37-app performance comparison on one core"),
    "fig6": ("fig6_load_balancing",
             "512 pinned spinners released: balancing convergence"),
    "fig7": ("fig7_cray_placement",
             "c-ray thread placement and cascading wakeups"),
    "fig8": ("fig8_multicore_perf",
             "37-app performance comparison on 32 cores"),
    "fig9": ("fig9_multi_app",
             "multi-application pairs vs running alone"),
    "i7": ("desktop_i7",
           "cross-validation on the 8-CPU desktop machine (§4.1)"),
    "sensitivity": ("sensitivity",
                    "headline claims across random seeds (mean ± CI)"),
    "latency": ("latency_study",
                "wake-to-run latency distributions (extension)"),
    "predict": ("predict_fidelity",
                "table model next-pick fidelity vs CFS "
                "(schedules as data; docs/scheduler-zoo.md)"),
}


def run_experiment(name: str, quick: bool = True, seed: int = 1,
                   jobs: Optional[int] = None) -> ExperimentResult:
    """Run one experiment by id ('table1' ... 'fig9').

    ``jobs`` fans the experiment's cells out to worker processes when
    its driver supports it (drivers whose ``run`` takes a ``jobs``
    parameter); other drivers silently run serially.  Rows never
    depend on ``jobs``.
    """
    try:
        module_name, _ = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {name!r} (known: {known})") from None
    module = importlib.import_module(
        f"repro.experiments.{module_name}")
    if jobs is not None and \
            "jobs" in inspect.signature(module.run).parameters:
        return module.run(quick=quick, seed=seed, jobs=jobs)
    return module.run(quick=quick, seed=seed)


def experiment_names() -> list[str]:
    """All experiment ids, in the paper's order."""
    return list(EXPERIMENTS)


def experiment_claim(name: str) -> str:
    """The one-line claim an experiment reproduces."""
    module_name, _ = EXPERIMENTS[name]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    return module.CLAIM
