"""Cross-validation on the paper's second machine (§4.1).

"We also ran experiments on a smaller desktop machine (8-core Intel
i7-3770), reaching similar conclusions.  Due to space limitations, we
omit these results from the paper."

This driver re-runs three signature experiments on the i7 topology
(8 hardware threads: 4 SMT pairs sharing one LLC, a single NUMA node)
and checks the conclusions transfer:

* fibo + sysbench starvation (Table 2's throughput/latency split);
* spin-barrier HPC placement (the Fig. 8 MG effect, scaled to 8 CPUs);
* spinner release (Fig. 6's convergence regimes; no NUMA level, so
  CFS can now balance fully).
"""

from __future__ import annotations

from ..analysis.convergence import balance_predicate, current_counts
from ..analysis.report import render_table
from ..analysis.stats import percent_diff
from ..core.clock import msec, sec, to_sec, usec
from ..core.engine import Engine
from ..core.topology import i7_3770
from ..sched import scheduler_factory
from ..tracing.samplers import sample_threads_per_core
from ..workloads import (FiboWorkload, KernelNoiseWorkload,
                         SpinnerWorkload, SysbenchWorkload)
from ..workloads.nas import mg
from .base import ExperimentResult

CLAIM = ("the paper's conclusions hold on the 8-CPU desktop topology: "
         "ULE starves the hog and boosts sysbench, wins on spin-barrier "
         "HPC, and converges slowly-but-perfectly on released spinners")

NCPUS = 8


def _fibo_sysbench(sched: str, seed: int) -> dict:
    engine = Engine(i7_3770(), scheduler_factory(sched), seed=seed,
                    corun_slowdown=1.03)
    fibo = FiboWorkload(work_ns=sec(6))
    # enough demand to saturate the 8 hardware threads
    sysb = SysbenchWorkload(nthreads=48, wait_ns=msec(4),
                            transactions_per_thread=150,
                            init_per_thread_ns=msec(10))
    fibo.launch(engine, at=0)
    sysb.launch(engine, at=msec(500))
    engine.run(until=sec(60),
               stop_when=lambda e: fibo.done(e) and sysb.done(e),
               check_interval=64)
    return {"tps": sysb.throughput(engine),
            "latency_ms": sysb.mean_latency_ns(engine) / 1e6}


def _mg_like(sched: str, seed: int) -> float:
    engine = Engine(i7_3770(), scheduler_factory(sched), seed=seed,
                    ctx_switch_cost_ns=usec(15))
    KernelNoiseWorkload(tail_prob=0.02).launch(engine, at=0)
    workload = mg()
    workload.launch(engine, at=0)
    engine.run(until=sec(120), stop_when=lambda e: workload.done(e),
               check_interval=64)
    return workload.performance(engine)


def _spinner_release(sched: str, seed: int) -> dict:
    engine = Engine(i7_3770(), scheduler_factory(sched), seed=seed)
    spinners = SpinnerWorkload(count=32, pin_cpu=0, unpin_at=sec(1))
    spinners.launch(engine, at=0)
    sample_threads_per_core(engine, msec(100))
    balanced = balance_predicate(tolerance=1)
    engine.run(until=sec(200),
               stop_when=lambda e: e.now > sec(1) + msec(100)
               and balanced(e),
               check_interval=64)
    counts = current_counts(engine)
    return {"converged_s": to_sec(engine.now - sec(1)),
            "spread": max(counts) - min(counts)}


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("i7", CLAIM)

    fs = {s: _fibo_sysbench(s, seed) for s in ("cfs", "ule")}
    tps_ratio = fs["ule"]["tps"] / fs["cfs"]["tps"]
    result.row(experiment="fibo+sysbench",
               cfs=round(fs["cfs"]["tps"], 1),
               ule=round(fs["ule"]["tps"], 1),
               note=f"tx/s; ULE {tps_ratio:.2f}x")
    result.data["tps_ratio"] = tps_ratio

    mg_perf = {s: _mg_like(s, seed) for s in ("cfs", "ule")}
    mg_diff = percent_diff(mg_perf["ule"], mg_perf["cfs"])
    result.row(experiment="MG (spin barriers)",
               cfs=round(mg_perf["cfs"], 2),
               ule=round(mg_perf["ule"], 2),
               note=f"iterations/s; ULE {mg_diff:+.1f}%")
    result.data["mg_diff_pct"] = mg_diff

    spin = {s: _spinner_release(s, seed) for s in ("cfs", "ule")}
    result.row(experiment="spinner release",
               cfs=f"{spin['cfs']['converged_s']:.2f}s "
                   f"(spread {spin['cfs']['spread']})",
               ule=f"{spin['ule']['converged_s']:.2f}s "
                   f"(spread {spin['ule']['spread']})",
               note="time to balance after unpin")
    result.data["spin"] = spin

    table = render_table(
        ["experiment", "CFS", "ULE", "note"],
        [[r["experiment"], r["cfs"], r["ule"], r["note"]]
         for r in result.rows],
        title="Desktop i7-3770 cross-validation (8 CPUs, SMT, no NUMA)")
    note = ("Paper: 'reaching similar conclusions' — measured: ULE "
            "boosts sysbench throughput, wins on spin-barrier HPC, and "
            "balances slowly but perfectly; CFS converges fast (and, "
            "with no NUMA level, fully).")
    result.text = f"{table}\n\n{note}"
    return result
