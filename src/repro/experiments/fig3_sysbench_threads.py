"""Fig. 3 — cumulative runtime of sysbench's own threads under ULE
(single application, single core).

The claim (§5.2): sysbench's master forks 128 workers while itself
CPU-bound; workers inherit the master's interactivity at fork time, so
the ~80 forked early are interactive (they run, and their penalty
drops to 0) while the ~48 forked late are batch — and starve forever
while the interactive ones keep the core busy.  Counterintuitively
this *helps* throughput: the machine runs exactly as many threads as
it can, avoiding over-subscription.
"""

from __future__ import annotations

from ..core.clock import msec, sec, to_sec
from ..tracing.export import ascii_chart
from ..tracing.samplers import PeriodicSampler
from ..workloads import SysbenchWorkload
from .base import ExperimentResult, make_engine

CLAIM = ("~80 of 128 sysbench threads (the early-forked, interactive "
         "ones) run; the late-forked batch threads starve; throughput "
         "is higher than under CFS")

NTHREADS = 128
BUDGET = 10_000
TIMEOUT_NS = sec(60)


def run_single_app(sched: str, seed: int = 1):
    """Run the 128-thread sysbench alone on one core under ``sched``,
    sampling the paper's Fig. 3 curves (cumulative runtime of the
    master, the interactive workers, and the background workers)."""
    engine = make_engine(sched, ncpus=1, seed=seed)
    sysb = SysbenchWorkload(nthreads=NTHREADS,
                            transactions_per_thread=BUDGET // NTHREADS)
    sysb.launch(engine, at=0)

    def probe(eng):
        workers = sysb.workers
        if not workers:
            return
        half = len(workers) // 2
        early = workers[:half]
        late = workers[half:]
        eng.metrics.series("fig3.master").record(
            eng.now, sysb.master.total_runtime)
        eng.metrics.series("fig3.interactive").record(
            eng.now, sum(t.total_runtime for t in early) / len(early))
        eng.metrics.series("fig3.background").record(
            eng.now, sum(t.total_runtime for t in late) / len(late))

    PeriodicSampler(engine, msec(100), probe, "fig3-runtime")
    engine.run(until=TIMEOUT_NS, stop_when=lambda e: sysb.done(e),
               check_interval=64)
    return engine, sysb


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig3", CLAIM)
    outcomes = {}
    for sched in ("ule", "cfs"):
        engine, sysb = run_single_app(sched, seed=seed)
        ran = [w for w in sysb.workers if w.total_runtime > 0]
        starved = sysb.starved_workers(engine)
        tps = sysb.throughput(engine)
        lat = sysb.mean_latency_ns(engine) / 1e6
        outcomes[sched] = (engine, sysb)
        result.row(sched=sched, workers=len(sysb.workers),
                   executed=len(ran), starved=len(starved),
                   tps=round(tps, 1), latency_ms=round(lat, 2))
        result.data[f"{sched}_starved"] = len(starved)
        result.data[f"{sched}_tps"] = tps
        result.data[f"{sched}_latency_ms"] = lat

    engine, sysb = outcomes["ule"]
    # classification detail for the text report
    ule_rows = result.rows[0]
    lines = [
        "Fig. 3 (ULE, 128-thread sysbench on one core):",
        f"  threads that executed:   {ule_rows['executed']}  "
        f"(paper: ~80 interactive)",
        f"  threads fully starved:   {ule_rows['starved']}  "
        f"(paper: ~48 batch)",
        f"  ULE throughput: {result.data['ule_tps']:.0f} tx/s, "
        f"latency {result.data['ule_latency_ms']:.1f} ms",
        f"  CFS throughput: {result.data['cfs_tps']:.0f} tx/s, "
        f"latency {result.data['cfs_latency_ms']:.1f} ms",
        "  (paper: ULE beats CFS here by avoiding over-subscription)",
    ]
    charts = [
        ascii_chart(engine.metrics.series("fig3.interactive"),
                    title="Fig. 3 (ULE): mean cumulative runtime, "
                          "early-forked workers (ns)"),
        ascii_chart(engine.metrics.series("fig3.background"),
                    title="Fig. 3 (ULE): mean cumulative runtime, "
                          "late-forked workers (ns) - flat = starved"),
    ]
    result.text = "\n".join(lines) + "\n\n" + "\n\n".join(charts)
    return result
