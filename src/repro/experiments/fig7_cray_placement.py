"""Fig. 7 — thread placement with c-ray's cascading wakeup (§6.2).

c-ray creates 512 threads that wait on a cascading barrier (thread 0
wakes thread 1, ...).  The paper's observations:

* **ULE** forks every thread onto the core with the fewest threads,
  so the load is balanced from the start — but it takes ~11 s for all
  threads to become runnable: threads inherited different
  interactivity at fork, and a *batch* thread in the wakeup chain
  starves behind interactive siblings until they finish or get
  reclassified, stalling everyone behind it in the chain.
* **CFS** wakes all threads within ~2 s (it is fair, so every woken
  thread runs soon), but its load-metric placement leaves the usual
  imperfect balance.
* Despite all this, c-ray *completes* in about the same time on both:
  with 512 threads on 32 cores both schedulers keep every core busy.
"""

from __future__ import annotations

from ..analysis.report import render_table
from ..core.clock import msec, sec, to_sec
from ..tracing.samplers import sample_threads_per_core
from ..tracing.timeline import heatmap
from ..workloads import CrayWorkload
from .base import ExperimentResult, make_engine

CLAIM = ("ULE balances c-ray perfectly from fork but takes far longer "
         "to get every thread runnable (starvation in the wakeup "
         "chain); CFS wakes everyone quickly; completion times match")

NCPUS = 32


def run_cray(sched: str, nthreads: int, seed: int = 1):
    """Run one c-ray configuration with threads-per-core sampling."""
    engine = make_engine(sched, ncpus=NCPUS, seed=seed)
    cray = CrayWorkload(nthreads=nthreads)
    cray.launch(engine, at=0)
    sample_threads_per_core(engine, msec(100))
    engine.run(until=sec(120), stop_when=lambda e: cray.done(e),
               check_interval=64)
    return engine, cray


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig7", CLAIM)
    nthreads = 256 if quick else 512
    sections = []
    for sched in ("ule", "cfs"):
        engine, cray = run_cray(sched, nthreads, seed=seed)
        all_runnable = cray.all_runnable_at()
        completion = cray.completion_time(engine) \
            if cray.done(engine) else None
        # placement quality: spread right after the last fork
        result.row(
            sched=sched,
            threads=nthreads,
            all_runnable_at_s=(round(to_sec(all_runnable), 2)
                               if all_runnable is not None else None),
            completion_s=(round(to_sec(completion), 2)
                          if completion is not None else None),
            migrations=int(engine.metrics.counter("engine.migrations")))
        result.data[f"{sched}_all_runnable_ns"] = all_runnable
        result.data[f"{sched}_completion_ns"] = completion
        sections.append(
            f"--- {sched.upper()} (c-ray, {nthreads} threads) ---\n"
            + heatmap(engine.metrics, NCPUS,
                      vmax=max(8, 2 * nthreads // NCPUS)))

    table = render_table(
        ["sched", "all threads runnable at (s)", "completion (s)",
         "migrations"],
        [[r["sched"], r["all_runnable_at_s"], r["completion_s"],
          r["migrations"]] for r in result.rows],
        title=f"Fig. 7 summary (c-ray, {nthreads} threads, 32 cores)")
    paper = ("Paper: ULE needs ~11 s until all threads are runnable "
             "vs ~2 s for CFS; completion time is nevertheless equal")
    ratio = None
    ule_t = result.rows[0]["all_runnable_at_s"]
    cfs_t = result.rows[1]["all_runnable_at_s"]
    if ule_t and cfs_t:
        ratio = ule_t / cfs_t
        result.data["wake_ratio"] = ratio
    measured = (f"Measured: ULE all-runnable {ule_t}s vs CFS {cfs_t}s "
                f"({'%.1fx' % ratio if ratio else 'n/a'} slower)")
    result.text = "\n\n".join(sections + [table, paper, measured])
    return result
