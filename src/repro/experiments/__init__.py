"""Experiment drivers reproducing every table and figure of the
paper's evaluation (Tables 1-2, Figures 1-9)."""

from .base import ExperimentResult, make_engine, run_workload
from .registry import (EXPERIMENTS, experiment_claim, experiment_names,
                       run_experiment)

__all__ = [
    "ExperimentResult",
    "make_engine",
    "run_workload",
    "EXPERIMENTS",
    "run_experiment",
    "experiment_names",
    "experiment_claim",
]
