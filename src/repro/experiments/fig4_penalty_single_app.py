"""Fig. 4 — interactivity penalty of the 128 sysbench threads of
Fig. 3, under ULE.

The claim: threads inherit the master's penalty at fork time.  The
early ones are created with a low penalty which *decreases further*
as they execute (bottom band of the figure); the late ones are created
with a high penalty and never execute, so their penalty stays frozen
at the top.
"""

from __future__ import annotations

from ..core.clock import sec
from ..ule.params import UleTunables
from ..workloads import SysbenchWorkload
from .base import ExperimentResult, make_engine
from .fig3_sysbench_threads import BUDGET, NTHREADS, TIMEOUT_NS

CLAIM = ("fork-inherited penalties bifurcate: early threads' penalties "
         "fall to ~0 as they run, late threads stay frozen above the "
         "threshold and never run")


def run(quick: bool = True, seed: int = 1) -> ExperimentResult:
    """Run this experiment and return its result (see module doc)."""
    result = ExperimentResult("fig4", CLAIM)
    engine = make_engine("ule", ncpus=1, seed=seed)
    sysb = SysbenchWorkload(nthreads=NTHREADS,
                            transactions_per_thread=BUDGET // NTHREADS)
    sysb.launch(engine, at=0)

    # Record each worker's penalty at fork (first sample after start)
    # and at the end of the run.
    engine.run(until=TIMEOUT_NS, stop_when=lambda e: sysb.done(e),
               check_interval=64)

    threshold = UleTunables().interact_thresh
    executed_pens = []
    starved_pens = []
    for worker in sysb.workers:
        pen = worker.policy.hist.penalty()
        if worker.total_runtime > 0:
            executed_pens.append(pen)
        else:
            starved_pens.append(pen)

    result.row(group="executed (interactive) threads",
               count=len(executed_pens),
               mean_final_penalty=round(
                   sum(executed_pens) / max(1, len(executed_pens)), 1),
               max_final_penalty=max(executed_pens, default=0))
    result.row(group="starved (background) threads",
               count=len(starved_pens),
               mean_final_penalty=round(
                   sum(starved_pens) / max(1, len(starved_pens)), 1),
               min_final_penalty=min(starved_pens, default=0))
    result.data["executed_pens"] = executed_pens
    result.data["starved_pens"] = starved_pens
    result.data["threshold"] = threshold

    exec_mean = result.rows[0]["mean_final_penalty"]
    starv_mean = result.rows[1]["mean_final_penalty"]
    result.text = "\n".join([
        "Fig. 4 (ULE, 128-thread sysbench):",
        f"  executed threads: {len(executed_pens)}, final penalty "
        f"mean {exec_mean} (paper: drops toward 0, bottom of graph)",
        f"  starved threads:  {len(starved_pens)}, final penalty "
        f"mean {starv_mean} (paper: frozen high, top of graph)",
        f"  interactive threshold: {threshold}",
    ])
    return result
