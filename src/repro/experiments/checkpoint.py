"""Crash-safe campaign checkpoints (the ``--resume`` manifest).

A long ``--jobs`` campaign can die halfway — OOM killer, ctrl-C,
machine reboot.  Without a manifest the only options are "start over"
or "hand-edit the cell list"; with one, re-invoking with ``--resume``
replays the finished cells from disk and re-executes only the rest.

Design constraints:

* **Crash safety**: the manifest is rewritten via
  :func:`~repro.core.artifacts.atomic_write_json` after *every*
  completed cell, so a kill at any instant leaves either the previous
  or the next manifest on disk — never a torn file.
* **Determinism**: cells are keyed by their canonical JSON encoding
  (sorted keys, tuples and lists identical), so a resumed campaign
  looks up exactly the cells the interrupted one stored.  Results are
  stored as plain JSON values; a resumed run's report is
  byte-identical to an uninterrupted one because rendering happens
  after the map, from the same values.
* **Only successes are stored.**  A failed cell is *not* recorded, so
  resuming retries it — a crash-then-resume can never launder a
  failure into a permanent ``FAILED`` row.

The manifest format is versioned; a mismatched or unparsable manifest
is ignored (treated as empty) rather than trusted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from ..core.artifacts import atomic_write_json

FORMAT = "repro-campaign-checkpoint-v1"


class _Miss:
    """Sentinel distinguishing "no entry" from a stored ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISS>"


def cell_key(cell: Any) -> str:
    """Canonical string key for a cell: its JSON encoding with sorted
    keys.  Tuples encode as lists, so ``("mg", 1)`` and ``["mg", 1]``
    key identically — cell identity is by value, not Python type."""
    return json.dumps(cell, sort_keys=True, separators=(",", ":"))


class CampaignCheckpoint:
    """Cell-result manifest backing ``cell_map(checkpoint=...)``.

    ``get(cell)`` returns the stored result or :data:`MISS`;
    ``put(cell, result)`` records a success and flushes the manifest
    atomically.  ``meta`` is an arbitrary JSON dict describing the
    campaign (experiment list, seed, quick/full) — ``load()`` with a
    different ``meta`` discards the stored cells, so a stale manifest
    can never contaminate a differently-parameterised campaign.
    """

    MISS = _Miss()

    def __init__(self, path, meta: Optional[dict] = None):
        self.path = Path(path)
        self.meta = dict(meta or {})
        self._entries: dict[str, Any] = {}

    def load(self, resume: bool = True) -> int:
        """Read the manifest from disk; returns the number of usable
        entries.  ``resume=False`` (a fresh campaign) clears any stale
        manifest instead.  A missing, corrupt, differently-versioned
        or differently-parameterised manifest counts as empty."""
        if not resume:
            self.clear()
            return 0
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return 0
        if not isinstance(raw, dict) or raw.get("format") != FORMAT:
            return 0
        if raw.get("meta") != self.meta:
            return 0
        entries = raw.get("cells")
        if not isinstance(entries, dict):
            return 0
        self._entries = entries
        return len(entries)

    def clear(self) -> None:
        """Drop all entries and delete the manifest file."""
        self._entries = {}
        try:
            self.path.unlink()
        except OSError:
            pass

    def get(self, cell: Any) -> Any:
        """The stored result for ``cell``, or :data:`MISS`."""
        return self._entries.get(cell_key(cell), self.MISS)

    def put(self, cell: Any, result: Any) -> None:
        """Record a finished cell and flush the manifest atomically."""
        self._entries[cell_key(cell)] = result
        self._flush()

    def __len__(self) -> int:
        return len(self._entries)

    def _flush(self) -> None:
        atomic_write_json(self.path, {
            "format": FORMAT,
            "meta": self.meta,
            "cells": self._entries,
        })
