"""Crash-safe campaign checkpoints (the ``--resume`` manifest).

A long campaign can die halfway — OOM killer, ctrl-C, SIGKILL,
machine reboot.  Without a manifest the only options are "start over"
or "hand-edit the cell list"; with one, re-invoking with ``--resume``
replays the finished cells from disk and re-executes only the rest.

The manifest is an **append-only JSONL journal** (v2): a header line
naming the format and the campaign meta, then one line per finished
cell.  ``put`` appends a single line — O(1) per cell, which is what
lets the shard supervisor checkpoint a multi-thousand-cell sweep
without quadratic rewrite cost (v1 rewrote the whole manifest per
cell).

Design constraints:

* **Crash safety** — an append can be torn by a crash mid-write; the
  loader therefore *recovers* rather than trusts: a truncated or
  corrupt trailing line (and any line whose per-line sha256 does not
  match its result) is skipped with a single warning and the journal
  is compacted in place via
  :func:`~repro.core.artifacts.atomic_write_text`.  A crash costs at
  most the in-flight cell, never the manifest.
* **Determinism** — cells are keyed by their canonical JSON encoding
  (sorted keys, tuples and lists identical), so a resumed campaign
  looks up exactly the cells the interrupted one stored.  Results are
  plain JSON values; a resumed run's report is byte-identical to an
  uninterrupted one because rendering happens after the map, from the
  same values.
* **Only successes are stored.**  A failed cell is *not* recorded, so
  resuming retries it — a crash-then-resume can never launder a
  failure into a permanent ``FAILED`` row.

v1 single-JSON manifests (rewrite-per-cell) are still read; the first
``put`` after loading one migrates it to the journal format.  A
manifest with a mismatched format, version, or campaign meta is
ignored (treated as empty) rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Any, Optional

from ..core.artifacts import atomic_write_text

FORMAT = "repro-campaign-checkpoint-v2"
FORMAT_V1 = "repro-campaign-checkpoint-v1"


class _Miss:
    """Sentinel distinguishing "no entry" from a stored ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISS>"


def cell_key(cell: Any) -> str:
    """Canonical string key for a cell: its JSON encoding with sorted
    keys.  Tuples encode as lists, so ``("mg", 1)`` and ``["mg", 1]``
    key identically — cell identity is by value, not Python type."""
    return json.dumps(cell, sort_keys=True, separators=(",", ":"))


def _entry_sha(key: str, result: Any) -> str:
    """Per-line integrity digest: sha256 over key + canonical result
    JSON.  Catches bit flips that still parse as JSON, not just torn
    tails."""
    canonical = json.dumps(result, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(f"{key}\0{canonical}".encode()).hexdigest()


class CampaignCheckpoint:
    """Cell-result journal backing ``cell_map(checkpoint=...)`` and
    the shard supervisor.

    ``get(cell)`` returns the stored result or :data:`MISS`;
    ``put(cell, result)`` records a success by appending one journal
    line.  ``meta`` is an arbitrary JSON dict describing the campaign
    (experiment list, seed, quick/full) — ``load()`` with a different
    ``meta`` discards the stored cells, so a stale manifest can never
    contaminate a differently-parameterised campaign.
    """

    MISS = _Miss()

    def __init__(self, path, meta: Optional[dict] = None):
        self.path = Path(path)
        self.meta = dict(meta or {})
        self._entries: dict[str, Any] = {}
        self._header_written = False

    # ------------------------------------------------------------ load

    def load(self, resume: bool = True) -> int:
        """Read the journal from disk; returns the number of usable
        entries.  ``resume=False`` (a fresh campaign) clears any stale
        manifest instead.  A missing, differently-versioned or
        differently-parameterised manifest counts as empty; corrupt
        or truncated *lines* (crash mid-append) are skipped with one
        warning and compacted away rather than raising."""
        if not resume:
            self.clear()
            return 0
        try:
            text = self.path.read_text()
        except OSError:
            return 0
        entries, dropped, journal = self._parse(text)
        if entries is None:
            return 0
        self._entries = entries
        # a v1 manifest is NOT a journal: leave the header unwritten
        # so the first put() compacts (migrates) instead of appending
        # a journal line onto a v1 JSON document
        self._header_written = journal
        if dropped:
            warnings.warn(
                f"campaign checkpoint {self.path}: skipped {dropped} "
                f"corrupt/truncated journal line(s) (crash during "
                f"write?); recovered {len(entries)} finished cell(s)",
                RuntimeWarning, stacklevel=2)
            self._compact()
        return len(entries)

    def _parse(self, text: str):
        """``(entries, dropped_lines, is_journal)`` from journal
        text, or ``(None, 0, False)`` for a wrong-campaign or
        unrecognized manifest."""
        # v1 manifests were one indented JSON document; try that
        # first so old checkpoints stay resumable
        v1 = self._parse_v1(text)
        if v1 is not None:
            return v1, 0, False
        lines = text.splitlines()
        if not lines:
            return None, 0, False
        try:
            header = json.loads(lines[0])
        except ValueError:
            return None, 0, False
        if (not isinstance(header, dict)
                or header.get("format") != FORMAT
                or header.get("meta") != self.meta):
            return None, 0, False
        entries: dict[str, Any] = {}
        dropped = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                key = row["cell"]
                result = row["result"]
                ok = row["sha256"] == _entry_sha(key, result)
            except (ValueError, TypeError, KeyError):
                ok = False
            if not ok:
                dropped += 1
                continue
            entries[key] = result
        return entries, dropped, True

    def _parse_v1(self, text: str) -> Optional[dict]:
        """Entries from a legacy v1 single-document manifest, or
        ``None`` when ``text`` is not one."""
        try:
            raw = json.loads(text)
        except ValueError:
            return None
        if (not isinstance(raw, dict)
                or raw.get("format") != FORMAT_V1
                or raw.get("meta") != self.meta):
            return None
        entries = raw.get("cells")
        return entries if isinstance(entries, dict) else None

    # ------------------------------------------------------------ write

    def clear(self) -> None:
        """Drop all entries and delete the journal file."""
        self._entries = {}
        self._header_written = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def get(self, cell: Any) -> Any:
        """The stored result for ``cell``, or :data:`MISS`."""
        return self._entries.get(cell_key(cell), self.MISS)

    def put(self, cell: Any, result: Any) -> None:
        """Record a finished cell by appending one journal line.  The
        line is flushed immediately, so a kill between two cells
        loses nothing and a kill mid-append loses only a torn tail
        that the next ``load()`` recovers past."""
        key = cell_key(cell)
        self._entries[key] = result
        if not self._header_written:
            self._compact()
            return
        line = json.dumps(
            {"cell": key, "result": result,
             "sha256": _entry_sha(key, result)},
            sort_keys=True, separators=(",", ":"))
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
        except OSError:
            # journal vanished underneath us (cleanup race): rebuild
            self._compact()

    def put_many(self, pairs: Any) -> None:
        """Record a batch of finished ``(cell, result)`` pairs with
        one open/write/flush cycle — the grouped form of :meth:`put`
        used by the shard supervisor, whose merge sweep can land a
        whole claim batch at once.  Same durability: the group is
        flushed before returning, and each line still carries its own
        digest, so a torn tail costs at most the last line."""
        pairs = list(pairs)
        if not pairs:
            return
        if not self._header_written:
            for cell, result in pairs:
                self._entries[cell_key(cell)] = result
            self._compact()
            return
        lines = []
        for cell, result in pairs:
            key = cell_key(cell)
            self._entries[key] = result
            lines.append(json.dumps(
                {"cell": key, "result": result,
                 "sha256": _entry_sha(key, result)},
                sort_keys=True, separators=(",", ":")))
        try:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
                fh.flush()
        except OSError:
            # journal vanished underneath us (cleanup race): rebuild
            self._compact()

    def __len__(self) -> int:
        return len(self._entries)

    def _compact(self) -> None:
        """Atomically rewrite the whole journal from memory — used on
        first write, after corruption recovery, and for v1
        migration."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"format": FORMAT, "meta": self.meta},
                            sort_keys=True, separators=(",", ":"))]
        for key, result in self._entries.items():
            lines.append(json.dumps(
                {"cell": key, "result": result,
                 "sha256": _entry_sha(key, result)},
                sort_keys=True, separators=(",", ":")))
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._header_written = True
