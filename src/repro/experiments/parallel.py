"""Parallel experiment fan-out.

The paper's figures come from sweeping many independent *cells* — one
``(driver, scheduler, seed)`` simulation each.  Cells share nothing
(every cell builds its own :class:`~repro.core.engine.Engine` with its
own seed), so they parallelize perfectly across worker processes.

Determinism is preserved by construction:

* the cell list is built in a stable order before any work starts;
* ``multiprocessing.Pool.map`` returns results *in submission order*
  regardless of completion order;
* each cell's seed is part of the cell itself, never derived from
  worker identity or timing.

A driver opts in by building its cells, running them through
:func:`cell_map`, and merging the returned list — the merge code is
identical for the serial (``jobs=None``) and parallel paths, so
``--jobs N`` can never change the rows, only the wall clock.

Cell functions must be module-level (picklable); cell inputs and
outputs must be plain data — engines stay inside the worker.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Optional, Sequence


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` (all cores)."""
    return os.cpu_count() or 1


def _call(payload):
    """Pool trampoline: unpack ``(fn, cell)`` and apply."""
    fn, cell = payload
    return fn(cell)


def cell_map(fn: Callable[[Any], Any], cells: Iterable[Any],
             jobs: Optional[int] = None) -> list:
    """Apply ``fn`` to every cell, fanning out to ``jobs`` worker
    processes; results come back in cell order.

    ``jobs=None`` or ``1`` runs serially in-process (no pool, no
    pickling — the default path, and the reference the parallel path
    must match row-for-row).  ``jobs=0`` means all cores.  ``fn`` must
    be a module-level function and cells/results plain picklable data.
    """
    cells = list(cells)
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    nproc = min(jobs, len(cells))
    with multiprocessing.Pool(processes=nproc) as pool:
        return pool.map(_call, [(fn, cell) for cell in cells],
                        chunksize=1)


def _run_experiment_cell(cell):
    name, quick, seed = cell
    from .registry import run_experiment
    return run_experiment(name, quick=quick, seed=seed)


def run_experiments(names: Sequence[str], quick: bool = True,
                    seed: int = 1, jobs: Optional[int] = None) -> list:
    """Run several experiments, one worker process per experiment;
    returns their :class:`~repro.experiments.base.ExperimentResult`
    objects in ``names`` order.  Used by the full-report path of
    ``repro.cli`` (``report --jobs N``)."""
    return cell_map(_run_experiment_cell,
                    [(name, quick, seed) for name in names], jobs=jobs)
