"""Parallel experiment fan-out, hardened for long campaigns.

The paper's figures come from sweeping many independent *cells* — one
``(driver, scheduler, seed)`` simulation each.  Cells share nothing
(every cell builds its own :class:`~repro.core.engine.Engine` with its
own seed), so they parallelize perfectly across worker processes.

Determinism is preserved by construction:

* the cell list is built in a stable order before any work starts;
* results come back *in submission order* regardless of completion
  order;
* each cell's seed is part of the cell itself, never derived from
  worker identity or timing.

A driver opts in by building its cells, running them through
:func:`cell_map`, and merging the returned list — the merge code is
identical for the serial (``jobs=None``) and parallel paths, so
``--jobs N`` can never change the rows, only the wall clock.

Cell functions must be module-level (picklable); cell inputs and
outputs must be plain data — engines stay inside the worker.

Robustness (opt-in keywords; with none of them set :func:`cell_map`
is exactly the historical plain map and exceptions propagate
unwrapped):

* ``timeout_s`` bounds each cell's wall clock; a cell that exceeds it
  is abandoned (the pool — including the stuck worker — is torn down
  after the sweep) and recorded as a timeout failure;
* ``retries``/``backoff_s``/``reseed`` re-run failed cells with
  exponential backoff, optionally transforming the cell first (e.g.
  bumping its seed — the campaign's reseeding policy);
* ``mark_failures`` degrades gracefully: exhausted cells come back as
  :class:`FailedCell` markers in-place instead of aborting the sweep,
  so a report renders ``FAILED(reason)`` rows for them;
* ``checkpoint`` (a
  :class:`~repro.experiments.checkpoint.CampaignCheckpoint`) records
  each finished cell's result atomically as it completes and
  short-circuits cells already finished by an interrupted earlier run
  — the ``--resume`` machinery;
* ``cache`` (a :class:`~repro.experiments.cellcache.CellCache`)
  memoizes finished cells *across* campaigns, content-addressed by
  (cell, code fingerprint) — a warm rerun of an unchanged campaign
  executes zero cells (see docs/performance.md).

Independently of those options, the pool path treats a broken pool
(:class:`~concurrent.futures.process.BrokenProcessPool`, a severed
result pipe) as a retryable *infrastructure* failure: the pool is
respawned and the in-flight cells re-run, degrading to serial
in-process execution if pools keep collapsing — never recorded as a
cell failure, never aborting the campaign.  For sweeps that need
worker-crash tolerance with leases and work stealing, see
:mod:`~repro.experiments.shard` (docs/distributed-campaigns.md).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Optional, Sequence

#: fresh pools spawned per attempt before degrading to serial
#: in-process execution (see :func:`_is_pool_failure`)
MAX_POOL_RESPAWNS = 2


def _is_pool_failure(exc: BaseException) -> bool:
    """True for exceptions that indict the worker *pool* rather than
    the cell: a worker process that vanished (OOM kill, segfault in a
    C extension, container eviction) or a severed result pipe.  These
    are retryable infrastructure failures — the cell never got to
    run, so it is re-run on a fresh pool instead of being recorded as
    a cell error."""
    return isinstance(exc,
                      (BrokenProcessPool, BrokenPipeError, EOFError))


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` (all cores)."""
    return os.cpu_count() or 1


def _warm_worker() -> None:
    """Pool initializer: enable warm-engine reuse in the worker (see
    :func:`repro.experiments.base.make_engine`) — a pool worker runs
    many same-shaped cells, exactly the case engine recycling pays
    for.  ``setdefault`` keeps an explicit parent
    ``REPRO_WARM_ENGINES=0`` in force."""
    os.environ.setdefault("REPRO_WARM_ENGINES", "1")


def _call(payload):
    """Pool trampoline: unpack ``(fn, cell)`` and apply."""
    fn, cell = payload
    return fn(cell)


class FailedCell:
    """Marker returned (under ``mark_failures=True``) in place of a
    result for a cell that exhausted its retries.

    ``reason`` is ``"timeout"`` or ``"error"``; ``error`` carries the
    exception summary for error failures; ``attempts`` counts the
    runs consumed.  Renders as ``FAILED(reason)`` in reports.
    """

    __slots__ = ("cell", "reason", "error", "attempts")

    def __init__(self, cell, reason: str, error: str = "",
                 attempts: int = 1):
        self.cell = cell
        self.reason = reason
        self.error = error
        self.attempts = attempts

    def render(self) -> str:
        """The report marker, e.g. ``FAILED(timeout)``."""
        detail = f": {self.error}" if self.error else ""
        return f"FAILED({self.reason}{detail})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FailedCell {self.cell!r} {self.render()}>"


class CellError(RuntimeError):
    """Raised when a cell exhausts its retries and ``mark_failures``
    is off; the :class:`FailedCell` is at ``.failure``."""

    def __init__(self, failure: FailedCell):
        self.failure = failure
        super().__init__(f"cell {failure.cell!r} {failure.render()} "
                         f"after {failure.attempts} attempt(s)")


def _run_attempt(fn, items, jobs, timeout_s, on_success=None):
    """Run ``items`` (a list of ``(index, cell)``) once.

    Returns ``(successes, failures)``: index-keyed result and
    ``(reason, error)`` dicts.  ``on_success(index, result)`` fires as
    each result is collected — NOT at the end of the attempt — so a
    checkpoint records finished cells even when the process is killed
    mid-attempt.  Uses a pool whenever ``timeout_s`` is set (a hung
    cell cannot be interrupted in-process) or ``jobs`` asks for
    parallelism; the pool is torn down afterwards, which also kills
    any worker stuck past its timeout.
    """
    successes: dict[int, Any] = {}
    failures: dict[int, tuple] = {}

    def collect(index, result):
        successes[index] = result
        if on_success is not None:
            on_success(index, result)

    def run_serial(batch):
        for index, cell in batch:
            try:
                result = fn(cell)
            except Exception as exc:
                failures[index] = ("error",
                                   f"{type(exc).__name__}: {exc}")
            else:
                collect(index, result)

    if timeout_s is None and (jobs is None or jobs <= 1):
        run_serial(items)
        return successes, failures

    # Pool path.  A pool-infrastructure failure (worker OOM-killed /
    # segfaulted, result pipe severed — surfacing as
    # BrokenProcessPool and friends) is NOT a cell failure: the pool
    # is torn down, a fresh one is spawned, and the uncollected cells
    # re-run.  After MAX_POOL_RESPAWNS broken pools the remaining
    # cells degrade to serial in-process execution — the sweep
    # finishes slower instead of aborting.
    remaining = list(items)
    respawns = 0
    while remaining:
        nproc = max(1, min(jobs or 1, len(remaining)))
        broken = None
        with multiprocessing.Pool(processes=nproc,
                                  initializer=_warm_worker) as pool:
            handles = [(index, cell,
                        pool.apply_async(_call, ((fn, cell),)))
                       for index, cell in remaining]
            uncollected = []
            for index, cell, handle in handles:
                if broken is not None:
                    uncollected.append((index, cell))
                    continue
                try:
                    result = handle.get(timeout_s)
                except multiprocessing.TimeoutError:
                    failures[index] = ("timeout", "")
                except Exception as exc:
                    if _is_pool_failure(exc):
                        broken = exc
                        uncollected.append((index, cell))
                    else:
                        failures[index] = (
                            "error", f"{type(exc).__name__}: {exc}")
                else:
                    collect(index, result)
        if broken is None:
            break
        remaining = uncollected
        respawns += 1
        if respawns > MAX_POOL_RESPAWNS:
            run_serial(remaining)
            break
    return successes, failures


def cell_map(fn: Callable[[Any], Any], cells: Iterable[Any],
             jobs: Optional[int] = None, *,
             timeout_s: Optional[float] = None,
             retries: int = 0,
             backoff_s: float = 0.5,
             reseed: Optional[Callable[[Any, int], Any]] = None,
             mark_failures: bool = False,
             checkpoint=None,
             cache=None) -> list:
    """Apply ``fn`` to every cell, fanning out to ``jobs`` worker
    processes; results come back in cell order.

    ``jobs=None`` or ``1`` runs serially in-process (no pool, no
    pickling — the default path, and the reference the parallel path
    must match row-for-row).  ``jobs=0`` means all cores.  ``fn``
    must be a module-level function and cells/results plain picklable
    data.

    The keyword-only robustness options are documented in the module
    docstring.  ``reseed(cell, attempt)`` returns the cell to use for
    retry ``attempt`` (1-based); results and checkpoint entries are
    always keyed by the *original* cell.

    ``cache`` (a :class:`~repro.experiments.cellcache.CellCache`)
    memoizes finished cells content-addressed by (cell, code
    fingerprint): hits short-circuit exactly like checkpoint replays
    (checkpoint wins when both hold the cell), and every computed
    result is stored.  Since results are plain JSON either way, a
    cache-served sweep is byte-identical to a computed one.
    """
    cells = list(cells)
    if jobs == 0:
        jobs = default_jobs()
    if (timeout_s is None and retries == 0 and not mark_failures
            and checkpoint is None and cache is None):
        # The historical plain path, byte-for-byte.
        if jobs is None or jobs <= 1 or len(cells) <= 1:
            return [fn(cell) for cell in cells]
        nproc = min(jobs, len(cells))
        with multiprocessing.Pool(processes=nproc,
                                  initializer=_warm_worker) as pool:
            return pool.map(_call, [(fn, cell) for cell in cells],
                            chunksize=1)

    results: dict[int, Any] = {}
    if checkpoint is not None or cache is not None:
        pending = []
        for index, cell in enumerate(cells):
            if checkpoint is not None:
                hit = checkpoint.get(cell)
                if hit is not checkpoint.MISS:
                    results[index] = hit
                    continue
            if cache is not None:
                hit = cache.get(cell)
                if hit is not cache.MISS:
                    results[index] = hit
                    # replayed-from-cache cells still reach the
                    # checkpoint so an interrupted campaign's manifest
                    # stays complete
                    if checkpoint is not None:
                        checkpoint.put(cell, hit)
                    continue
            pending.append(index)
    else:
        pending = list(range(len(cells)))

    live = {index: cells[index] for index in pending}
    attempts_used = {index: 0 for index in pending}
    fail_info: dict[int, tuple] = {}
    for attempt in range(retries + 1):
        if not pending:
            break
        if attempt:
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** (attempt - 1)))
            if reseed is not None:
                for index in pending:
                    live[index] = reseed(live[index], attempt)
        on_success = None
        if checkpoint is not None or cache is not None:
            def on_success(index, result):
                # Flushed per cell, atomically: a SIGKILL between two
                # cells loses at most the in-flight cell.
                if checkpoint is not None:
                    checkpoint.put(cells[index], result)
                if cache is not None:
                    cache.put(cells[index], result)
        successes, fail_info = _run_attempt(
            fn, [(index, live[index]) for index in pending],
            jobs, timeout_s, on_success)
        for index, result in successes.items():
            results[index] = result
            attempts_used[index] += 1
        for index in fail_info:
            attempts_used[index] += 1
        pending = sorted(fail_info)

    for index in pending:
        reason, error = fail_info[index]
        failure = FailedCell(cells[index], reason, error,
                             attempts_used[index])
        if not mark_failures:
            raise CellError(failure)
        results[index] = failure
    return [results[index] for index in range(len(cells))]


def _run_experiment_cell(cell):
    name, quick, seed = cell
    from .registry import run_experiment
    return run_experiment(name, quick=quick, seed=seed)


def run_experiments(names: Sequence[str], quick: bool = True,
                    seed: int = 1, jobs: Optional[int] = None) -> list:
    """Run several experiments, one worker process per experiment;
    returns their :class:`~repro.experiments.base.ExperimentResult`
    objects in ``names`` order.  Used by the full-report path of
    ``repro.cli`` (``report --jobs N``)."""
    return cell_map(_run_experiment_cell,
                    [(name, quick, seed) for name in names], jobs=jobs)
