"""The shared §5.1 scenario: fibo (CPU hog) + sysbench (80 mostly-
sleeping threads) on a single core.

Drives Table 2, Fig. 1 (cumulative runtimes) and Fig. 2 (interactivity
penalties).  Time is scaled 1/10 from the paper: fibo carries 16 s of
work (paper: ~160 s), runs alone for 0.7 s (paper: 7 s), then sysbench
starts with a fixed global transaction budget.

Expected shape (paper):

* CFS shares the core ~50/50 between the two *applications* (cgroup
  fairness), so sysbench finishes in about twice the time it needs
  alone and fibo keeps progressing (Fig. 1a);
* ULE classifies fibo batch (penalty -> 100) and the sysbench workers
  interactive (penalty -> 0), so fibo starves until sysbench finishes
  and sysbench runs at full speed: ~1.8x the CFS throughput and much
  lower latency (Fig. 1b, Fig. 2, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.clock import msec, sec, to_msec, to_sec
from ..tracing.samplers import (sample_cumulative_runtime,
                                sample_ule_penalty)
from ..workloads import FiboWorkload, SysbenchWorkload
from .base import make_engine

#: scale w.r.t. the paper (all durations divided by this)
TIME_SCALE = 10

FIBO_WORK_NS = sec(16)
SYSBENCH_START_NS = msec(700)
SYSBENCH_THREADS = 80
SYSBENCH_BUDGET = 8_000
TIMEOUT_NS = sec(120)
SAMPLE_PERIOD_NS = msec(100)


@dataclass
class ScenarioOutcome:
    sched: str
    engine: object
    fibo: FiboWorkload
    sysbench: SysbenchWorkload

    @property
    def digest(self) -> str:
        """Canonical schedule digest (golden-trace regression hook)."""
        from ..tracing.digest import schedule_digest
        return schedule_digest(self.engine)

    @property
    def fibo_runtime_s(self) -> float:
        return to_sec(self.fibo.thread.total_runtime)

    @property
    def fibo_completion_s(self) -> float:
        return to_sec(self.fibo.thread.exited_at)

    @property
    def sysbench_tps(self) -> float:
        return self.sysbench.throughput(self.engine)

    @property
    def sysbench_latency_ms(self) -> float:
        return to_msec(self.sysbench.mean_latency_ns(self.engine))

    @property
    def sysbench_completion_s(self) -> Optional[float]:
        if self.sysbench.finished_at is None:
            return None
        return to_sec(self.sysbench.finished_at)


def run_scenario(sched: str, seed: int = 1,
                 sample_penalty: bool = False) -> ScenarioOutcome:
    """Run the fibo+sysbench scenario under ``sched`` and return the
    outcome with recorded series in ``engine.metrics``."""
    engine = make_engine(sched, ncpus=1, seed=seed, corun_slowdown=1.03)
    fibo = FiboWorkload(work_ns=FIBO_WORK_NS)
    sysb = SysbenchWorkload(nthreads=SYSBENCH_THREADS,
                            transactions_per_thread=(
                                SYSBENCH_BUDGET // SYSBENCH_THREADS))
    fibo.launch(engine, at=0)
    sysb.launch(engine, at=SYSBENCH_START_NS)
    sample_cumulative_runtime(engine, SAMPLE_PERIOD_NS,
                              apps=["fibo", "sysbench"])
    if sample_penalty and sched == "ule":
        sample_ule_penalty(engine, SAMPLE_PERIOD_NS, {
            "fibo": lambda: [t for t in fibo.threads(engine)],
            "sysbench": lambda: [t for t in sysb.workers],
        })
    engine.run(until=TIMEOUT_NS,
               stop_when=lambda e: fibo.done(e) and sysb.done(e),
               check_interval=64)
    return ScenarioOutcome(sched, engine, fibo, sysb)
