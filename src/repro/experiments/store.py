r"""Shared shard store: a leased, crash-tolerant cell work queue.

The distributed campaign executor (:mod:`~repro.experiments.shard`)
shards a sweep across worker *processes* that coordinate through this
store — a single sqlite database under ``--store-dir`` — instead of
through pipes to a parent.  That indirection is what buys crash
tolerance: a worker that dies (including SIGKILL mid-cell) leaves
nothing behind but an expiring lease, and any surviving worker steals
the cell back the moment the lease lapses.

Cell lifecycle::

    pending --claim--> leased --complete--> done
       ^                 |    \--fail_attempt (retries left,
       |                 |         jittered backoff)--> pending
       |                 |    \--fail_attempt (exhausted)--> failed
       |                 +--lease expiry (worker died)
       |                 |      crashes < max_crashes
       +-----------------+
                         \--lease expiry, crashes >= max_crashes
                               --> failed ("poison" quarantine)

Robustness properties, in store terms:

* **Work stealing / reaping** — :meth:`ShardStore.claim` hands out
  pending cells *and* cells whose lease has expired; a long-running
  healthy worker keeps its lease alive by heartbeating
  (:meth:`renew`), so only a dead or wedged worker loses its cell.
* **Poison quarantine** — every expired lease bumps the cell's crash
  counter; a cell that has taken down ``max_crashes`` workers is
  marked ``failed`` with a ``poison`` reason instead of crashing a
  third, so one bad cell can never wedge the sweep.
* **Dedupe by content** — rows are keyed by the cell-cache sha256
  key (:func:`~repro.experiments.cellcache.cache_key`), so duplicate
  cells in a sweep collapse to one row and at most one in-flight
  execution per content key.
* **Verified results** — ``done`` rows carry a sha256 of the result's
  canonical JSON; a bit-flipped or truncated result is detected on
  read, discarded back to ``pending`` with one warning, and
  recomputed rather than served or fatal.
* **Corrupt-store recovery** — a truncated or otherwise unreadable
  database (crash mid-write, disk fault) is moved aside to
  ``*.corrupt`` with one warning and rebuilt empty; the executor
  re-enqueues its cells and loses only the uncheckpointed work.

sqlite is the "multi-machine-ready" part of the design: WAL mode with
``BEGIN IMMEDIATE`` claim transactions gives atomic lease handoff for
any number of reader/writer processes on one host, and the same
schema ports to a server-grade store unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Any, Iterable, Optional

FORMAT = "repro-shard-store-v1"

#: default store directory (repo-root relative, like the checkpoint
#: manifest and the cell cache)
DEFAULT_DIR = ".repro-shard-store"

#: database filename under the store directory
DB_NAME = "cells.sqlite3"

#: a cell whose lease expired this many times is quarantined
DEFAULT_MAX_CRASHES = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    key         TEXT PRIMARY KEY,
    cell        TEXT NOT NULL,
    state       TEXT NOT NULL DEFAULT 'pending',
    owner       TEXT,
    lease_until REAL NOT NULL DEFAULT 0,
    not_before  REAL NOT NULL DEFAULT 0,
    attempts    INTEGER NOT NULL DEFAULT 0,
    crashes     INTEGER NOT NULL DEFAULT 0,
    started     INTEGER NOT NULL DEFAULT 0,
    result      TEXT,
    result_sha  TEXT,
    reason      TEXT
);
CREATE INDEX IF NOT EXISTS cells_state ON cells (state);
"""

#: default number of cells leased per claim transaction (see
#: :meth:`ShardStore.claim_batch`); chosen so the write-lock traffic
#: per cell drops ~4x while a crashed worker still strands at most a
#: few seconds of stolen-back work
DEFAULT_CLAIM_BATCH = 4


def canonical_json(value: Any) -> str:
    """The store's canonical encoding (same convention as the
    checkpoint and the cell cache: sorted keys, compact)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def result_sha(result: Any) -> str:
    """sha256 over the canonical JSON of a result — the integrity
    check for ``done`` rows."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


def backoff_jitter(key: str, attempt: int) -> float:
    """Deterministic jitter multiplier in ``[1.0, 2.0)`` derived from
    (key, attempt).  Jittered backoff de-synchronizes retry storms
    across workers without introducing wall-clock randomness into the
    results (jitter shifts *when* a retry runs, never *what* it
    computes)."""
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    return 1.0 + int.from_bytes(digest[:4], "big") / 2**32


class StoreCorruption(RuntimeError):
    """Raised internally when sqlite reports an unreadable database;
    :meth:`ShardStore._connect` converts it into move-aside + rebuild
    so callers never see it."""


class ShardStore:
    """One sweep's shared work queue (``<store_dir>/cells.sqlite3``).

    Every worker process and the supervisor open their own
    :class:`ShardStore` on the same directory; sqlite serializes the
    claim/complete transactions.  All methods are safe to call from
    any process at any time — that is the point.
    """

    def __init__(self, store_dir, *, fingerprint: str = "",
                 max_crashes: int = DEFAULT_MAX_CRASHES,
                 timeout_s: float = 30.0,
                 _now=time.monotonic):
        self.dir = Path(store_dir)
        self.path = self.dir / DB_NAME
        self.fingerprint = fingerprint
        self.max_crashes = max_crashes
        self.timeout_s = timeout_s
        # monotonic by default; injectable for lease-expiry tests
        self._now = _now
        self._conn: Optional[sqlite3.Connection] = None
        self._connect()

    # ------------------------------------------------------------ connection

    def _connect(self) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._open_db()
        except sqlite3.DatabaseError:
            self._recover_corrupt()
            self._conn = self._open_db()

    def _open_db(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=self.timeout_s,
                               isolation_level=None)
        try:
            conn.execute("PRAGMA synchronous=NORMAL")
            # a whole worker pool opens this database at once, so the
            # write transactions below (schema creation, WAL switch,
            # migration) only run when actually needed: probing is a
            # read, and reads don't queue on the write lock the way a
            # spawn-time thundering herd of CREATEs would (WAL mode
            # is a sticky property of the file — setting it once at
            # creation covers every later connection)
            have = {row[0] for row in conn.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type = 'table'")}
            if "cells" not in have or "meta" not in have:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.executescript(_SCHEMA)
            # migrate pre-batching stores in place ("started" tracks
            # which leased cell of a claim batch is actually running)
            cols = {row[1] for row in
                    conn.execute("PRAGMA table_info(cells)")}
            if "started" not in cols:
                conn.execute("ALTER TABLE cells ADD COLUMN "
                             "started INTEGER NOT NULL DEFAULT 0")
            # schema check doubles as a corruption probe: a truncated
            # db file fails here, not on first claim
            conn.execute("SELECT count(*) FROM cells").fetchone()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _recover_corrupt(self) -> None:
        """Move a corrupt database aside and start fresh — one
        warning, no abort; the executor re-enqueues and recomputes."""
        aside = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            os.replace(self.path, aside)
        except OSError:
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - vanished underneath
                pass
        # WAL sidecar files belong to the dead database
        for suffix in ("-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass
        warnings.warn(
            f"shard store {self.path} is corrupt (truncated or "
            f"unreadable); moved aside and rebuilt — affected cells "
            f"will be recomputed", RuntimeWarning, stacklevel=3)

    def clone(self) -> "ShardStore":
        """A second store on the same database with its own sqlite
        connection.  Python's sqlite3 connections are bound to the
        thread that opened them, so anything touching the store from
        another thread (the lease-heartbeat thread) must use a clone,
        not the owner's connection."""
        return ShardStore(self.dir, fingerprint=self.fingerprint,
                          max_crashes=self.max_crashes,
                          timeout_s=self.timeout_s, _now=self._now)

    def close(self) -> None:
        """Close the sqlite connection (idempotent); leased rows keep
        their leases and expire naturally if never completed."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ enqueue

    def add_cells(self, keyed_cells: Iterable[tuple]) -> int:
        """Enqueue ``(key, cell)`` pairs; existing rows (any state —
        an interrupted run's ``done`` rows included) are left alone,
        which is exactly the store-level resume semantics.  Returns
        the number of rows inserted."""
        cur = self._conn.execute("SELECT count(*) FROM cells")
        before = cur.fetchone()[0]
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT OR IGNORE INTO cells (key, cell) VALUES (?, ?)",
                [(key, canonical_json(cell))
                 for key, cell in keyed_cells])
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (k, v) VALUES "
                "('format', ?), ('fingerprint', ?)",
                (FORMAT, self.fingerprint))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        after = self._conn.execute(
            "SELECT count(*) FROM cells").fetchone()[0]
        return after - before

    # ------------------------------------------------------------ leasing

    def claim(self, owner: str, lease_s: float) -> Optional[tuple]:
        """Atomically lease one runnable cell to ``owner``; returns
        ``(key, cell)`` or ``None`` when nothing is claimable right
        now.  Single-cell form of :meth:`claim_batch`."""
        batch = self.claim_batch(owner, lease_s, 1)
        return batch[0] if batch else None

    def claim_batch(self, owner: str, lease_s: float,
                    k: int = DEFAULT_CLAIM_BATCH) -> list:
        """Atomically lease up to ``k`` runnable cells to ``owner`` in
        one write transaction; returns a list of ``(key, cell)`` pairs
        (empty when nothing is claimable right now).

        Runnable means ``pending`` past its backoff window, or
        ``leased`` with an expired lease (work stealing).  Only the
        first cell of the batch is marked *started* — the worker marks
        each later cell as it reaches it (:meth:`complete` with
        ``start_next``, or :meth:`mark_started`).  Stealing an expired
        lease bumps the crash counter only when the dead owner had
        actually started the cell; unstarted batch-mates of a crashed
        worker re-enter circulation without a bump, so batching never
        inflates poison counts.  A started cell at the poison
        threshold is quarantined instead of handed out."""
        now = self._now()
        # read-probe first: claimers poll when the queue runs dry
        # (tail of a sweep, backoff windows), and an empty claim
        # should not cost a write-lock acquisition
        probe = self._conn.execute(
            "SELECT 1 FROM cells "
            "WHERE (state = 'pending' AND not_before <= ?) "
            "   OR (state = 'leased' AND lease_until <= ?) "
            "LIMIT 1", (now, now)).fetchone()
        if probe is None:
            return []
        claimed: list = []
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            while len(claimed) < k:
                rows = self._conn.execute(
                    "SELECT key, cell, state, crashes, started "
                    "FROM cells "
                    "WHERE (state = 'pending' AND not_before <= ?) "
                    "   OR (state = 'leased' AND lease_until <= ?) "
                    "ORDER BY rowid LIMIT ?",
                    (now, now, k - len(claimed))).fetchall()
                if not rows:
                    break
                for key, cell_json, state, crashes, started in rows:
                    if state == "leased" and started:
                        crashes += 1
                        if crashes >= self.max_crashes:
                            self._conn.execute(
                                "UPDATE cells SET state = 'failed', "
                                "owner = NULL, crashes = ?, "
                                "started = 0, reason = ? "
                                "WHERE key = ?",
                                (crashes,
                                 f"poison: crashed {crashes} workers",
                                 key))
                            continue
                    self._conn.execute(
                        "UPDATE cells SET state = 'leased', "
                        "owner = ?, lease_until = ?, crashes = ?, "
                        "started = ? WHERE key = ?",
                        (owner, now + lease_s, crashes,
                         0 if claimed else 1, key))
                    claimed.append((key, json.loads(cell_json)))
            self._conn.execute("COMMIT")
            return claimed
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def mark_started(self, owner: str, key: str) -> bool:
        """Mark a batch-claimed cell as actually executing (the normal
        path fuses this into :meth:`complete` via ``start_next``; this
        standalone form serves the failed-previous-cell path).
        Returns ``False`` when the lease is no longer ours — the
        worker must skip the cell, not run it."""
        cur = self._conn.execute(
            "UPDATE cells SET started = 1 "
            "WHERE key = ? AND owner = ? AND state = 'leased'",
            (key, owner))
        return cur.rowcount == 1

    def renew(self, owner: str, key: str, lease_s: float) -> bool:
        """Heartbeat: extend ``owner``'s lease on ``key``.  Returns
        ``False`` when the lease is no longer ours (expired and
        stolen) — the worker should abandon the cell."""
        cur = self._conn.execute(
            "UPDATE cells SET lease_until = ? "
            "WHERE key = ? AND owner = ? AND state = 'leased'",
            (self._now() + lease_s, key, owner))
        return cur.rowcount == 1

    def renew_many(self, owner: str, keys: Iterable[str],
                   lease_s: float) -> int:
        """Batch heartbeat: one UPDATE extending ``owner``'s lease on
        every listed key still held.  Returns the number of leases
        renewed — ``0`` means every cell was stolen (or completed) and
        the worker should re-claim.  Keys no longer ours are silently
        skipped; a batch worker only learns a specific cell was stolen
        when it tries to start it."""
        keys = tuple(keys)
        if not keys:
            return 0
        marks = ",".join("?" * len(keys))
        cur = self._conn.execute(
            f"UPDATE cells SET lease_until = ? "
            f"WHERE owner = ? AND state = 'leased' "
            f"AND key IN ({marks})",
            (self._now() + lease_s, owner, *keys))
        return cur.rowcount

    def reap(self) -> int:
        """Supervisor sweep: quarantine every *started* cell whose
        lease has expired ``max_crashes`` times; merely-expired leases
        (and unstarted batch-mates of dead workers, which carry no
        crash evidence) are left for :meth:`claim` to steal.  Returns
        the number of cells poisoned by this call."""
        now = self._now()
        # read-probe first: the supervisor reaps every poll and a
        # healthy sweep never has a poisonable lease, so skip the
        # write transaction (and its lock, which the whole worker
        # pool contends for) unless there is actually work
        probe = self._conn.execute(
            "SELECT 1 FROM cells "
            "WHERE state = 'leased' AND lease_until <= ? "
            "AND started = 1 AND crashes + 1 >= ? LIMIT 1",
            (now, self.max_crashes)).fetchone()
        if probe is None:
            return 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            cur = self._conn.execute(
                "UPDATE cells SET state = 'failed', owner = NULL, "
                "crashes = crashes + 1, started = 0, "
                "reason = 'poison: crashed ' || (crashes + 1) "
                "         || ' workers' "
                "WHERE state = 'leased' AND lease_until <= ? "
                "AND started = 1 "
                "AND crashes + 1 >= ?", (now, self.max_crashes))
            self._conn.execute("COMMIT")
            return cur.rowcount
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------ terminal

    def complete(self, key: str, result: Any, *,
                 owner: Optional[str] = None,
                 start_next: Optional[str] = None) -> bool:
        """Record a finished cell (with its result digest).  Runs
        unconditionally: a worker whose lease was stolen may still
        land its (deterministic, hence identical) result — last write
        wins and both are correct.

        ``start_next`` (with ``owner``) marks the worker's next
        batch-claimed cell as started in the same write transaction —
        the per-cell store traffic of a batch worker is this one fused
        call plus its share of a :meth:`renew_many` heartbeat.
        Returns ``False`` when ``start_next`` is no longer ours (lease
        stolen) — the worker must skip that cell."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "UPDATE cells SET state = 'done', owner = NULL, "
                "started = 0, result = ?, result_sha = ?, "
                "reason = NULL WHERE key = ?",
                (canonical_json(result), result_sha(result), key))
            ok = True
            if start_next is not None:
                cur = self._conn.execute(
                    "UPDATE cells SET started = 1 "
                    "WHERE key = ? AND owner = ? AND state = 'leased'",
                    (start_next, owner))
                ok = cur.rowcount == 1
            self._conn.execute("COMMIT")
            return ok
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def fail_attempt(self, key: str, error: str, *, retries: int,
                     backoff_s: float) -> bool:
        """Record a failed execution attempt.  With retries left the
        cell returns to ``pending`` behind a jittered exponential
        backoff window; otherwise it is terminally ``failed``.
        Returns ``True`` when a retry was scheduled.  A cell another
        worker already completed (our lease was stolen mid-attempt and
        the thief finished first) is left ``done`` untouched — a stale
        failure never clobbers a good result."""
        now = self._now()
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT attempts, state FROM cells WHERE key = ?",
                (key,)).fetchone()
            if row is None or row[1] == "done":
                self._conn.execute("COMMIT")
                return False
            attempts = row[0] + 1
            if attempts > retries:
                self._conn.execute(
                    "UPDATE cells SET state = 'failed', owner = NULL, "
                    "started = 0, attempts = ?, reason = ? "
                    "WHERE key = ?",
                    (attempts, f"error: {error}", key))
                retried = False
            else:
                delay = (backoff_s * 2 ** (attempts - 1)
                         * backoff_jitter(key, attempts))
                self._conn.execute(
                    "UPDATE cells SET state = 'pending', owner = NULL, "
                    "started = 0, attempts = ?, not_before = ? "
                    "WHERE key = ?",
                    (attempts, now + delay, key))
                retried = True
            self._conn.execute("COMMIT")
            return retried
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------ queries

    def prune_except(self, keys: Iterable[str]) -> int:
        """Delete rows whose key is not in ``keys`` — called by the
        executor before enqueueing so the store is always scoped to
        exactly one sweep.  A resumed identical sweep keys
        identically and keeps every terminal row; a different sweep
        (or any source change, which re-keys everything) starts
        clean.  Returns the number of rows dropped."""
        keep = set(keys)
        cur = self._conn.execute("SELECT key FROM cells")
        stale = [(key,) for (key,) in cur.fetchall()
                 if key not in keep]
        if stale:
            self._conn.executemany(
                "DELETE FROM cells WHERE key = ?", stale)
        return len(stale)

    def done_keys(self) -> list:
        """Keys of every ``done`` row (no result parsing — cheap
        enough for the supervisor to poll)."""
        cur = self._conn.execute(
            "SELECT key FROM cells WHERE state = 'done'")
        return [key for (key,) in cur.fetchall()]

    def get_result(self, key: str) -> tuple:
        """``(True, result)`` for a verified ``done`` row, else
        ``(False, None)``.  A row that fails verification (bit flip,
        torn write) is discarded back to ``pending`` with one warning
        — corrupt data is recomputed, never served."""
        row = self._conn.execute(
            "SELECT result, result_sha FROM cells "
            "WHERE key = ? AND state = 'done'", (key,)).fetchone()
        if row is None:
            return False, None
        raw, sha = row
        try:
            value = json.loads(raw)
            ok = result_sha(value) == sha
        except (TypeError, ValueError):
            ok = False
        if not ok:
            self._discard([key])
            return False, None
        return True, value

    def _discard(self, keys: list) -> None:
        """Push corrupt ``done`` rows back to ``pending`` (single
        warning for the batch)."""
        warnings.warn(
            f"shard store: discarded {len(keys)} corrupt result "
            f"row(s) (hash mismatch); recomputing",
            RuntimeWarning, stacklevel=3)
        self._conn.executemany(
            "UPDATE cells SET state = 'pending', result = NULL, "
            "result_sha = NULL, owner = NULL WHERE key = ?",
            [(key,) for key in keys])

    def counts(self) -> dict:
        """Row count per state (absent states omitted)."""
        cur = self._conn.execute(
            "SELECT state, count(*) FROM cells GROUP BY state")
        return dict(cur.fetchall())

    def all_terminal(self) -> bool:
        """True when every cell is ``done`` or ``failed`` — the
        workers' exit condition."""
        cur = self._conn.execute(
            "SELECT count(*) FROM cells "
            "WHERE state NOT IN ('done', 'failed')")
        return cur.fetchone()[0] == 0

    def results(self) -> dict:
        """``{key: result}`` for every verified ``done`` row.  A row
        whose stored digest does not match its result JSON (bit flip,
        torn write) is discarded back to ``pending`` with one warning
        so it gets recomputed — corrupt data is never served."""
        out = {}
        bad = []
        cur = self._conn.execute(
            "SELECT key, result, result_sha FROM cells "
            "WHERE state = 'done'")
        for key, raw, sha in cur.fetchall():
            try:
                value = json.loads(raw)
            except (TypeError, ValueError):
                bad.append(key)
                continue
            if result_sha(value) != sha:
                bad.append(key)
                continue
            out[key] = value
        if bad:
            self._discard(bad)
        return out

    def failures(self) -> dict:
        """``{key: (reason, attempts, crashes)}`` for ``failed``
        rows."""
        cur = self._conn.execute(
            "SELECT key, reason, attempts, crashes FROM cells "
            "WHERE state = 'failed'")
        return {key: (reason or "error", attempts, crashes)
                for key, reason, attempts, crashes in cur.fetchall()}

    def clear(self) -> None:
        """Delete the store (a fully successful sweep removes it, like
        the checkpoint manifest)."""
        self.close()
        for name in (str(self.path), f"{self.path}-wal",
                     f"{self.path}-shm"):
            try:
                os.unlink(name)
            except OSError:
                pass
