"""Crash-safe campaign runner: ``python -m repro.experiments``.

Runs a list of experiments (default: all of them) with the hardened
fan-out — per-cell timeouts, bounded retries, ``FAILED`` markers —
checkpointing each finished cell so an interrupted run restarts with
``--resume`` and re-executes only the unfinished cells::

    python -m repro.experiments run --jobs 8 -o report.txt
    # ... killed half-way ...
    python -m repro.experiments run --jobs 8 -o report.txt --resume

The resumed report is byte-identical to an uninterrupted one (see
docs/fault-injection.md for the determinism contract).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..core.artifacts import atomic_write_text
from .campaign import render_report, run_campaign
from .cellcache import DEFAULT_DIR as DEFAULT_CACHE_DIR
from .cellcache import CellCache
from .parallel import FailedCell
from .registry import experiment_names
from .store import DEFAULT_DIR as DEFAULT_STORE_DIR

DEFAULT_CHECKPOINT = ".repro-campaign-checkpoint.json"


def _cmd_run(args) -> int:
    names = args.experiments or experiment_names()
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        known = ", ".join(experiment_names())
        print(f"unknown experiment(s): {', '.join(unknown)} "
              f"(known: {known})", file=sys.stderr)
        return 2
    jobs = args.jobs
    if args.shard_workers is not None and args.profile:
        print("--profile is serial in-process; --shard-workers "
              "ignored", file=sys.stderr)
        args.shard_workers = None
    if args.shard_workers is not None and args.reseed:
        print("--reseed is incompatible with --shard-workers "
              "(sharded cells are content-addressed)",
              file=sys.stderr)
        return 2
    if args.profile:
        # Profiling aggregates the process-wide profiler across every
        # cell, which requires running serially in-process, and a
        # cache-served cell executes nothing to measure.
        os.environ["REPRO_PROFILE"] = "1"
        if jobs not in (None, 1):
            print("--profile forces serial execution (--jobs ignored)",
                  file=sys.stderr)
        jobs = None
    cache = None
    if not args.no_cache and not args.profile:
        cache = CellCache(args.cache_dir)
    cells, results = run_campaign(
        names, quick=not args.full, seed=args.seed, jobs=jobs,
        timeout_s=args.timeout, retries=args.retries,
        backoff_s=args.backoff, reseed=args.reseed,
        checkpoint_path=args.checkpoint, resume=args.resume,
        cache=cache, shard_workers=args.shard_workers,
        store_dir=args.store_dir)
    if cache is not None:
        # stderr: the stdout report must stay byte-identical whether
        # cells were computed or cache-served
        print(f"cell cache: {cache.hits} hit(s), "
              f"{cache.misses} executed", file=sys.stderr)
    if args.profile:
        from ..core.profile import global_profiler
        print("per-subsystem profile (all cells; see "
              "docs/performance.md):", file=sys.stderr)
        print(global_profiler().report(), file=sys.stderr)
    report = render_report(cells, results)
    if args.output:
        atomic_write_text(args.output, report)
        print(f"report written to {args.output}")
    else:
        print(report)
    failed = [r for r in results if isinstance(r, FailedCell)]
    for failure in failed:
        print(f"FAILED {failure.cell['experiment']}: "
              f"{failure.render()}", file=sys.stderr)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="crash-safe, resumable experiment campaigns")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run an experiment campaign")
    p.add_argument("experiments", nargs="*", metavar="EXP",
                   help="experiments to run (default: all)")
    p.add_argument("--full", action="store_true",
                   help="full-size configuration (slower)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="worker processes (0 = all cores)")
    p.add_argument("--shard-workers", type=int, default=None,
                   metavar="N",
                   help="run through the leased work-stealing shard "
                        "executor with N workers sharing the on-disk "
                        "store (crash-tolerant: survives worker "
                        "SIGKILLs and supervisor death; see "
                        "docs/distributed-campaigns.md)")
    p.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                   metavar="DIR",
                   help="shard-store directory (default: "
                        f"{DEFAULT_STORE_DIR}); pair with --resume "
                        "to pick an interrupted sharded sweep back "
                        "up")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="S", help="per-cell wall-clock timeout")
    p.add_argument("--retries", type=int, default=0,
                   help="re-run failed cells up to N extra times")
    p.add_argument("--backoff", type=float, default=0.5, metavar="S",
                   help="base for exponential retry backoff")
    p.add_argument("--reseed", action="store_true",
                   help="perturb a cell's seed on each retry "
                        "(trades byte-identical reports for "
                        "progress past seed-specific failures)")
    p.add_argument("--checkpoint", default=DEFAULT_CHECKPOINT,
                   metavar="PATH",
                   help="checkpoint manifest path "
                        f"(default: {DEFAULT_CHECKPOINT})")
    p.add_argument("--resume", action="store_true",
                   help="replay finished cells from the checkpoint; "
                        "without this flag a stale manifest is "
                        "cleared and the campaign starts fresh")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed cell cache and "
                        "recompute every cell (e.g. for timing runs)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   metavar="DIR",
                   help="cell-cache directory (default: "
                        f"{DEFAULT_CACHE_DIR}); entries invalidate "
                        "automatically when src/repro changes")
    p.add_argument("--profile", action="store_true",
                   help="run serially and report per-subsystem event "
                        "counts and self-time aggregated over every "
                        "cell (disables the cell cache; see "
                        "docs/performance.md)")
    p.add_argument("--output", "-o", default=None,
                   help="write the report to a file (atomically) "
                        "instead of stdout")
    p.set_defaults(func=_cmd_run)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
