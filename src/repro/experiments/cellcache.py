"""Content-addressed cell cache (the campaign's memo layer).

A campaign cell — one ``(experiment, quick, seed)`` simulation — is a
pure function of its cell dict and the simulator source code.  This
module memoizes finished cells on disk keyed by **content**, so a
warm rerun of an unchanged campaign executes zero cells and renders a
byte-identical report, and sweeps that share cells (repeated
``make golden-check``, ``--resume`` after the checkpoint manifest was
cleaned up, overlapping experiment subsets) skip the recompute.

The key is ``sha256(canonical-JSON(cell) + code fingerprint)`` where
the *code fingerprint* is a sha256 over every ``src/repro/**/*.py``
file (relative path + bytes, sorted).  Any source change — engine,
scheduler, experiment driver, workload table — flips the fingerprint
and silently invalidates every entry, so the cache can never serve a
result computed by different code.  That property is what makes it
safe to leave on by default: there is no manual invalidation step to
forget.  ``--no-cache`` (campaign CLI) bypasses it for A/B timing
runs; stale entries under old fingerprints are garbage-collected
opportunistically on ``put``.

Entries are one JSON file per key written through
:func:`repro.core.artifacts.atomic_write_json`, so a crash mid-write
can never leave a torn entry — a reader sees a complete file or no
file.  Unlike the ``--resume`` checkpoint journal (one file, scoped
to a single campaign's meta), cache entries are per-cell and
campaign-agnostic: two different campaigns sharing a cell share the
entry.  Each entry also carries a sha256 over its result, so bit rot
or truncation of an *existing* entry is detected on read, evicted
with one warning, and recomputed — never served.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Optional

from ..core.artifacts import atomic_write_json

FORMAT = "repro-cell-cache-v2"


def _result_sha(result: Any) -> str:
    """Integrity digest stored with every entry: sha256 over the
    result's canonical JSON.  The atomic write already rules out torn
    *new* files; this catches what it cannot — bit rot, truncation or
    in-place edits of an existing entry — so a corrupt entry is
    detected and recomputed, never served."""
    canonical = json.dumps(result, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()

#: default cache directory (repo-root relative, like the checkpoint)
DEFAULT_DIR = ".repro-cell-cache"

#: process-wide fingerprint memo — source files do not change under a
#: running process, and hashing ~40k lines per cell lookup would
#: defeat the point
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """sha256 over every ``src/repro/**/*.py`` (sorted relative path +
    file bytes).  Computed once per process."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(cell: Any, fingerprint: Optional[str] = None) -> str:
    """Content address for ``cell``: sha256 of its canonical JSON
    (sorted keys, so dict ordering is irrelevant) and the code
    fingerprint."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    canonical = json.dumps(cell, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode())
    digest.update(b"\0")
    digest.update(fingerprint.encode())
    return digest.hexdigest()


class _Miss:
    """Sentinel distinguishing "no entry" from a cached ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MISS>"


class CellCache:
    """Directory of content-addressed cell results.

    ``get(cell)`` returns the stored result or :data:`MISS`;
    ``put(cell, result)`` records one atomically.  ``hits`` /
    ``misses`` count lookups for the campaign runner's summary line.
    """

    MISS = _Miss()

    def __init__(self, root=DEFAULT_DIR,
                 fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self._gc_done = False

    def path_for(self, cell: Any) -> Path:
        """The on-disk entry path for ``cell`` under the current
        fingerprint."""
        key = cache_key(cell, self.fingerprint)
        return self.root / f"{key}.json"

    def get(self, cell: Any) -> Any:
        """The cached result for ``cell`` under the current code
        fingerprint, or :data:`MISS`.  A wrong-fingerprint or
        differently-versioned entry is a plain miss; a *corrupt* one
        — truncated file, invalid JSON, or a result whose stored
        sha256 no longer matches (bit flip) — is additionally evicted
        with a single warning so it gets recomputed, never served."""
        path = self.path_for(cell)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return self.MISS
        try:
            raw = json.loads(text)
        except ValueError:
            self._evict_corrupt(path, "truncated or unparsable")
            return self.MISS
        if (not isinstance(raw, dict) or raw.get("format") != FORMAT
                or raw.get("fingerprint") != self.fingerprint):
            self.misses += 1
            return self.MISS
        result = raw.get("result")
        if raw.get("sha256") != _result_sha(result):
            self._evict_corrupt(path, "result hash mismatch")
            return self.MISS
        self.hits += 1
        return result

    def _evict_corrupt(self, path: Path, why: str) -> None:
        """Drop a corrupt entry (count it as a miss): one warning,
        unlink, recompute downstream."""
        self.misses += 1
        warnings.warn(
            f"cell cache: evicted corrupt entry {path.name} ({why}); "
            f"the cell will be recomputed", RuntimeWarning,
            stacklevel=3)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - eviction race
            pass

    def put(self, cell: Any, result: Any) -> None:
        """Record a finished cell (atomic per-entry write, with an
        integrity digest over the result).  Results must be plain
        JSON values — the same constraint
        :func:`~repro.experiments.parallel.cell_map` already imposes."""
        atomic_write_json(self.path_for(cell), {
            "format": FORMAT,
            "fingerprint": self.fingerprint,
            "cell": cell,
            "result": result,
            "sha256": _result_sha(result),
        })
        self._gc()

    def _gc(self) -> None:
        """Drop entries written under *other* code fingerprints — they
        can never hit again (any source change re-keys everything), so
        the directory would otherwise grow one generation per edit.
        Runs once per process (on the first ``put``); best-effort:
        unreadable files are removed, races ignored."""
        if self._gc_done:
            return
        self._gc_done = True
        try:
            entries = list(self.root.glob("*.json"))
        except OSError:  # pragma: no cover - directory vanished
            return
        for path in entries:
            try:
                raw = json.loads(path.read_text())
                stale = raw.get("fingerprint") != self.fingerprint
            except (OSError, ValueError, AttributeError):
                stale = True
            if stale:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - race
                    pass

    def clear(self) -> None:
        """Remove every entry (``rm`` the directory contents)."""
        try:
            entries = list(self.root.glob("*.json"))
        except OSError:  # pragma: no cover - directory vanished
            return
        for path in entries:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - race
                pass

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:  # pragma: no cover - directory vanished
            return 0


def cache_from_env() -> Optional[CellCache]:
    """Build a :class:`CellCache` from ``REPRO_CELL_CACHE``: unset /
    ``0`` / ``off`` / ``no`` / ``false`` → no cache; ``1`` / ``on`` /
    ``yes`` / ``true`` → the default directory; anything else is the
    cache directory path.  This is how ``make golden-check`` opts in
    without threading a flag through pytest."""
    value = os.environ.get("REPRO_CELL_CACHE", "").strip()
    if value.lower() in ("", "0", "off", "no", "false"):
        return None
    if value.lower() in ("1", "on", "yes", "true"):
        return CellCache()
    return CellCache(value)
