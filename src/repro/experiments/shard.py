"""Leased work-stealing shard executor for campaign sweeps.

:func:`shard_map` is the distributed sibling of
:func:`~repro.experiments.parallel.cell_map`: same contract (apply
``fn`` to every cell, results back in submission order, failures as
:class:`~repro.experiments.parallel.FailedCell` markers), but the
workers coordinate through a shared on-disk
:class:`~repro.experiments.store.ShardStore` instead of pipes to a
parent — which is what lets the sweep survive anything short of
losing the disk:

* **Worker crash (any signal, incl. SIGKILL)** — the dead worker's
  leased cell expires and is stolen by a surviving worker; the
  supervisor reaps the corpse and respawns a replacement (bounded by
  ``respawn_budget``).
* **Poison cells** — a cell whose lease expires
  ``max_crashes`` times (it keeps killing or wedging workers) is
  quarantined as a ``FAILED(poison)`` row instead of taking the sweep
  down with it.
* **Supervisor crash** — every completed cell is already in the store
  (and, incrementally, the campaign checkpoint); re-running the same
  sweep against the same ``store_dir`` resumes from the terminal rows
  and re-executes only the rest.
* **Pool collapse** — if no worker can be (re)spawned, the supervisor
  degrades to executing the remaining cells serially in-process; the
  sweep finishes slower instead of not at all.
* **Corrupt artifacts** — torn store rows/databases and corrupt
  checkpoint or cache entries are detected by digest, discarded with
  a single warning, and recomputed (see store.py / checkpoint.py /
  cellcache.py).

Determinism is inherited from the cell contract: cells are pure
functions of their content, results are plain JSON, and the output
list is ordered by submission — so a sharded, crashed, resumed sweep
renders a report byte-identical to an uninterrupted serial run
(asserted by ``make shard-chaos-smoke`` and the chaos tests).

In-flight dedupe rides on content addressing: store rows are keyed by
the cell-cache sha256 key, so identical cells collapse to one row,
one execution, one result — and a cell already present in the
checkpoint or the cell cache is never executed at all.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Iterable, Optional

from .cellcache import CellCache, cache_key, code_fingerprint
from .parallel import FailedCell
from .store import DEFAULT_CLAIM_BATCH, DEFAULT_MAX_CRASHES, ShardStore

#: default lease duration; workers heartbeat at a third of this, so a
#: healthy worker is three missed beats away from losing a cell
DEFAULT_LEASE_S = 2.0

#: supervisor poll / idle-worker nap interval
DEFAULT_POLL_S = 0.05


def default_respawn_budget(workers: int) -> int:
    """How many replacement workers the supervisor will spawn before
    declaring the pool unrespawnable: generous enough to ride out a
    chaos run's kills, small enough that a crash-looping environment
    degrades to serial instead of forking forever."""
    return 4 * max(1, workers)


def _fail_reason(reason: str) -> tuple:
    """Split a store failure reason into FailedCell (reason, error)."""
    kind, _, detail = reason.partition(": ")
    if kind in ("poison", "error", "timeout"):
        return kind, detail
    return "error", reason


class _Heartbeat:
    """Daemon thread renewing a claim batch's leases while ``fn``
    runs (one :meth:`ShardStore.renew_many` per beat for the whole
    batch).

    Python's sqlite3 connections are bound to their opening thread,
    so the heartbeat clones the worker's store *inside* its own
    thread rather than sharing the claim/complete connection.

    ``held`` is a one-slot list holding a tuple of keys; the drain
    loop swaps in a smaller tuple as cells finish (replacing the
    tuple, never mutating it, so this thread always reads a
    consistent snapshot).

    Stops renewing ``timeout_s`` after the current cell began (see
    :meth:`begin_cell`): a wedged cell then loses its lease — and the
    rest of the batch with it, since the worker is stuck — gets
    stolen, and after ``max_crashes`` wedges is quarantined, all
    without anyone having to kill the stuck worker mid-syscall.
    """

    def __init__(self, store: ShardStore, owner: str, held: list,
                 lease_s: float, timeout_s: Optional[float]):
        self._store = store
        self._owner = owner
        self._held = held
        self._lease_s = lease_s
        self._timeout_s = timeout_s
        self._deadline = (None if timeout_s is None
                          else time.monotonic() + timeout_s)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def begin_cell(self) -> None:
        """Restart the wedge deadline — ``timeout_s`` bounds one
        cell's execution, not the whole batch."""
        if self._timeout_s is not None:
            self._deadline = time.monotonic() + self._timeout_s

    def _run(self) -> None:
        if self._stop.wait(self._lease_s / 3):
            return  # batch finished before the first beat: skip the
            #         per-batch connection entirely (the common case)
        store = self._store.clone()  # this thread's own connection
        try:
            while True:
                deadline = self._deadline
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    return
                keys = self._held[0]
                if keys and not store.renew_many(self._owner, keys,
                                                 self._lease_s):
                    return  # every lease lost (stolen): renewing a
                    #         dead lease would fight the new owners
                if self._stop.wait(self._lease_s / 3):
                    return
        except Exception:  # pragma: no cover - store racing close
            return
        finally:
            store.close()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def _drain(store: ShardStore, fn: Callable, owner: str, *,
           lease_s: float, retries: int, backoff_s: float,
           timeout_s: Optional[float],
           cache: Optional[CellCache],
           poll_s: float = DEFAULT_POLL_S,
           parent_pid: Optional[int] = None,
           max_cells: Optional[int] = None,
           claim_k: int = DEFAULT_CLAIM_BATCH) -> int:
    """The claim/execute/complete loop shared by worker processes and
    the supervisor's serial-degradation path.  Claims up to
    ``claim_k`` cells per store write transaction
    (:meth:`ShardStore.claim_batch`) and renews the whole batch with
    one heartbeat thread, so per-cell store traffic is one fused
    complete+start-next write plus a share of a batch renew.  Returns
    the number of cells executed.  Exits when every cell is terminal,
    when ``max_cells`` is reached, or — for workers — when the
    supervisor (``parent_pid``) is gone."""
    done = 0
    while max_cells is None or done < max_cells:
        if parent_pid is not None and os.getppid() != parent_pid:
            break  # orphaned: supervisor died, don't run headless
        want = (claim_k if max_cells is None
                else min(claim_k, max_cells - done))
        batch = store.claim_batch(owner, lease_s, want)
        if not batch:
            if store.all_terminal():
                break
            time.sleep(poll_s)
            continue
        held = [tuple(key for key, _ in batch)]
        beat = _Heartbeat(store, owner, held, lease_s, timeout_s)
        try:
            ours = True  # claim_batch marked the first cell started
            for pos, (key, cell) in enumerate(batch):
                if parent_pid is not None \
                        and os.getppid() != parent_pid:
                    break  # orphaned mid-batch: unstarted leases
                    #        expire and are re-claimed bump-free
                if not ours:
                    # the previous cell failed (or its complete saw
                    # this lease stolen): claim executing rights
                    # before running
                    ours = store.mark_started(owner, key)
                    if not ours:
                        held[0] = tuple(k for k in held[0]
                                        if k != key)
                        continue  # stolen while queued: the thief
                        #           runs it, we move on
                beat.begin_cell()
                next_key = (batch[pos + 1][0]
                            if pos + 1 < len(batch) else None)
                try:
                    result = fn(cell)
                except BaseException as exc:
                    if not isinstance(exc, Exception):
                        raise  # KeyboardInterrupt/SystemExit: die
                        #        leased, lease expiry hands cells on
                    store.fail_attempt(
                        key, f"{type(exc).__name__}: {exc}",
                        retries=retries, backoff_s=backoff_s)
                    ours = False
                else:
                    ours = store.complete(key, result, owner=owner,
                                          start_next=next_key)
                    if cache is not None:
                        cache.put(cell, result)
                done += 1
                held[0] = tuple(k for k in held[0] if k != key)
        finally:
            beat.stop()
    return done


def _worker_main(store_dir, fn, *, lease_s, retries, backoff_s,
                 timeout_s, cache_root, fingerprint, max_crashes,
                 parent_pid, claim_k=DEFAULT_CLAIM_BATCH) -> None:
    """Worker process entry point: open the shared store and drain."""
    # warm-engine reuse: a worker runs many cells, and campaign cells
    # repeat (topology, scheduler) configurations — let make_engine
    # recycle engines via Engine.reset() unless the parent explicitly
    # exported REPRO_WARM_ENGINES=0
    os.environ.setdefault("REPRO_WARM_ENGINES", "1")
    cache = None
    if cache_root is not None:
        cache = CellCache(cache_root, fingerprint=fingerprint)
    with ShardStore(store_dir, fingerprint=fingerprint,
                    max_crashes=max_crashes) as store:
        _drain(store, fn, owner=f"worker-{os.getpid()}",
               lease_s=lease_s, retries=retries, backoff_s=backoff_s,
               timeout_s=timeout_s, cache=cache,
               parent_pid=parent_pid, claim_k=claim_k)


def shard_map(fn: Callable[[Any], Any], cells: Iterable[Any],
              workers: int, *, store_dir,
              lease_s: float = DEFAULT_LEASE_S,
              timeout_s: Optional[float] = None,
              retries: int = 0,
              backoff_s: float = 0.5,
              max_crashes: int = DEFAULT_MAX_CRASHES,
              respawn_budget: Optional[int] = None,
              poll_s: float = DEFAULT_POLL_S,
              claim_k: int = DEFAULT_CLAIM_BATCH,
              checkpoint=None,
              cache: Optional[CellCache] = None,
              chaos: Optional[Callable] = None,
              on_progress: Optional[Callable] = None) -> list:
    """Apply ``fn`` to every cell through ``workers`` leased
    work-stealing processes sharing the store at ``store_dir``.

    Same result contract as
    :func:`~repro.experiments.parallel.cell_map` with
    ``mark_failures=True``: a list in submission order, exhausted or
    quarantined cells as :class:`FailedCell` markers.  ``fn`` must be
    module-level and cells/results plain JSON data (the store and the
    checkpoint both persist them as canonical JSON).

    ``checkpoint``/``cache`` short-circuit exactly like in
    :func:`cell_map` (checkpoint wins; cache hits are copied into the
    checkpoint so an interrupted sweep's manifest stays complete), and
    every store-computed result is merged into both as it lands — the
    supervisor is the single checkpoint writer, workers share the
    content-addressed cache directly.

    ``chaos`` is the fault-injection hook: a callable invoked each
    supervisor poll with the list of live worker ``Process`` objects
    (see :mod:`repro.faults.procchaos`).  ``on_progress(done, total)``
    fires when the done-count advances.
    """
    cells = list(cells)
    fingerprint = (cache.fingerprint if cache is not None
                   else code_fingerprint())
    keys = [cache_key(cell, fingerprint) for cell in cells]

    results: dict[int, Any] = {}
    store_indexes: list[int] = []
    for index, cell in enumerate(cells):
        if checkpoint is not None:
            hit = checkpoint.get(cell)
            if hit is not checkpoint.MISS:
                results[index] = hit
                continue
        if cache is not None:
            hit = cache.get(cell)
            if hit is not cache.MISS:
                results[index] = hit
                if checkpoint is not None:
                    checkpoint.put(cell, hit)
                continue
        store_indexes.append(index)

    store = ShardStore(store_dir, fingerprint=fingerprint,
                       max_crashes=max_crashes)
    try:
        # duplicate cells collapse onto one store row here: the dict
        # keeps one (key, cell) per content key; prune first so the
        # store is always scoped to exactly this sweep (a resumed
        # identical sweep keys identically and keeps its done rows)
        keyed = {keys[i]: cells[i] for i in store_indexes}
        store.prune_except(keyed)
        store.add_cells(keyed.items())
        _supervise(store, fn, workers,
                   lease_s=lease_s, timeout_s=timeout_s,
                   retries=retries, backoff_s=backoff_s,
                   max_crashes=max_crashes,
                   respawn_budget=respawn_budget,
                   poll_s=poll_s, claim_k=claim_k,
                   cache=cache, chaos=chaos,
                   store_dir=store_dir,
                   checkpoint=checkpoint, key_to_cell=keyed,
                   on_progress=on_progress,
                   prefilled=len(results), total=len(cells))

        failures = store.failures()
        for index in store_indexes:
            key = keys[index]
            found, value = store.get_result(key)
            if found:
                results[index] = value
            elif key in failures:
                reason, attempts, crashes = failures[key]
                kind, detail = _fail_reason(reason)
                results[index] = FailedCell(
                    cells[index], kind, detail,
                    attempts=max(1, attempts + crashes))
            else:
                # a done row failed verification at the last moment
                # (or vanished): recompute inline rather than abort
                value = fn(cells[index])
                store.complete(key, value)
                if cache is not None:
                    cache.put(cells[index], value)
                if checkpoint is not None:
                    checkpoint.put(cells[index], value)
                results[index] = value
    finally:
        store.close()
    return [results[index] for index in range(len(cells))]


def _supervise(store: ShardStore, fn, workers: int, *, lease_s,
               timeout_s, retries, backoff_s, max_crashes,
               respawn_budget, poll_s, claim_k, cache, chaos,
               store_dir, checkpoint, key_to_cell, on_progress,
               prefilled, total) -> None:
    """Run the pool to completion: spawn workers, reap/respawn the
    dead, poison wedged cells, merge finished rows into the
    checkpoint, and degrade to serial when the pool is gone."""
    if respawn_budget is None:
        respawn_budget = default_respawn_budget(workers)
    cache_root = None if cache is None else cache.root
    worker_kwargs = dict(
        lease_s=lease_s, retries=retries, backoff_s=backoff_s,
        timeout_s=timeout_s, cache_root=cache_root,
        fingerprint=store.fingerprint, max_crashes=max_crashes,
        parent_pid=os.getpid(), claim_k=claim_k)

    def spawn():
        proc = multiprocessing.Process(
            target=_worker_main, args=(store_dir, fn),
            kwargs=worker_kwargs, daemon=True)
        proc.start()
        return proc

    checkpointed: set = set()

    def merge_done() -> None:
        """Flush newly finished rows into the checkpoint (the
        supervisor is the only checkpoint writer — workers never
        touch the manifest, so there is exactly one journal tail).
        Fresh rows land via one grouped journal append
        (:meth:`CampaignCheckpoint.put_many`) rather than one
        open/flush cycle per row."""
        fresh = []
        for key in store.done_keys():
            if key in checkpointed or key not in key_to_cell:
                continue
            found, result = store.get_result(key)
            if not found:
                continue  # discarded as corrupt; will be recomputed
            fresh.append((key_to_cell[key], result))
            checkpointed.add(key)
        if fresh:
            if checkpoint is not None:
                checkpoint.put_many(fresh)
            if on_progress is not None:
                on_progress(prefilled + len(checkpointed), total)

    procs: list = []
    if workers > 1:
        try:
            procs = [spawn() for _ in range(workers)]
        except OSError:
            procs = []  # can't fork at all: serial from the start

    serial_owner = f"supervisor-{os.getpid()}"
    try:
        while not store.all_terminal():
            if chaos is not None:
                chaos([p for p in procs if p.is_alive()])
            poisoned = store.reap()
            if poisoned:
                merge_done()
            dead = [p for p in procs if not p.is_alive()]
            for proc in dead:
                proc.join()
                procs.remove(proc)
            while dead and len(procs) < workers and respawn_budget > 0:
                respawn_budget -= 1
                try:
                    procs.append(spawn())
                except OSError:
                    respawn_budget = 0
                    break
            if not procs:
                # pool gone and unrespawnable: finish the sweep
                # serially in-process rather than abandoning it
                _drain(store, fn, serial_owner,
                       lease_s=max(lease_s, 60.0), retries=retries,
                       backoff_s=backoff_s, timeout_s=None,
                       cache=cache, poll_s=poll_s, claim_k=claim_k)
                store.reap()
                merge_done()
                continue
            merge_done()
            time.sleep(poll_s)
        # results() discards corrupt rows back to pending; drain any
        # such stragglers serially so the sweep always converges
        while not store.all_terminal():
            _drain(store, fn, serial_owner, lease_s=max(lease_s, 60.0),
                   retries=retries, backoff_s=backoff_s,
                   timeout_s=None, cache=cache, poll_s=poll_s,
                   claim_k=claim_k)
            store.reap()
        merge_done()
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
