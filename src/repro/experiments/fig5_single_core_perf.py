"""Fig. 5 — performance of ULE relative to CFS, one core (§5.3).

Every registered application runs to completion on a single core under
each scheduler; the bar is ``(perf_ULE - perf_CFS) / perf_CFS`` in
percent (positive = faster on ULE).

Paper claims: most bars sit near zero (average +1.5 % for ULE); the
outliers are **scimark** (~-36 %: ULE lets the interactive JVM service
threads delay the batch compute thread) and **apache** (~+40 %: CFS's
wakeup preemption interrupts the single-threaded ``ab`` on every
request — 2 million preemptions — while ULE never preempts it).
"""

from __future__ import annotations

from ..analysis.report import render_bar_chart, render_table
from ..analysis.stats import percent_diff
from ..core.clock import sec, usec
from ..workloads.registry import FIGURE5_APPS
from .base import ExperimentResult, make_engine, run_workload
from .parallel import cell_map

CLAIM = ("per-core scheduling: ULE ~= CFS on most apps (avg +1.5%), "
         "scimark much slower on ULE, apache much faster")

#: modelled cost of one context switch (direct + cache); drives the
#: apache/ab preemption effect
CTX_SWITCH_COST_NS = usec(15)
TIMEOUT_NS = sec(120)

#: subset used by quick runs: the paper's outliers plus one
#: representative of each suite
QUICK_APPS = ["Gzip", "C-Ray", "scimark2-(1)", "scimark2-(2)",
              "john-(1)", "Apache", "EP", "MG", "Sysbench", "Rocksdb",
              "blackscholes", "ferret", "x264"]


def run_app(name: str, sched: str, ncpus: int = 1, seed: int = 1,
            with_noise: bool = False, sanitize: bool = None,
            faults=None) -> dict:
    """Run one registered app under one scheduler; returns metrics.

    ``sanitize=True`` runs the cell under the post-event invariant
    sanitizer (used by the smoke tests to prove the shipped
    schedulers are invariant-clean end to end); ``faults`` injects a
    :class:`~repro.faults.plan.FaultPlan` (the chaos smoke runs one
    cell per scheduler under the canned plan).
    """
    engine = make_engine(sched, ncpus=ncpus, seed=seed,
                         ctx_switch_cost_ns=CTX_SWITCH_COST_NS,
                         sanitize=sanitize, faults=faults)
    if with_noise:
        from ..workloads.noise import KernelNoiseWorkload
        KernelNoiseWorkload().launch(engine, at=0)
    workload = FIGURE5_APPS[name]()
    reason = run_workload(engine, workload, TIMEOUT_NS)
    if not workload.done(engine) and reason == "deadline":
        raise RuntimeError(f"{name} on {sched} hit the deadline")
    from ..tracing.digest import schedule_digest
    out = {
        "perf": workload.performance(engine),
        "switches": engine.metrics.counter("engine.switches"),
        "preemptions": engine.metrics.counter("engine.preemptions"),
        "overhead_ns": engine.metrics.counter("sched.overhead_ns"),
        "elapsed_ns": engine.now,
        # canonical schedule digest: pins the cell's exact schedule in
        # the golden-trace store (tests/golden/, `make golden`)
        "digest": schedule_digest(engine),
    }
    if name == "Apache":
        out["ab_preemptions"] = workload.ab_preemptions(engine)
    return out


def _run_cell(cell):
    """One (app, scheduler, seed) simulation; module-level so the
    parallel runner can pickle it."""
    name, sched, seed = cell
    return run_app(name, sched, seed=seed)


def run(quick: bool = True, seed: int = 1,
        jobs: int | None = None) -> ExperimentResult:
    """Run this experiment and return its result (see module doc).

    ``jobs`` fans the (app, scheduler) cells out to worker processes;
    the rows are identical to a serial run.
    """
    result = ExperimentResult("fig5", CLAIM)
    apps = QUICK_APPS if quick else list(FIGURE5_APPS)
    cells = [(name, sched, seed)
             for name in apps for sched in ("cfs", "ule")]
    outputs = cell_map(_run_cell, cells, jobs=jobs)
    by_cell = dict(zip(cells, outputs))
    diffs = []
    extras = {}
    for name in apps:
        cfs = by_cell[(name, "cfs", seed)]
        ule = by_cell[(name, "ule", seed)]
        diff = percent_diff(ule["perf"], cfs["perf"])
        diffs.append(diff)
        result.row(app=name, perf_cfs=round(cfs["perf"], 4),
                   perf_ule=round(ule["perf"], 4),
                   diff_pct=round(diff, 1))
        if name == "Apache":
            extras["ab_preemptions_cfs"] = cfs["ab_preemptions"]
            extras["ab_preemptions_ule"] = ule["ab_preemptions"]
    average = sum(diffs) / len(diffs)
    result.data["average_diff_pct"] = average
    result.data["diff_by_app"] = {r["app"]: r["diff_pct"]
                                  for r in result.rows}
    result.data.update(extras)

    chart = render_bar_chart([r["app"] for r in result.rows],
                             [r["diff_pct"] for r in result.rows],
                             title="Fig. 5: ULE perf vs CFS, one core "
                                   "(positive = ULE faster)")
    lines = [chart, "",
             f"average difference: {average:+.1f}% "
             f"(paper: +1.5% for ULE)"]
    if extras:
        lines.append(
            f"apache: ab preempted {extras['ab_preemptions_cfs']:.0f} "
            f"times on CFS vs {extras['ab_preemptions_ule']:.0f} on ULE "
            f"(paper: 2 million vs never)")
    result.text = "\n".join(lines)
    return result
