"""Fig. 6 — periodic load balancing: 512 pinned spinners released.

512 spinning threads are pinned to core 0; a taskset unpins them and
the load balancer takes over.  The paper's observations:

* **ULE**: idle cores each steal one thread immediately (so core 0
  drops to 481 = 512 - 31), then core 0's periodic balancer migrates
  roughly *one thread per invocation* (every 0.5-1.5 s) — hundreds of
  invocations and hundreds of seconds to reach balance.
* **CFS**: hundreds of threads move within the first fraction of a
  second (up to 32 per balancing pass), but CFS *never* reaches a
  perfect balance: across NUMA nodes imbalances below 25 % are
  tolerated, so some cores settle at ~18 threads while others keep 15.
"""

from __future__ import annotations

from ..analysis.convergence import (balance_predicate, current_counts,
                                    final_spread, time_to_balance)
from ..analysis.report import render_table
from ..core.clock import msec, sec, to_sec
from ..tracing.samplers import sample_threads_per_core
from ..tracing.timeline import heatmap
from ..workloads import SpinnerWorkload
from .base import ExperimentResult, make_engine
from .parallel import cell_map

CLAIM = ("CFS converges in under a second but tolerates a ~25% NUMA "
         "imbalance forever; ULE converges one migration per balancer "
         "invocation — slow but eventually perfect")

NCPUS = 32
UNPIN_AT_NS = sec(2)


def run_release(sched: str, nthreads: int, seed: int = 1,
                timeout_ns: int = sec(600),
                sample_ns: int = msec(250)):
    """Pin ``nthreads`` spinners to core 0, release them, and run
    until balanced (tolerance 1) or ``timeout_ns``."""
    engine = make_engine(sched, ncpus=NCPUS, seed=seed)
    spinners = SpinnerWorkload(count=nthreads, pin_cpu=0,
                               unpin_at=UNPIN_AT_NS)
    spinners.launch(engine, at=0)
    sample_threads_per_core(engine, sample_ns)

    balanced = balance_predicate(tolerance=1)

    def stop(eng):
        return eng.now > UNPIN_AT_NS + sample_ns and balanced(eng)

    reason = engine.run(until=timeout_ns, stop_when=stop,
                        check_interval=128)
    return engine, spinners, reason


def _run_cell(cell):
    """One (scheduler, nthreads, seed, timeout) release simulation;
    module-level and returning plain data (row dict, data entries,
    rendered section) so the parallel runner can pickle it — the
    engine never leaves the worker."""
    sched, nthreads, seed, timeout_ns = cell
    engine, spinners, reason = run_release(
        sched, nthreads, seed=seed, timeout_ns=timeout_ns)
    counts = current_counts(engine)
    ttb = time_to_balance(engine.metrics, NCPUS,
                          start_ns=UNPIN_AT_NS, tolerance=1)
    if ttb is None and max(counts) - min(counts) <= 1:
        # balanced between two samples, just before the stop
        ttb = engine.now - UNPIN_AT_NS
    ttb4 = time_to_balance(engine.metrics, NCPUS,
                           start_ns=UNPIN_AT_NS, tolerance=4)
    spread = max(counts) - min(counts)
    migrations = engine.metrics.counter("engine.migrations")
    invocations = engine.metrics.counter("ule.balance_invocations")
    steals = engine.metrics.counter("ule.idle_steals")
    from ..tracing.digest import schedule_digest
    row = dict(sched=sched,
               threads=nthreads,
               digest=schedule_digest(engine),
               time_to_balance_s=(round(to_sec(ttb), 2)
                                  if ttb is not None else None),
               time_to_rough_balance_s=(round(to_sec(ttb4), 2)
                                        if ttb4 is not None else None),
               final_spread=spread,
               max_per_core=max(counts), min_per_core=min(counts),
               migrations=int(migrations),
               balancer_invocations=int(invocations),
               idle_steals=int(steals))
    data = {f"{sched}_counts": counts,
            f"{sched}_ttb_ns": ttb,
            f"{sched}_spread": spread}
    section = (
        f"--- {sched.upper()} ({nthreads} spinners, unpinned at "
        f"{to_sec(UNPIN_AT_NS):.1f}s; run ended: {reason}) ---\n"
        + heatmap(engine.metrics, NCPUS,
                  vmax=max(8, 3 * nthreads // NCPUS)))
    return {"row": row, "data": data, "section": section}


def run(quick: bool = True, seed: int = 1,
        jobs: int | None = None) -> ExperimentResult:
    """Run this experiment and return its result (see module doc).

    ``jobs`` runs the ULE and CFS releases in separate worker
    processes; the merged rows are identical to a serial run.
    """
    result = ExperimentResult("fig6", CLAIM)
    nthreads = 128 if quick else 512
    # CFS will not reach tolerance-1 balance; cap its run short.
    budgets = {"ule": sec(600 if quick else 900), "cfs": sec(6)}
    cells = [(sched, nthreads, seed, budgets[sched])
             for sched in ("ule", "cfs")]
    sections = []
    for out in cell_map(_run_cell, cells, jobs=jobs):
        result.rows.append(out["row"])
        result.data.update(out["data"])
        sections.append(out["section"])

    table = render_table(
        ["sched", "t_balance(1)", "t_balance(4)", "final spread",
         "migrations", "ULE invocations", "idle steals"],
        [[r["sched"],
          r["time_to_balance_s"] if r["time_to_balance_s"] is not None
          else "never",
          r["time_to_rough_balance_s"]
          if r["time_to_rough_balance_s"] is not None else "never",
          r["final_spread"], r["migrations"],
          r["balancer_invocations"], r["idle_steals"]]
         for r in result.rows],
        title=f"Fig. 6 summary ({nthreads} spinners, 32 cores)")
    paper = ("Paper: ULE takes >450 invocations (~hundreds of seconds) "
             "at ~1 thread each; CFS moves >380 threads in 0.2 s but "
             "settles at 18-vs-15 per core across NUMA nodes")
    result.text = "\n\n".join(sections + [table, paper])
    return result
