"""Differential & metamorphic testing subsystem.

Four parts (see docs/testing.md):

* :mod:`repro.testing.fuzzer` — deterministic seeded workload
  generator with greedy shrinking;
* :mod:`repro.testing.oracles` — differential oracles run under every
  shipped scheduler with ``Engine(sanitize=True)``;
* :mod:`repro.testing.metamorphic` — scenario transforms with
  documented equivalence relations;
* :mod:`repro.testing.golden` — golden-trace digest store under
  ``tests/golden/``.

CLI: ``python -m repro.testing fuzz --seeds 25 --smoke`` and
``python -m repro.testing golden record|check``.
"""

from .campaign import SeedResult, fuzz_campaign, run_seed
from .fuzzer import (FuzzThread, Scenario, behavior_from_plan,
                     build_engine, generate_scenario, run_scenario,
                     shrink)
from .golden import GOLDEN_FILE
from .golden import check as golden_check
from .golden import record as golden_record
from .metamorphic import (check_core_renumbering, check_nice_permutation,
                          check_tickless_equivalence, check_time_scaling,
                          contention_scenario, llc_preserving_permutations,
                          transform_permute_nice, transform_renumber_cores,
                          transform_scale_time)
from .oracles import (ALL_SCHEDULERS, DEFAULT_SCHEDULERS, ZOO_SCHEDULERS,
                      OracleFailure, check_scenario, run_with_oracles,
                      scenario_fails)

__all__ = [
    "FuzzThread", "Scenario", "behavior_from_plan", "build_engine",
    "generate_scenario", "run_scenario", "shrink",
    "DEFAULT_SCHEDULERS", "ZOO_SCHEDULERS", "ALL_SCHEDULERS",
    "OracleFailure", "check_scenario",
    "run_with_oracles", "scenario_fails",
    "check_core_renumbering", "check_nice_permutation",
    "check_tickless_equivalence", "check_time_scaling",
    "contention_scenario", "llc_preserving_permutations",
    "transform_permute_nice", "transform_renumber_cores",
    "transform_scale_time",
    "SeedResult", "fuzz_campaign", "run_seed",
    "GOLDEN_FILE", "golden_check", "golden_record",
]
