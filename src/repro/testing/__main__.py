"""CLI for the testing subsystem.

::

    python -m repro.testing fuzz --seeds 25 --smoke
    python -m repro.testing fuzz --seed-range 100:200 --jobs 0
    python -m repro.testing golden record
    python -m repro.testing golden check

Exit status: 0 = all green, 1 = an oracle failed / digests diverged.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import fuzz_campaign
from .golden import GOLDEN_FILE, check, record
from .oracles import DEFAULT_SCHEDULERS


def _parse_seed_range(text: str) -> range:
    lo, _, hi = text.partition(":")
    return range(int(lo), int(hi))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="workload fuzzer, differential oracles, and the "
                    "golden-trace store")
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser(
        "fuzz", help="run fuzz scenarios through the differential "
                     "oracles under every scheduler")
    group = fuzz.add_mutually_exclusive_group()
    group.add_argument("--seeds", type=int, default=25,
                       help="number of seeds, starting at 0 "
                            "(default: 25)")
    group.add_argument("--seed-range", type=_parse_seed_range,
                       metavar="LO:HI",
                       help="explicit half-open seed range")
    fuzz.add_argument("--smoke", action="store_true",
                      help="smaller scenarios, no metamorphic pass "
                           "(the bounded CI budget)")
    fuzz.add_argument("--chaos", action="store_true",
                      help="pair every scenario with a deterministic "
                           "random fault plan (hotplug, jitter, IPI "
                           "loss, stalls; see docs/fault-injection.md)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report failures without minimising them")
    fuzz.add_argument("--jobs", type=int, default=None,
                      help="fan seeds out to N worker processes "
                           "(0 = all cores); results are identical "
                           "to a serial run")
    fuzz.add_argument("--schedulers",
                      default=",".join(DEFAULT_SCHEDULERS),
                      help="comma-separated scheduler list "
                           f"(default: {','.join(DEFAULT_SCHEDULERS)})")

    golden = sub.add_parser(
        "golden", help="golden-trace digest store (tests/golden/)")
    golden.add_argument("action", choices=("record", "check"))
    golden.add_argument("--jobs", type=int, default=None,
                        help="compute cells in N worker processes")

    args = parser.parse_args(argv)

    if args.command == "fuzz":
        seeds = (args.seed_range if args.seed_range is not None
                 else range(args.seeds))
        scheds = tuple(s.strip() for s in args.schedulers.split(",")
                       if s.strip())
        results = fuzz_campaign(seeds, smoke=args.smoke,
                                do_shrink=not args.no_shrink,
                                scheds=scheds, chaos=args.chaos,
                                jobs=args.jobs)
        failures = [r for r in results if not r.ok]
        print(f"fuzz: {len(results)} seeds under "
              f"{'/'.join(scheds)}"
              f"{' (chaos)' if args.chaos else ''}: "
              f"{len(results) - len(failures)} ok, "
              f"{len(failures)} failing")
        for r in failures:
            print(f"\nseed {r.seed}: [{r.oracle}] under {r.sched}")
            print(r.error)
            if r.shrunk:
                print("minimal reproducer:")
                print(r.shrunk)
        return 1 if failures else 0

    if args.action == "record":
        digests = record(jobs=args.jobs)
        print(f"golden: recorded {len(digests)} cell digests to "
              f"{GOLDEN_FILE}")
        return 0
    problems = check(jobs=args.jobs)
    if problems:
        print("golden: digests diverged from the recorded store "
              "(re-record with 'make golden' if intended):")
        for line in problems:
            print(f"  {line}")
        return 1
    print("golden: all cell digests match the recorded store")
    return 0


if __name__ == "__main__":
    sys.exit(main())
