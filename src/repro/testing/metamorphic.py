"""Metamorphic transforms with documented equivalence relations.

Each transform maps a scenario to a related scenario plus a relation
the two schedules must satisfy.  The relations are chosen to be
*provable from the engine's contracts*, not hopeful approximations:

* **tickless on/off** — the NO_HZ fast path is bit-identical to
  always-tick (PR 1's contract), so the canonical schedule digests are
  **equal**;
* **uniform time scaling** by an integer ``k`` — every run/sleep
  duration and spawn time multiplied by ``k``.  A completing scenario
  still completes, and each thread's total runtime and sleeptime scale
  **exactly** by ``k`` (the engine accounts requested work exactly;
  see the ``requested-work`` oracle);
* **core renumbering / LLC-group permutation** — CPU indices permuted
  by an LLC-structure-preserving permutation, affinities rewritten
  through it.  Per-thread outcomes are unchanged, and for *fully
  pinned* scenarios (every thread on a singleton CPU) the per-core
  busy-time vector is **exactly permuted** — pinning removes all
  placement freedom, so the schedule follows the threads to their
  renamed cores.  For unpinned threads only the weaker relation holds
  (placement tie-breaks prefer low indices, which is not
  permutation-equivariant), and that is what we assert;
* **nice-vector permutation** — nice values rotated among threads
  that are otherwise interchangeable (same plan, spawn time, affinity
  and app label).  Under contention the mapping *nice value → total
  runtime* is preserved as a multiset up to one timeslice per thread:
  the schedules are isomorphic under relabelling the interchangeable
  threads, except where equal-vruntime/equal-priority ties are broken
  by thread id, which the relabelling flips — hence the one-slice
  tolerance rather than exact equality.

Violations raise :class:`~repro.testing.oracles.OracleFailure` so the
fuzzer treats metamorphic breaks exactly like differential breaks.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.clock import msec
from ..tracing.digest import schedule_digest
from .fuzzer import FuzzThread, Scenario, run_scenario
from .oracles import OracleFailure

#: tolerance for the nice-permutation relation: one CFS latency period
#: (the largest timeslice any shipped scheduler grants)
NICE_PERM_TOLERANCE_NS = msec(48)


# ----------------------------------------------------------------------
# transforms (scenario -> scenario)
# ----------------------------------------------------------------------

def transform_scale_time(scenario: Scenario, k: int) -> Scenario:
    """Multiply every duration and spawn time by integer ``k``."""
    threads = tuple(
        replace(t, spawn_at_ms=t.spawn_at_ms * k,
                plan=tuple((kind, ms * k) for kind, ms in t.plan))
        for t in scenario.threads)
    return replace(scenario, threads=threads,
                   until_ms=scenario.until_ms * k)


def transform_renumber_cores(scenario: Scenario,
                             perm: tuple[int, ...]) -> Scenario:
    """Rewrite every affinity set through ``perm`` (``perm[c]`` is the
    new index of old core ``c``)."""
    if sorted(perm) != list(range(scenario.ncpus)):
        raise ValueError(f"not a permutation of 0..{scenario.ncpus - 1}: "
                         f"{perm}")
    threads = tuple(
        replace(t, affinity=(tuple(sorted(perm[c] for c in t.affinity))
                             if t.affinity is not None else None))
        for t in scenario.threads)
    return replace(scenario, threads=threads)


def llc_preserving_permutations(scenario: Scenario) -> list[tuple[int, ...]]:
    """Non-identity permutations that map LLC groups onto LLC groups:
    a within-group swap of the first two cores sharing an LLC, and a
    swap of the first two whole LLC groups (when they exist)."""
    n = scenario.ncpus
    per_llc = scenario.cpus_per_llc or n
    perms = []
    if per_llc >= 2:
        p = list(range(n))
        p[0], p[1] = p[1], p[0]
        perms.append(tuple(p))
    if n // per_llc >= 2:
        p = list(range(n))
        for i in range(per_llc):  # swap group 0 with group 1
            p[i], p[per_llc + i] = p[per_llc + i], p[i]
        perms.append(tuple(p))
    return perms


def transform_permute_nice(scenario: Scenario) -> Scenario:
    """Rotate nice values among interchangeable threads (identical
    plan, spawn time, affinity and app).  Identity when no group has
    two members."""
    groups: dict[tuple, list[int]] = {}
    for i, t in enumerate(scenario.threads):
        groups.setdefault((t.plan, t.spawn_at_ms, t.affinity, t.app),
                          []).append(i)
    threads = list(scenario.threads)
    for members in groups.values():
        if len(members) < 2:
            continue
        nices = [threads[i].nice for i in members]
        rotated = nices[1:] + nices[:1]
        for i, nice in zip(members, rotated):
            threads[i] = replace(threads[i], nice=nice)
    return replace(scenario, threads=tuple(threads))


# ----------------------------------------------------------------------
# relation checks (raise OracleFailure)
# ----------------------------------------------------------------------

def check_tickless_equivalence(scenario: Scenario, sched: str) -> None:
    """NO_HZ on vs off: canonical digests must be equal."""
    on, _, _ = run_scenario(scenario, sched, tickless=True)
    off, _, _ = run_scenario(scenario, sched, tickless=False)
    da, db = schedule_digest(on), schedule_digest(off)
    if da != db:
        raise OracleFailure("metamorphic-tickless", sched,
                            f"digest {da} (tickless) != {db} (ticks)",
                            scenario)


def check_time_scaling(scenario: Scenario, sched: str,
                       k: int = 3) -> None:
    """Runtime and sleeptime must scale exactly by ``k``."""
    _, base, r0 = run_scenario(scenario, sched)
    _, scaled, r1 = run_scenario(transform_scale_time(scenario, k),
                                 sched)
    if r0 != "all-exited" or r1 != "all-exited":
        raise OracleFailure("metamorphic-scale", sched,
                            f"completion broken by x{k} scaling: "
                            f"{r0} vs {r1}", scenario)
    for b, s in zip(base, scaled):
        if (s.total_runtime != k * b.total_runtime
                or s.total_sleeptime != k * b.total_sleeptime):
            raise OracleFailure(
                "metamorphic-scale", sched,
                f"{b.name}: x{k} scaling gave runtime "
                f"{b.total_runtime} -> {s.total_runtime}, sleeptime "
                f"{b.total_sleeptime} -> {s.total_sleeptime}", scenario)


def check_core_renumbering(scenario: Scenario, sched: str,
                           perm: tuple[int, ...]) -> None:
    """Per-thread outcomes unchanged; for fully pinned scenarios the
    per-core busy vector is exactly permuted."""
    base_engine, base, r0 = run_scenario(scenario, sched)
    renumbered = transform_renumber_cores(scenario, perm)
    perm_engine, permuted, r1 = run_scenario(renumbered, sched)
    if r0 != r1:
        raise OracleFailure("metamorphic-renumber", sched,
                            f"completion broken by renumbering: "
                            f"{r0} vs {r1}", scenario)
    for b, p in zip(base, permuted):
        if (b.total_runtime, b.total_sleeptime) != \
                (p.total_runtime, p.total_sleeptime):
            raise OracleFailure(
                "metamorphic-renumber", sched,
                f"{b.name}: outcome changed under core renumbering: "
                f"({b.total_runtime}, {b.total_sleeptime}) vs "
                f"({p.total_runtime}, {p.total_sleeptime})", scenario)
    fully_pinned = all(t.affinity is not None and len(t.affinity) == 1
                       for t in scenario.threads)
    if fully_pinned:
        for core in base_engine.machine.cores:
            core.account_to_now()
        for core in perm_engine.machine.cores:
            core.account_to_now()
        base_busy = [c.busy_ns for c in base_engine.machine.cores]
        perm_busy = [c.busy_ns for c in perm_engine.machine.cores]
        expected = [0] * len(base_busy)
        for c, busy in enumerate(base_busy):
            expected[perm[c]] = busy
        if perm_busy != expected:
            raise OracleFailure(
                "metamorphic-renumber", sched,
                f"pinned scenario: busy vector {perm_busy} != "
                f"permuted baseline {expected}", scenario)


def check_nice_permutation(scenario: Scenario, sched: str,
                           deadline_ms: int = 2000) -> None:
    """Under contention, the nice -> runtime mapping is preserved (as
    a multiset) up to one timeslice per thread."""
    permuted = transform_permute_nice(scenario)
    if permuted == scenario:
        return  # no interchangeable threads: identity transform

    def nice_runtimes(s: Scenario) -> list[tuple[int, int]]:
        _, threads, _ = run_scenario(
            replace(s, until_ms=deadline_ms), sched)
        return sorted((t.nice, t.total_runtime) for t in threads)

    base = nice_runtimes(scenario)
    after = nice_runtimes(permuted)
    for (n0, r0), (n1, r1) in zip(base, after):
        if n0 != n1 or abs(r0 - r1) > NICE_PERM_TOLERANCE_NS:
            raise OracleFailure(
                "metamorphic-nice", sched,
                f"nice->runtime mapping moved: {base} vs {after}",
                scenario)


def contention_scenario(seed: int, nices: tuple[int, ...],
                        work_ms: int = 4000) -> Scenario:
    """A scenario built for the nice-permutation relation: identical
    always-running threads on one core, differing only in nice, run to
    a deadline shorter than the total requested work."""
    threads = tuple(
        FuzzThread(name=f"n{i}", nice=nice,
                   plan=(("run", work_ms),))
        for i, nice in enumerate(nices))
    return Scenario(seed=seed, ncpus=1, threads=threads,
                    until_ms=work_ms // 2)
