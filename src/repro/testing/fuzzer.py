"""Deterministic workload fuzzer.

A *scenario* is a plain-data description of a complete simulation
input: a symmetric topology plus a set of threads, each with a spawn
time, nice value, optional CPU affinity, optional application label,
and a finite plan of run/sleep/yield steps.  Scenarios are generated
from a single integer seed with an explicit ``random.Random`` stream,
so the same seed always produces byte-identical scenarios on any host
— no global RNG, no ambient state.

The module also implements **greedy shrinking**: given a failing
scenario and a failure predicate, :func:`shrink` repeatedly applies
the simplest reduction passes (drop a thread, drop a step, halve
durations, shrink the machine, widen affinity, neutralise nice) and
keeps every reduction that still fails, until a fixpoint.  The passes
are tried in a fixed order, so shrinking is deterministic too: the
same failing seed always shrinks to the byte-identical minimal
scenario.

Scenarios deliberately exclude forks and synchronisation: each thread
owns its plan, so the differential oracles can assert *per-thread
runtime == requested work* exactly (see
:mod:`repro.testing.oracles`).  Fork/sync coverage lives in the
hand-written suites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..core import Engine, Run, Sleep, ThreadSpec, Yield
from ..core.clock import msec
from ..core.topology import smp
from ..sched import scheduler_factory

#: step kinds a plan may contain; ``yield`` has no duration
KINDS = ("run", "sleep", "yield")

#: generator bounds (smoke mode halves the thread/step counts)
MAX_THREADS = 8
MAX_STEPS = 8
MAX_STEP_MS = 20
MAX_SPAWN_MS = 50
NCPU_CHOICES = (1, 2, 4, 8)


@dataclass(frozen=True)
class FuzzThread:
    """One thread of a scenario (plain data, hashable, picklable)."""

    name: str
    nice: int = 0
    spawn_at_ms: int = 0
    affinity: tuple[int, ...] | None = None
    app: str | None = None
    #: finite plan: ("run"|"sleep", ms) or ("yield", 0)
    plan: tuple[tuple[str, int], ...] = ()

    def requested_run_ns(self) -> int:
        return sum(msec(ms) for kind, ms in self.plan if kind == "run")

    def requested_sleep_ns(self) -> int:
        return sum(msec(ms) for kind, ms in self.plan
                   if kind == "sleep")


@dataclass(frozen=True)
class Scenario:
    """A complete, self-describing simulation input."""

    seed: int
    ncpus: int = 1
    cpus_per_llc: int | None = None
    threads: tuple[FuzzThread, ...] = ()
    #: engine deadline; generous — the oracles require "all-exited"
    until_ms: int = 60_000

    def describe(self) -> str:
        lines = [f"Scenario(seed={self.seed}, ncpus={self.ncpus}, "
                 f"cpus_per_llc={self.cpus_per_llc}, "
                 f"until_ms={self.until_ms})"]
        for t in self.threads:
            lines.append(
                f"  {t.name}: nice={t.nice} spawn@{t.spawn_at_ms}ms "
                f"affinity={t.affinity} app={t.app} plan={list(t.plan)}")
        return "\n".join(lines)


def behavior_from_plan(plan):
    """Build a behaviour generator from ('run'|'sleep'|'yield', ms)
    steps (the shared test-helper shape, promoted into the package)."""
    def behavior(ctx):
        for kind, duration_ms in plan:
            if kind == "run":
                yield Run(msec(duration_ms))
            elif kind == "sleep":
                yield Sleep(msec(duration_ms))
            else:
                yield Yield()
    return behavior


def build_engine(scenario: Scenario, sched: str, *,
                 sanitize: bool | None = True,
                 tickless: bool | None = None,
                 faults=None,
                 event_queue=None) -> tuple[Engine, list]:
    """Instantiate ``scenario`` under ``sched``; returns (engine,
    threads in scenario order).  Threads are spawned via the engine's
    delayed-spawn path so spawn order is part of the scenario.
    ``faults`` injects a :class:`~repro.faults.plan.FaultPlan` — the
    chaos mode of the fuzz campaign; ``event_queue`` selects the
    event-queue implementation (``"heap"``/``"wheel"``) for the
    heap-vs-wheel differential tests."""
    topo = smp(scenario.ncpus, cpus_per_llc=scenario.cpus_per_llc)
    engine = Engine(topo, scheduler_factory(sched), seed=scenario.seed,
                    sanitize=sanitize, tickless=tickless, faults=faults,
                    event_queue=event_queue)
    threads = []
    for ft in scenario.threads:
        spec = ThreadSpec(
            ft.name, behavior_from_plan(ft.plan), nice=ft.nice,
            affinity=(frozenset(ft.affinity)
                      if ft.affinity is not None else None),
            app=ft.app)
        threads.append(engine.spawn(spec, at=msec(ft.spawn_at_ms)))
    return engine, threads


def run_scenario(scenario: Scenario, sched: str, *,
                 sanitize: bool | None = True,
                 tickless: bool | None = None,
                 faults=None,
                 event_queue=None) -> tuple[Engine, list, str]:
    """Build and run ``scenario`` to its deadline; returns
    (engine, threads, stop reason)."""
    engine, threads = build_engine(scenario, sched, sanitize=sanitize,
                                   tickless=tickless, faults=faults,
                                   event_queue=event_queue)
    reason = engine.run(until=msec(scenario.until_ms))
    return engine, threads, reason


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------

def generate_scenario(seed: int, *, smoke: bool = False) -> Scenario:
    """The scenario for ``seed`` — a pure function of its arguments."""
    # a *string* seed goes through the stable sha512 path — unlike
    # hashing a tuple, it does not depend on PYTHONHASHSEED, so worker
    # processes generate identical scenarios
    rng = random.Random(f"repro.testing.fuzzer:{seed}")
    ncpus = rng.choice(NCPU_CHOICES[:3] if smoke else NCPU_CHOICES)
    llc_choices = [d for d in (1, 2, 4, 8) if d <= ncpus
                   and ncpus % d == 0]
    cpus_per_llc = rng.choice([None] + llc_choices)
    max_threads = MAX_THREADS // 2 if smoke else MAX_THREADS
    max_steps = MAX_STEPS // 2 if smoke else MAX_STEPS
    nthreads = rng.randint(1, max_threads)
    threads = []
    for i in range(nthreads):
        steps = []
        for _ in range(rng.randint(1, max_steps)):
            kind = rng.choice(KINDS)
            steps.append((kind, 0 if kind == "yield"
                          else rng.randint(1, MAX_STEP_MS)))
        affinity = None
        if ncpus > 1 and rng.random() < 0.25:
            size = rng.randint(1, ncpus)
            affinity = tuple(sorted(rng.sample(range(ncpus), size)))
        app = rng.choice([None, "alpha", "beta"])
        threads.append(FuzzThread(
            name=f"f{i}",
            nice=rng.choice([-20, -10, -5, 0, 0, 0, 5, 10, 19]),
            spawn_at_ms=rng.randint(0, MAX_SPAWN_MS),
            affinity=affinity,
            app=app,
            plan=tuple(steps)))
    return Scenario(seed=seed, ncpus=ncpus, cpus_per_llc=cpus_per_llc,
                    threads=tuple(threads))


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def _valid(scenario: Scenario) -> bool:
    if not scenario.threads:
        return False
    for t in scenario.threads:
        if t.affinity is not None:
            if not t.affinity:
                return False
            if max(t.affinity) >= scenario.ncpus:
                return False
    if scenario.cpus_per_llc is not None and (
            scenario.cpus_per_llc > scenario.ncpus
            or scenario.ncpus % scenario.cpus_per_llc):
        return False
    return True


def _candidates(scenario: Scenario):
    """Yield simpler variants of ``scenario``, simplest-first within
    each pass.  Deterministic order — no randomness in shrinking."""
    ts = scenario.threads
    # pass 1: drop whole threads
    for i in range(len(ts)):
        yield replace(scenario, threads=ts[:i] + ts[i + 1:])
    # pass 2: drop single steps
    for i, t in enumerate(ts):
        for j in range(len(t.plan)):
            nt = replace(t, plan=t.plan[:j] + t.plan[j + 1:])
            if nt.plan:
                yield replace(scenario,
                              threads=ts[:i] + (nt,) + ts[i + 1:])
    # pass 3: halve durations
    for i, t in enumerate(ts):
        if any(ms > 1 for _, ms in t.plan):
            nt = replace(t, plan=tuple(
                (k, ms if k == "yield" else max(1, ms // 2))
                for k, ms in t.plan))
            yield replace(scenario, threads=ts[:i] + (nt,) + ts[i + 1:])
    # pass 4: shrink the machine
    for ncpus in (n for n in NCPU_CHOICES if n < scenario.ncpus):
        nts = []
        for t in ts:
            if t.affinity is not None:
                aff = tuple(c for c in t.affinity if c < ncpus)
                t = replace(t, affinity=aff or None)
            nts.append(t)
        yield replace(scenario, ncpus=ncpus, cpus_per_llc=None,
                      threads=tuple(nts))
    # pass 5: simplify per-thread attributes
    for i, t in enumerate(ts):
        for nt in (replace(t, affinity=None) if t.affinity else None,
                   replace(t, nice=0) if t.nice else None,
                   replace(t, app=None) if t.app else None,
                   (replace(t, spawn_at_ms=0)
                    if t.spawn_at_ms else None)):
            if nt is not None:
                yield replace(scenario,
                              threads=ts[:i] + (nt,) + ts[i + 1:])
    # pass 6: flatten the LLC split
    if scenario.cpus_per_llc is not None:
        yield replace(scenario, cpus_per_llc=None)


def shrink(scenario: Scenario, still_fails, *,
           max_attempts: int = 2000) -> Scenario:
    """Greedily minimise ``scenario`` while ``still_fails(candidate)``
    holds.  Restarts the candidate walk after every accepted
    reduction, so the result is the first fixpoint of the ordered
    passes — byte-identical for identical inputs."""
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in _candidates(scenario):
            attempts += 1
            if attempts >= max_attempts:
                break
            if not _valid(cand):
                continue
            try:
                failing = still_fails(cand)
            except Exception:
                # a reduction that crashes the harness itself is not a
                # valid minimisation step
                failing = False
            if failing:
                scenario = cand
                improved = True
                break
    return scenario
