"""Fuzz campaigns: drive many seeds through the differential oracles,
optionally in parallel, and shrink the first failure to a minimal
reproducer.

A campaign is a list of independent (seed, options) cells, so it fans
out through :func:`repro.experiments.parallel.cell_map` exactly like
the figure sweeps do — results come back in seed order and are
identical serial or parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.clock import msec
from ..experiments.parallel import cell_map
from ..faults import random_plan
from .fuzzer import Scenario, generate_scenario, shrink
from .metamorphic import (check_nice_permutation, check_tickless_equivalence,
                          check_time_scaling, contention_scenario)
from .oracles import (DEFAULT_SCHEDULERS, OracleFailure, check_scenario,
                      scenario_fails)


@dataclass(frozen=True)
class SeedResult:
    """Outcome of one fuzz seed (plain data, picklable)."""

    seed: int
    ok: bool
    oracle: str | None = None
    sched: str | None = None
    error: str | None = None
    #: the minimal failing scenario (description), when shrinking ran
    shrunk: str | None = None


def chaos_plan(scenario: Scenario):
    """The fault plan the chaos mode pairs with ``scenario`` — a pure
    function of the scenario, so a shrunk reproducer regenerates a
    matching plan (hotplug bounded by the shrunk machine, stalls
    targeting surviving thread names).  CPU 0 is always protected, so
    at least one core stays online."""
    horizon_ms = max((t.spawn_at_ms + sum(ms for _, ms in t.plan)
                      for t in scenario.threads), default=1)
    return random_plan(scenario.seed, scenario.ncpus,
                       msec(2 * horizon_ms),
                       thread_names=[t.name for t in scenario.threads])


def run_seed(cell) -> SeedResult:
    """One campaign cell: generate, check, shrink on failure.
    Module-level so ``cell_map`` can pickle it."""
    seed, smoke, do_shrink, scheds, chaos = cell
    scenario = generate_scenario(seed, smoke=smoke)
    faults = chaos_plan(scenario) if chaos else None
    try:
        check_scenario(scenario, scheds, faults=faults)
        if not smoke and not chaos:
            # metamorphic relations ride along on the same scenario,
            # rotating the scheduler they sample by seed.  Chaos mode
            # skips them: the fault RNG is consumed in event order, so
            # a tickless run legitimately draws different jitter than
            # an always-tick run and the equivalence does not hold.
            sched = scheds[seed % len(scheds)]
            check_tickless_equivalence(scenario, sched)
            check_time_scaling(scenario, sched)
        return SeedResult(seed=seed, ok=True)
    except OracleFailure as exc:
        shrunk = None
        if do_shrink:
            if chaos:
                def still_fails(s):
                    return scenario_fails(s, scheds,
                                          faults=chaos_plan(s))
            else:
                def still_fails(s):
                    return scenario_fails(s, scheds)
            minimal = shrink(scenario, still_fails)
            shrunk = minimal.describe()
        return SeedResult(seed=seed, ok=False, oracle=exc.oracle,
                          sched=exc.sched, error=str(exc),
                          shrunk=shrunk)


def fuzz_campaign(seeds, *, smoke: bool = False, do_shrink: bool = True,
                  scheds=DEFAULT_SCHEDULERS, chaos: bool = False,
                  jobs: int | None = None) -> list[SeedResult]:
    """Run every seed through the oracles; returns results in seed
    order (independent of ``jobs``).  ``chaos=True`` pairs each
    scenario with its deterministic random fault plan."""
    cells = [(seed, smoke, do_shrink, tuple(scheds), chaos)
             for seed in seeds]
    return cell_map(run_seed, cells, jobs=jobs)


__all__ = ["SeedResult", "run_seed", "fuzz_campaign",
           "check_nice_permutation", "contention_scenario", "Scenario"]
