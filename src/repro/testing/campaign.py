"""Fuzz campaigns: drive many seeds through the differential oracles,
optionally in parallel, and shrink the first failure to a minimal
reproducer.

A campaign is a list of independent (seed, options) cells, so it fans
out through :func:`repro.experiments.parallel.cell_map` exactly like
the figure sweeps do — results come back in seed order and are
identical serial or parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..experiments.parallel import cell_map
from .fuzzer import Scenario, generate_scenario, shrink
from .metamorphic import (check_nice_permutation, check_tickless_equivalence,
                          check_time_scaling, contention_scenario)
from .oracles import (DEFAULT_SCHEDULERS, OracleFailure, check_scenario,
                      scenario_fails)


@dataclass(frozen=True)
class SeedResult:
    """Outcome of one fuzz seed (plain data, picklable)."""

    seed: int
    ok: bool
    oracle: str | None = None
    sched: str | None = None
    error: str | None = None
    #: the minimal failing scenario (description), when shrinking ran
    shrunk: str | None = None


def run_seed(cell) -> SeedResult:
    """One campaign cell: generate, check, shrink on failure.
    Module-level so ``cell_map`` can pickle it."""
    seed, smoke, do_shrink, scheds = cell
    scenario = generate_scenario(seed, smoke=smoke)
    try:
        check_scenario(scenario, scheds)
        if not smoke:
            # metamorphic relations ride along on the same scenario,
            # rotating the scheduler they sample by seed
            sched = scheds[seed % len(scheds)]
            check_tickless_equivalence(scenario, sched)
            check_time_scaling(scenario, sched)
        return SeedResult(seed=seed, ok=True)
    except OracleFailure as exc:
        shrunk = None
        if do_shrink:
            minimal = shrink(scenario,
                             lambda s: scenario_fails(s, scheds))
            shrunk = minimal.describe()
        return SeedResult(seed=seed, ok=False, oracle=exc.oracle,
                          sched=exc.sched, error=str(exc),
                          shrunk=shrunk)


def fuzz_campaign(seeds, *, smoke: bool = False, do_shrink: bool = True,
                  scheds=DEFAULT_SCHEDULERS,
                  jobs: int | None = None) -> list[SeedResult]:
    """Run every seed through the oracles; returns results in seed
    order (independent of ``jobs``)."""
    cells = [(seed, smoke, do_shrink, tuple(scheds)) for seed in seeds]
    return cell_map(run_seed, cells, jobs=jobs)


__all__ = ["SeedResult", "run_seed", "fuzz_campaign",
           "check_nice_permutation", "contention_scenario", "Scenario"]
