"""Golden-trace regression store.

A *golden cell* is one (experiment, scheduler) simulation whose
canonical schedule digest (:mod:`repro.tracing.digest`) is pinned in
``tests/golden/digests.json``.  Any behavioural change to the engine
or a scheduler — intended or not — flips the digest and fails the
tier-1 gate; intended changes are re-recorded with ``make golden``
(mirroring the ``bench-baseline`` flow for performance).

The cells cover the paper's three experiment families at smoke scale:

* ``fig1/<sched>``  — the fibo+sysbench interactivity scenario;
* ``fig5/<app>/<sched>`` — single-core app cells (the two cheapest
  quick apps);
* ``fig6/<sched>`` — the 32-spinner pin/release load-balancing cell,
  truncated to a few simulated seconds.

Cells are module-level functions of their name only, so they can fan
out through :func:`repro.experiments.parallel.cell_map` — the digests
are identical serial or parallel (worker processes share no state
with the parent; the digest deliberately excludes process-global
ids).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.artifacts import atomic_write_json
from ..core.clock import sec
from ..experiments import parallel
from ..tracing.digest import schedule_digest

#: where the pinned digests live (run from the source tree, as all
#: Makefile entry points do)
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"
GOLDEN_FILE = GOLDEN_DIR / "digests.json"

#: simulated-time cap for the fig6 smoke cell: long enough to cover
#: the 2 s pinned phase plus the release transient under both
#: schedulers, short enough for the tier-1 budget
FIG6_TIMEOUT_NS = sec(4)
FIG6_NTHREADS = 32

#: two cheap quick apps: MG pins the pure single-thread engine path
#: (its digest is scheduler-independent by design), Apache pins the
#: wakeup-preemption behaviour where CFS and ULE genuinely diverge
FIG5_APPS = ("MG", "Apache")

GOLDEN_SCHEDULERS = ("cfs", "ule")

#: the policy-DSL zoo is pinned on the fig1 family only: one cell per
#: policy keeps every zoo scheduler digest-stable without growing the
#: tier-1 golden budget by the full family matrix
ZOO_GOLDEN_SCHEDULERS = ("eevdf", "bfs", "lottery", "staticprio",
                         "predictive")


def compute_cell(name: str) -> str:
    """Compute the digest for one golden cell (module-level so
    ``cell_map`` can pickle it)."""
    family, _, rest = name.partition("/")
    if family == "fig1":
        from ..experiments.fibo_sysbench import run_scenario
        outcome = run_scenario(rest, seed=1)
        return schedule_digest(outcome.engine)
    if family == "fig5":
        app, _, sched = rest.partition("/")
        from ..experiments.fig5_single_core_perf import run_app
        return run_app(app, sched, seed=1)["digest"]
    if family == "fig6":
        from ..experiments.fig6_load_balancing import run_release
        engine, _, _ = run_release(rest, FIG6_NTHREADS, seed=1,
                                   timeout_ns=FIG6_TIMEOUT_NS)
        return schedule_digest(engine)
    raise ValueError(f"unknown golden cell: {name}")


def cell_names() -> list[str]:
    names = [f"fig1/{sched}" for sched in GOLDEN_SCHEDULERS]
    names += [f"fig1/{sched}" for sched in ZOO_GOLDEN_SCHEDULERS]
    names += [f"fig5/{app}/{sched}" for app in FIG5_APPS
              for sched in GOLDEN_SCHEDULERS]
    names += [f"fig6/{sched}" for sched in GOLDEN_SCHEDULERS]
    return names


def compute_all(jobs: int | None = None,
                names: list[str] | None = None) -> dict[str, str]:
    """Digests for every golden cell.

    Honours ``REPRO_CELL_CACHE`` (see
    :mod:`repro.experiments.cellcache`): with the cache enabled a
    repeated ``make golden-check`` against unchanged sources replays
    the stored digests instead of re-simulating — safe because the
    cache key includes the code fingerprint, so any source change
    forces a real recompute.  Unset (the in-test default), every cell
    is computed fresh.
    """
    names = cell_names() if names is None else names
    from ..experiments.cellcache import cache_from_env
    digests = parallel.cell_map(compute_cell, names, jobs=jobs,
                                cache=cache_from_env())
    return dict(zip(names, digests))


def load(path: Path = GOLDEN_FILE) -> dict[str, str]:
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def record(jobs: int | None = None,
           path: Path = GOLDEN_FILE) -> dict[str, str]:
    """Re-record every golden digest (``make golden``)."""
    digests = compute_all(jobs=jobs)
    atomic_write_json(path, digests)
    return digests


def check(jobs: int | None = None,
          path: Path = GOLDEN_FILE) -> list[str]:
    """Compare fresh digests against the store; returns human-readable
    mismatch lines (empty = green)."""
    want = load(path)
    if not want:
        return [f"no golden store at {path}; run 'make golden'"]
    got = compute_all(jobs=jobs, names=sorted(want))
    problems = []
    for name in sorted(want):
        if got[name] != want[name]:
            problems.append(f"{name}: digest {got[name]} != recorded "
                            f"{want[name]}")
    return problems
