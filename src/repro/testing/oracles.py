"""Differential oracles: scheduler-independent invariants plus
per-scheduler fairness bounds, checked on the *same* scenario under
every shipped scheduler.

The oracle catalogue (see docs/testing.md):

Scheduler-independent (any correct scheduler must satisfy these):

* ``completion`` — a finite scenario reaches ``all-exited`` before its
  generous deadline;
* ``requested-work`` — each thread's ``total_runtime`` equals exactly
  the run time its plan requested, and ``total_sleeptime`` the sleep
  time (the engine's accounting is exact, so these are equalities, not
  bounds);
* ``work-conservation`` — total core busy time equals total executed
  thread runtime;
* ``no-lost-threads`` — at arbitrary checkpoints, every runnable
  thread is on exactly one runqueue and blocked/exited threads are on
  none; at the end, no thread is left behind, none was duplicated;
* ``cross-scheduler`` — the per-thread (runtime, sleeptime) outcome
  vector is identical across fifo/cfs/ule/linux (it is pinned to the
  plan, so divergence means one scheduler lost or invented work).

Scheduler-specific fairness bounds:

* ``cfs-lag-bound`` — within any single CfsRq, no queued entity's
  vruntime lags ``min_vruntime`` by more than the sleeper wake credit,
  nor leads it by more than one scheduling period (weight-scaled) plus
  tick slack;
* ``ule-classification`` — every thread's cached interactivity
  classification and priority equal a fresh recomputation from its
  sleep/run history, and the penalty stays in its documented range.

Every run is executed under ``Engine(sanitize=True)``, so the runtime
sanitizer (PR 2) and these oracles cross-check each other: a sanitizer
trip inside an oracle run is reported as an oracle failure.
"""

from __future__ import annotations

from ..cfs.core import CfsScheduler
from ..cfs.weights import calc_delta_fair
from ..core.clock import msec
from ..core.errors import SanitizerError
from ..ule.core import UleScheduler, UleThreadState
from .fuzzer import Scenario, build_engine

#: the shipped schedulers every scenario is differentially run under;
#: "linux" is the rt+fair class stack and must agree with plain cfs
#: on all scheduler-independent invariants
DEFAULT_SCHEDULERS = ("fifo", "cfs", "ule", "linux")

#: the policy-DSL scheduler zoo (docs/scheduler-zoo.md).  Every member
#: satisfies the scheduler-independent oracles above — including
#: cross-scheduler outcome identity, since per-thread outcomes are
#: pinned to the finite plans for any correct completing scheduler.
ZOO_SCHEDULERS = ("eevdf", "bfs", "lottery", "staticprio", "predictive")

#: everything a fuzz scenario can run under ("rt" is excluded: it
#: requires rt_priority-tagged threads the fuzzer does not generate)
ALL_SCHEDULERS = DEFAULT_SCHEDULERS + ZOO_SCHEDULERS

#: mid-run observation points, as fractions of the busiest thread plan
CHECKPOINTS = 6


class OracleFailure(AssertionError):
    """A differential or metamorphic oracle was violated."""

    def __init__(self, oracle: str, sched: str, message: str,
                 scenario: Scenario | None = None):
        self.oracle = oracle
        self.sched = sched
        self.scenario = scenario
        detail = f"[{oracle}] under {sched}: {message}"
        if scenario is not None:
            detail += f"\n{scenario.describe()}"
        super().__init__(detail)


def _fair_of(engine):
    """The CFS instance of ``engine``'s scheduler, if any (handles the
    "linux" class stack the same way the sanitizer does)."""
    sched = engine.scheduler
    if isinstance(sched, CfsScheduler):
        return sched
    fair = getattr(sched, "fair", None)
    return fair if isinstance(fair, CfsScheduler) else None


def _ule_of(engine):
    sched = engine.scheduler
    return sched if isinstance(sched, UleScheduler) else None


# ----------------------------------------------------------------------
# mid-run probes
# ----------------------------------------------------------------------

def check_membership(engine, threads, sched: str,
                     scenario: Scenario | None = None) -> None:
    """No lost or duplicated threads at this instant."""
    seen = {}
    for core in engine.machine.cores:
        for t in engine.scheduler.runnable_threads(core):
            if t.tid in seen:
                raise OracleFailure(
                    "no-lost-threads", sched,
                    f"{t.name} on two runqueues "
                    f"(cpu{seen[t.tid]} and cpu{core.index})", scenario)
            seen[t.tid] = core.index
    for t in threads:
        if t.is_runnable and t.tid not in seen:
            raise OracleFailure("no-lost-threads", sched,
                                f"runnable {t.name} on no runqueue",
                                scenario)
        if not t.is_runnable and t.tid in seen:
            raise OracleFailure("no-lost-threads", sched,
                                f"non-runnable {t.name} still queued "
                                f"on cpu{seen[t.tid]}", scenario)


def cfs_lag_bound(fair: CfsScheduler, rq, se) -> tuple[int, int]:
    """(max lag behind, max lead ahead of) ``min_vruntime`` allowed
    for ``se`` on ``rq``, in vruntime units.

    Behind: ``place_entity`` grants a waking sleeper at most
    ``sched_latency_ns`` of credit below ``min_vruntime`` (wall-ns,
    subtracted from vruntime directly), and ``min_vruntime`` may then
    advance while the sleeper waits — but never past the leftmost
    queued entity, so the lag cannot exceed the credit.

    Ahead: between preemption checks an entity runs at most one
    scheduling period slice plus tick-resolution overshoot, all scaled
    by ``1024/weight`` — low-weight (high nice) entities legitimately
    lead by large vruntime amounts.
    """
    tun = fair.tunables
    behind = tun.sched_latency_ns
    slice_ns = tun.sched_period(max(1, rq.nr_running))
    lead = calc_delta_fair(slice_ns + 4 * fair.tick_ns, se.weight) \
        + tun.sched_latency_ns
    return behind, lead


def check_cfs_fairness(engine, sched: str,
                       scenario: Scenario | None = None) -> None:
    """Per-runqueue vruntime lag bound (see :func:`cfs_lag_bound`)."""
    fair = _fair_of(engine)
    if fair is None:
        return
    for core in engine.machine.cores:
        for rq in fair.cfs_rqs(core):
            for se in rq.queued_entities():
                lag = se.vruntime - rq.min_vruntime
                behind, lead = cfs_lag_bound(fair, rq, se)
                if lag < -behind or lag > lead:
                    raise OracleFailure(
                        "cfs-lag-bound", sched,
                        f"cpu{core.index} {se}: vruntime lag {lag} "
                        f"outside [-{behind}, {lead}] "
                        f"(min_vruntime={rq.min_vruntime}, "
                        f"nr_running={rq.nr_running})", scenario)


def check_ule_classification(engine, sched: str,
                             scenario: Scenario | None = None) -> None:
    """Cached interactivity classification == fresh recomputation."""
    ule = _ule_of(engine)
    if ule is None:
        return
    tun = ule.tunables
    for t in engine.threads:
        if t.has_exited or not isinstance(t.policy, UleThreadState):
            continue
        state = ule.state_of(t)
        penalty = state.hist.penalty()
        if not 0 <= penalty <= tun.interact_max:
            raise OracleFailure(
                "ule-classification", sched,
                f"{t.name}: penalty {penalty} outside "
                f"[0, {tun.interact_max}]", scenario)
        if state.interactive != ule.is_interactive(t):
            raise OracleFailure(
                "ule-classification", sched,
                f"{t.name}: cached interactive={state.interactive} "
                f"but score {ule.interactivity_score(t)} vs threshold "
                f"{tun.interact_thresh} says "
                f"{ule.is_interactive(t)}", scenario)


# ----------------------------------------------------------------------
# whole-scenario oracle run
# ----------------------------------------------------------------------

def run_with_oracles(scenario: Scenario, sched: str, *,
                     tickless: bool | None = None,
                     corrupt=None, faults=None) -> dict:
    """Run ``scenario`` under ``sched`` with mid-run probes and final
    invariant checks; returns the per-thread outcome summary used for
    the cross-scheduler comparison.  Raises :class:`OracleFailure`.

    ``corrupt`` is the mutation-self-check hook: an ``(at_ns, fn)``
    pair posting ``fn(engine)`` as an event at ``at_ns``, used by the
    test suite to inject scheduler-state bugs and prove the oracles
    (and the sanitizer they run under) actually catch them.

    ``faults`` runs the scenario under a
    :class:`~repro.faults.plan.FaultPlan` (the chaos mode).  All
    oracles still hold, with one documented relaxation: clock
    coarsening rounds each sleep's wakeup *up* to the granularity, so
    ``total_sleeptime`` is checked against the bound
    ``[requested, requested + nsleeps * granularity]`` instead of
    exact equality.  Thread stalls and hotplug change *when* work
    runs, never *how much* — runtime stays an exact equality.
    """
    try:
        engine, threads = build_engine(scenario, sched, sanitize=True,
                                       tickless=tickless, faults=faults)
        if corrupt is not None:
            at_ns, fn = corrupt
            engine.events.post(at_ns, fn, engine, label="corrupt")
        horizon = max((t.spawn_at_ms + sum(ms for _, ms in t.plan)
                       for t in scenario.threads), default=1)
        step = max(1, horizon // CHECKPOINTS)
        for k in range(1, CHECKPOINTS + 1):
            engine.run(until=msec(k * step))
            check_membership(engine, threads, sched, scenario)
            check_cfs_fairness(engine, sched, scenario)
            check_ule_classification(engine, sched, scenario)
        reason = engine.run(until=msec(scenario.until_ms))
    except SanitizerError as exc:
        raise OracleFailure("sanitizer", sched, str(exc),
                            scenario) from exc

    if reason != "all-exited":
        stuck = [t.name for t in threads if not t.has_exited]
        raise OracleFailure("completion", sched,
                            f"run ended '{reason}' with live threads "
                            f"{stuck}", scenario)
    if len(engine.threads) != len(scenario.threads):
        raise OracleFailure(
            "no-lost-threads", sched,
            f"{len(scenario.threads)} threads spawned but engine "
            f"tracks {len(engine.threads)}", scenario)
    # Clock coarsening rounds each sleep wakeup up to the granularity;
    # with no coarsening fault the slack is 0 and the bound collapses
    # back to the exact equality.
    granularity = faults.sleep_granularity_ns() if faults is not None \
        else 0
    for ft, t in zip(scenario.threads, threads):
        if t.total_runtime != ft.requested_run_ns():
            raise OracleFailure(
                "requested-work", sched,
                f"{t.name}: ran {t.total_runtime} ns, plan requested "
                f"{ft.requested_run_ns()} ns", scenario)
        nsleeps = sum(1 for kind, _ in ft.plan if kind == "sleep")
        slack = nsleeps * granularity
        want_sleep = ft.requested_sleep_ns()
        if not want_sleep <= t.total_sleeptime <= want_sleep + slack:
            raise OracleFailure(
                "requested-work", sched,
                f"{t.name}: slept {t.total_sleeptime} ns, plan "
                f"requested {want_sleep} ns "
                f"(+{slack} ns coarsening slack)", scenario)
    for core in engine.machine.cores:
        core.account_to_now()
    busy = sum(c.busy_ns for c in engine.machine.cores)
    executed = sum(t.total_runtime for t in threads)
    if busy != executed:
        raise OracleFailure(
            "work-conservation", sched,
            f"cores busy {busy} ns != threads executed {executed} ns",
            scenario)
    return {
        t.name: (t.total_runtime, t.total_sleeptime)
        for t in threads
    }


def check_scenario(scenario: Scenario,
                   scheds=DEFAULT_SCHEDULERS, faults=None) -> None:
    """The full differential oracle: run ``scenario`` under every
    scheduler in ``scheds`` and require identical per-thread outcome
    vectors.  Raises :class:`OracleFailure` on any violation.

    Under a fault plan the comparison drops to runtime-only: clock
    coarsening rounds wakeups relative to when each scheduler ran the
    sleep, so sleeptimes legitimately differ across schedulers (each
    stays within its own per-run bound); runtime must still agree
    exactly.
    """
    outcomes = {}
    for sched in scheds:
        outcome = run_with_oracles(scenario, sched, faults=faults)
        if faults is not None:
            outcome = {name: (runtime,)
                       for name, (runtime, _) in outcome.items()}
        outcomes[sched] = outcome
    baseline_sched = scheds[0]
    baseline = outcomes[baseline_sched]
    for sched in scheds[1:]:
        if outcomes[sched] != baseline:
            diff = {name: (baseline[name], outcomes[sched][name])
                    for name in baseline
                    if outcomes[sched].get(name) != baseline[name]}
            raise OracleFailure(
                "cross-scheduler", sched,
                f"per-thread outcomes diverge from {baseline_sched}: "
                f"{diff}", scenario)


def scenario_fails(scenario: Scenario,
                   scheds=DEFAULT_SCHEDULERS, faults=None) -> bool:
    """Failure predicate for the shrinker."""
    try:
        check_scenario(scenario, scheds, faults=faults)
    except OracleFailure:
        return True
    return False
