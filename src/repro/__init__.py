"""repro — a reproduction of "The Battle of the Schedulers: FreeBSD
ULE vs. Linux CFS" (Bouron et al., USENIX ATC 2018) as a discrete-event
scheduler simulator.

The package provides:

* :mod:`repro.core` — the simulation kernel (engine, machine topology,
  threads, behaviour actions);
* :mod:`repro.sched` — the Linux-style scheduler-class interface
  (the paper's Table 1) and the FreeBSD name adapter;
* :mod:`repro.cfs` / :mod:`repro.ule` — faithful models of the two
  schedulers;
* :mod:`repro.sync` — synchronization primitives for workloads;
* :mod:`repro.workloads` — behavioural models of the paper's 37
  benchmark applications;
* :mod:`repro.experiments` — drivers regenerating every table and
  figure of the paper's evaluation;
* :mod:`repro.analysis` / :mod:`repro.tracing` — metrics, fairness and
  convergence analysis, samplers and text charts.

Quickstart::

    from repro import Engine, ThreadSpec, run_forever, single_core
    from repro.sched import scheduler_factory

    engine = Engine(single_core(), scheduler_factory("ule"))
    engine.spawn(ThreadSpec("spin", lambda ctx: iter([run_forever()])))
    engine.run(until=10**9)
"""

from .core import Engine, Run, Sleep, ThreadSpec, Yield, run_forever
from .core.topology import i7_3770, opteron_6172, single_core, smp
from .sched import scheduler_factory

__version__ = "0.1.0"

__all__ = [
    "Engine",
    "ThreadSpec",
    "Run",
    "Sleep",
    "Yield",
    "run_forever",
    "single_core",
    "smp",
    "opteron_6172",
    "i7_3770",
    "scheduler_factory",
    "__version__",
]
