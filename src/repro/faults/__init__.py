"""Deterministic fault injection (chaos) for the simulator.

``FaultPlan`` (:mod:`repro.faults.plan`) declares *what* goes wrong
and when; ``FaultInjector`` (:mod:`repro.faults.injector`) wires a
plan into an engine via ``Engine(faults=plan)``.  The chaos smoke
gate lives in ``python -m repro.faults smoke``.  See
docs/fault-injection.md for the taxonomy and determinism contract.
"""

from .plan import (ClockCoarsen, CoreOffline, CoreOnline, FaultPlan,
                   IpiDelay, IpiDrop, ThreadStall, TickJitter,
                   random_plan)

__all__ = [
    "FaultPlan", "CoreOffline", "CoreOnline", "TickJitter",
    "IpiDelay", "IpiDrop", "ThreadStall", "ClockCoarsen",
    "random_plan",
]
