"""Process-level chaos: seeded SIGKILLs against shard workers.

The in-engine fault injector (:mod:`repro.faults.injector`) perturbs
the *simulated* machine; this module perturbs the *real* one — it
kills live shard-executor worker processes mid-campaign, which is the
failure mode the leased work-stealing store is built to survive
(docs/distributed-campaigns.md).

:class:`WorkerKiller` plugs into
:func:`repro.experiments.shard.shard_map` via the ``chaos=`` hook:
the supervisor calls it every poll with the list of live worker
``Process`` objects, and it SIGKILLs one at seeded pseudo-random
intervals until its kill budget is spent.  Determinism caveat: the
kill *schedule* is seeded, but which cells are in flight when a kill
lands depends on wall-clock scheduling — that is the point.  The
executor's contract is that the sweep's *results* are byte-identical
regardless, and the chaos gate (``make shard-chaos-smoke``) asserts
exactly that.
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Optional


class WorkerKiller:
    """SIGKILL up to ``kills`` live workers, one at a time, at seeded
    intervals drawn uniformly from ``[min_gap_s, max_gap_s)``.

    ``killed`` records the victim pids (the chaos tests assert the
    budget was actually spent).  The first kill is armed one interval
    after construction, so the sweep gets a chance to lease cells
    before losing workers — kills that land mid-cell are the
    interesting ones.
    """

    def __init__(self, kills: int, seed: int = 0, *,
                 min_gap_s: float = 0.05, max_gap_s: float = 0.3,
                 _now=time.monotonic):
        self.kills = kills
        self.killed: list[int] = []
        self._rng = random.Random(seed)
        self._min = min_gap_s
        self._max = max_gap_s
        self._now = _now
        self._next_at: Optional[float] = None

    def _arm(self) -> None:
        gap = self._rng.uniform(self._min, self._max)
        self._next_at = self._now() + gap

    def __call__(self, live_procs) -> None:
        """The shard supervisor's chaos hook."""
        if len(self.killed) >= self.kills or not live_procs:
            return
        if self._next_at is None:
            self._arm()
            return
        if self._now() < self._next_at:
            return
        victim = self._rng.choice(list(live_procs))
        if self._kill(victim.pid):
            self.killed.append(victim.pid)
        self._arm()

    @staticmethod
    def _kill(pid: int) -> bool:
        """SIGKILL ``pid``; False when it already exited (no kill
        consumed — the worker died on its own, which is not chaos)."""
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            return False
        return True
