"""The fault injector: wires a :class:`~repro.faults.plan.FaultPlan`
into a running engine.

The injector is only constructed for *non-empty* plans
(``Engine.__init__`` keeps ``engine.faults = None`` otherwise), so the
no-fault hot path pays a single ``None`` test per hook site and posts
no extra events — which is what makes the empty plan digest-identical
to a no-faults run (every posted event consumes a queue sequence
number, so even an inert event would perturb same-instant FIFO
ordering).

Determinism contract: all stochastic draws (tick jitter, IPI delay,
drop coin flips) come from one private
:class:`~repro.core.rng.RandomStream` seeded by ``(plan.seed,
"faults")``, consumed in event order.  The same (plan, workload,
scheduler, seed) tuple therefore replays the same faults, byte for
byte — chaos runs shrink and bisect exactly like healthy ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.rng import RandomStream
from .plan import (ClockCoarsen, CoreOffline, CoreOnline, FaultPlan,
                   IpiDelay, IpiDrop, ThreadStall, TickJitter)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core


class FaultInjector:
    """Applies a plan to an engine: posts the scheduled faults and
    answers the engine's per-event hook queries."""

    def __init__(self, engine: "Engine", plan: FaultPlan):
        plan.validate(ncpus=len(engine.machine))
        self.engine = engine
        self.plan = plan
        self._rng = RandomStream(plan.seed, "faults")
        self._started = False
        #: (time_ns, kind, detail) for every discrete fault applied;
        #: folded into the schedule digest via ``canonical()``
        self.applied: list = []
        #: per-kind counts of the continuous faults (jitter/IPI/timer),
        #: which would bloat ``applied`` if recorded individually
        self.counts = {"tick-jitter": 0, "ipi-delay": 0,
                       "ipi-drop": 0, "clock-coarsen": 0}
        self._jitter = [f for f in plan.faults
                        if isinstance(f, TickJitter)]
        self._ipi_delay = [f for f in plan.faults
                           if isinstance(f, IpiDelay)]
        self._ipi_drop = [f for f in plan.faults
                          if isinstance(f, IpiDrop)]
        self._coarsen = [f for f in plan.faults
                         if isinstance(f, ClockCoarsen)]
        engine.tracer.on_fault.append(self._record)

    def _record(self, kind: str, detail) -> None:
        self.applied.append((self.engine.now, kind, detail))

    # ------------------------------------------------------------------
    # scheduled faults
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Post the time-scheduled faults (hotplug, stalls).  Called
        once from :meth:`Engine.run`; re-entry (checkpointed oracle
        runs call ``run`` repeatedly) is a no-op."""
        if self._started:
            return
        self._started = True
        engine = self.engine
        for fault in self.plan.faults:
            at = max(engine.now, getattr(fault, "at_ns", -1))
            if isinstance(fault, CoreOffline):
                engine.events.post(at, self._do_offline, fault.cpu,
                                   label=f"fault:offline:cpu{fault.cpu}")
            elif isinstance(fault, CoreOnline):
                engine.events.post(at, self._do_online, fault.cpu,
                                   label=f"fault:online:cpu{fault.cpu}")
            elif isinstance(fault, ThreadStall):
                engine.events.post(at, self._do_stall, fault,
                                   label=f"fault:stall:{fault.thread}")

    def _do_offline(self, cpu: int) -> None:
        self.engine.offline_core(cpu)

    def _do_online(self, cpu: int) -> None:
        self.engine.online_core(cpu)

    def _do_stall(self, fault: ThreadStall) -> None:
        engine = self.engine
        thread = next((t for t in engine.threads
                       if t.name == fault.thread), None)
        if thread is None or not engine.stall_thread(
                thread, fault.duration_ns):
            from ..core.engine import Tracer
            Tracer._fire(engine.tracer.on_fault, "stall-skipped",
                         fault.thread)

    # ------------------------------------------------------------------
    # per-event hook queries (engine hot paths)
    # ------------------------------------------------------------------

    def tick_time(self, core: "Core", t: int) -> int:
        """Jittered re-arm time for a periodic tick scheduled at
        ``t`` on ``core`` (first matching window wins)."""
        for fault in self._jitter:
            if fault.matches(core.index, t):
                jitter = self._rng.randint(0, fault.max_jitter_ns)
                if jitter:
                    self.counts["tick-jitter"] += 1
                    return t + jitter
                return t
        return t

    def timer_time(self, t: int) -> int:
        """Sleep-timer expiry ``t`` rounded up to the active coarse
        clock granularity (first matching window wins)."""
        for fault in self._coarsen:
            if fault.start_ns <= t < fault.end_ns:
                rem = t % fault.granularity_ns
                if rem:
                    self.counts["clock-coarsen"] += 1
                    return t + fault.granularity_ns - rem
                return t
        return t

    def ipi_delay(self, core: "Core") -> int:
        """Extra latency for a resched IPI requested now on ``core``:
        redelivery delay when dropped, else a bounded uniform delay."""
        now = self.engine.now
        for fault in self._ipi_drop:
            if fault.matches(core.index, now) \
                    and self._rng.uniform(0.0, 1.0) < fault.prob:
                self.counts["ipi-drop"] += 1
                return fault.redeliver_ns
        for fault in self._ipi_delay:
            if fault.matches(core.index, now):
                delay = self._rng.randint(0, fault.max_delay_ns)
                if delay:
                    self.counts["ipi-delay"] += 1
                return delay
        return 0

    # ------------------------------------------------------------------
    # digest integration
    # ------------------------------------------------------------------

    def canonical(self) -> dict:
        """Fault history for :meth:`Engine.canonical_state`: the
        discrete faults applied (with times), continuous-fault counts,
        and per-thread stall totals.  Everything is a pure function of
        (plan, workload, scheduler, seed)."""
        return {
            "applied": [list(entry) for entry in self.applied],
            "counts": dict(sorted(self.counts.items())),
            "stall_ns": [
                [index, t.total_stalltime]
                for index, t in enumerate(self.engine.threads)
                if t.total_stalltime
            ],
        }
