"""Chaos smoke gate: ``python -m repro.faults smoke``.

Two checks, both under ``Engine(sanitize=True)`` so every scheduler
invariant is validated after every event:

1. one fig5 cell per scheduler under the canned fault plan
   (``plans/chaos-smoke.json``: tick jitter + IPI drop/redelivery +
   clock coarsening + a thread stall), asserting the workload still
   completes;
2. a 4-CPU hotplug cell per scheduler — spinners spread over the
   machine while two cores go offline and come back — asserting the
   drain/rebalance paths leave no runnable thread on a dead core (the
   sanitizer raises if they do) and that the restored cores pick work
   back up.

Wired into ``make chaos-smoke`` (part of ``make verify``) and CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .plan import CoreOffline, CoreOnline, FaultPlan

CANNED_PLAN = Path(__file__).parent / "plans" / "chaos-smoke.json"


def _fig5_cell(sched: str) -> None:
    from ..experiments.fig5_single_core_perf import run_app
    plan = FaultPlan.load(CANNED_PLAN)
    out = run_app("MG", sched, seed=1, sanitize=True, faults=plan)
    print(f"  fig5 MG/{sched}: perf={out['perf']:.3f} ops/s "
          f"digest={out['digest']} (chaos, sanitized)")


def _hotplug_cell(sched: str) -> None:
    from ..core.clock import msec, sec
    from ..experiments.base import make_engine
    from ..workloads.spinner import SpinnerWorkload

    plan = FaultPlan(seed=7, faults=(
        CoreOffline(at_ns=msec(200), cpu=2),
        CoreOffline(at_ns=msec(300), cpu=1),
        CoreOnline(at_ns=msec(600), cpu=2),
        CoreOnline(at_ns=msec(700), cpu=1),
    ))
    engine = make_engine(sched, ncpus=4, seed=1, sanitize=True,
                         faults=plan)
    SpinnerWorkload(count=8, pin_cpu=None).launch(engine, at=0)
    engine.run(until=sec(1))
    offlines = engine.metrics.counter("engine.hotplug_offlines")
    onlines = engine.metrics.counter("engine.hotplug_onlines")
    if offlines != 2 or onlines != 2:
        raise SystemExit(f"hotplug counts off: {offlines}/{onlines}")
    for core in engine.machine.cores:
        if not core.online:
            raise SystemExit(f"cpu {core.index} still offline")
        if engine.nr_runnable_on(core.index) == 0:
            raise SystemExit(
                f"cpu {core.index} got no work back after online "
                f"({sched})")
    print(f"  hotplug 4cpu/{sched}: 2 offline + 2 online, "
          f"drained and rebalanced (sanitized)")


def _cmd_smoke(args) -> int:
    for sched in ("cfs", "ule"):
        _fig5_cell(sched)
        _hotplug_cell(sched)
    print("chaos smoke: OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection utilities (see "
                    "docs/fault-injection.md)")
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("smoke",
                       help="chaos smoke gate: fig5 + hotplug cells "
                            "per scheduler under --sanitize")
    p.set_defaults(func=_cmd_smoke)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
