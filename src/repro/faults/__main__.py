"""Chaos gates: ``python -m repro.faults smoke`` / ``shard-chaos``.

``smoke`` — two in-engine checks, both under ``Engine(sanitize=True)``
so every scheduler invariant is validated after every event:

1. one fig5 cell per scheduler under the canned fault plan
   (``plans/chaos-smoke.json``: tick jitter + IPI drop/redelivery +
   clock coarsening + a thread stall), asserting the workload still
   completes;
2. a 4-CPU hotplug cell per scheduler — spinners spread over the
   machine while two cores go offline and come back — asserting the
   drain/rebalance paths leave no runnable thread on a dead core (the
   sanitizer raises if they do) and that the restored cores pick work
   back up.

``shard-chaos`` — the distributed-campaign robustness gate
(docs/distributed-campaigns.md): a bounded sensitivity sweep through
the leased work-stealing shard executor where the *real* processes
are the fault targets — the supervisor is SIGKILLed mid-sweep, the
sweep is resumed, and resumed workers are SIGKILLed by a seeded
:class:`~repro.faults.procchaos.WorkerKiller` — asserting the merged
report is byte-identical to an uninterrupted serial run.

Both are wired into ``make chaos-smoke`` / ``make shard-chaos-smoke``
(part of ``make verify``) and CI.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

from .plan import CoreOffline, CoreOnline, FaultPlan

CANNED_PLAN = Path(__file__).parent / "plans" / "chaos-smoke.json"


def _fig5_cell(sched: str) -> None:
    from ..experiments.fig5_single_core_perf import run_app
    plan = FaultPlan.load(CANNED_PLAN)
    out = run_app("MG", sched, seed=1, sanitize=True, faults=plan)
    print(f"  fig5 MG/{sched}: perf={out['perf']:.3f} ops/s "
          f"digest={out['digest']} (chaos, sanitized)")


def _hotplug_cell(sched: str) -> None:
    from ..core.clock import msec, sec
    from ..experiments.base import make_engine
    from ..workloads.spinner import SpinnerWorkload

    plan = FaultPlan(seed=7, faults=(
        CoreOffline(at_ns=msec(200), cpu=2),
        CoreOffline(at_ns=msec(300), cpu=1),
        CoreOnline(at_ns=msec(600), cpu=2),
        CoreOnline(at_ns=msec(700), cpu=1),
    ))
    engine = make_engine(sched, ncpus=4, seed=1, sanitize=True,
                         faults=plan)
    SpinnerWorkload(count=8, pin_cpu=None).launch(engine, at=0)
    engine.run(until=sec(1))
    offlines = engine.metrics.counter("engine.hotplug_offlines")
    onlines = engine.metrics.counter("engine.hotplug_onlines")
    if offlines != 2 or onlines != 2:
        raise SystemExit(f"hotplug counts off: {offlines}/{onlines}")
    for core in engine.machine.cores:
        if not core.online:
            raise SystemExit(f"cpu {core.index} still offline")
        if engine.nr_runnable_on(core.index) == 0:
            raise SystemExit(
                f"cpu {core.index} got no work back after online "
                f"({sched})")
    print(f"  hotplug 4cpu/{sched}: 2 offline + 2 online, "
          f"drained and rebalanced (sanitized)")


def _cmd_smoke(args) -> int:
    for sched in ("cfs", "ule"):
        _fig5_cell(sched)
        _hotplug_cell(sched)
    print("chaos smoke: OK")
    return 0


# ---------------------------------------------------------------------------
# shard-chaos: worker/supervisor-kill sweep with byte-identity assert
# ---------------------------------------------------------------------------


def shard_chaos_cells(seeds: int = 15) -> list:
    """The gate's sensitivity sweep: spinner cells over scheduler x
    thread-count x seed — cheap (~300 ms simulated each, ~10 ms
    wall), all distinct, fully deterministic."""
    return [{"sweep": "shard-chaos", "sched": sched,
             "threads": threads, "seed": seed}
            for sched in ("cfs", "ule")
            for threads in (2, 3, 4, 6)
            for seed in range(1, seeds + 1)]


def shard_chaos_cell(cell: dict) -> dict:
    """One sweep cell: a short 2-CPU spinner run; the digest pins the
    exact schedule, so report byte-identity proves result integrity
    end to end."""
    from ..core.clock import msec
    from ..experiments.base import make_engine
    from ..tracing.digest import schedule_digest
    from ..workloads.spinner import SpinnerWorkload

    engine = make_engine(cell["sched"], ncpus=2, seed=cell["seed"])
    SpinnerWorkload(count=cell["threads"], pin_cpu=None,
                    name="shard-chaos").launch(engine, at=0)
    engine.run(until=msec(300))
    return {"digest": schedule_digest(engine),
            "switches": engine.metrics.counter("engine.switches"),
            "events": engine.events_processed}


def render_shard_report(cells, results) -> str:
    """Deterministic per-cell report (no timing, no worker identity)
    — the byte-identity comparand."""
    from ..experiments.parallel import FailedCell
    lines = ["# shard-chaos sensitivity sweep"]
    for cell, result in zip(cells, results):
        name = (f"{cell['sched']}/t{cell['threads']}"
                f"/s{cell['seed']}")
        if isinstance(result, FailedCell):
            lines.append(f"{name}: {result.render()}")
        else:
            lines.append(f"{name}: digest={result['digest']} "
                         f"switches={result['switches']} "
                         f"events={result['events']}")
    return "\n".join(lines) + "\n"


def _shard_chaos_child(store_dir, checkpoint_path, meta, workers,
                       lease_s) -> None:
    """Phase-1 supervisor (run in a child so the parent can SIGKILL
    it mid-sweep): starts the sharded sweep and never finishes."""
    from ..experiments.checkpoint import CampaignCheckpoint
    from ..experiments.shard import shard_map

    checkpoint = CampaignCheckpoint(checkpoint_path, meta=meta)
    checkpoint.load(resume=True)
    shard_map(shard_chaos_cell, shard_chaos_cells(), workers,
              store_dir=store_dir, lease_s=lease_s,
              checkpoint=checkpoint)


def _cmd_shard_chaos(args) -> int:
    from ..experiments.checkpoint import CampaignCheckpoint
    from ..experiments.parallel import FailedCell, cell_map
    from ..experiments.shard import shard_map
    from .procchaos import WorkerKiller

    cells = shard_chaos_cells()
    meta = {"sweep": "shard-chaos"}
    print(f"shard-chaos: {len(cells)} cells, {args.workers} workers, "
          f"{args.kills} worker SIGKILL(s) + 1 supervisor SIGKILL")

    t0 = time.monotonic()
    serial = cell_map(shard_chaos_cell, cells)
    reference = render_shard_report(cells, serial)
    print(f"  serial reference: {len(cells)} cells in "
          f"{time.monotonic() - t0:.1f}s")

    with tempfile.TemporaryDirectory(prefix="shard-chaos-") as tmp:
        store_dir = os.path.join(tmp, "store")
        checkpoint_path = os.path.join(tmp, "checkpoint.jsonl")

        # phase 1: SIGKILL the supervisor itself mid-sweep
        child = multiprocessing.Process(
            target=_shard_chaos_child,
            args=(store_dir, checkpoint_path, meta, args.workers,
                  args.lease))
        child.start()
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                with open(checkpoint_path) as fh:
                    finished = sum(1 for _ in fh) - 1
            except OSError:
                finished = 0
            if finished >= max(4, len(cells) // 8):
                break
            if not child.is_alive():  # pragma: no cover - flake guard
                break
            time.sleep(0.02)
        interrupted_alive = child.is_alive()
        if interrupted_alive:
            os.kill(child.pid, signal.SIGKILL)
        child.join()
        print(f"  phase 1: supervisor SIGKILLed with ~{finished} "
              f"cell(s) checkpointed "
              f"(alive at kill: {interrupted_alive})")

        # phase 2: resume the same sweep; kill workers while it runs
        killer = WorkerKiller(args.kills, seed=args.seed,
                              min_gap_s=0.05, max_gap_s=0.25)
        checkpoint = CampaignCheckpoint(checkpoint_path, meta=meta)
        replayed = checkpoint.load(resume=True)
        results = shard_map(shard_chaos_cell, cells, args.workers,
                            store_dir=store_dir, lease_s=args.lease,
                            checkpoint=checkpoint, chaos=killer)
        print(f"  phase 2: resumed past {replayed} checkpointed "
              f"cell(s); {len(killer.killed)} worker(s) SIGKILLed")

    failed = [r for r in results if isinstance(r, FailedCell)]
    if failed:
        print(f"shard-chaos: FAILED - {len(failed)} cell(s) failed "
              f"(first: {failed[0].render()})", file=sys.stderr)
        return 1
    report = render_shard_report(cells, results)
    if report != reference:
        for line_s, line_r in zip(reference.splitlines(),
                                  report.splitlines()):
            if line_s != line_r:
                print(f"shard-chaos: FAILED - report diverged:\n"
                      f"  serial : {line_s}\n"
                      f"  sharded: {line_r}", file=sys.stderr)
                break
        return 1
    if len(killer.killed) < args.kills:
        print(f"shard-chaos: FAILED - only {len(killer.killed)} of "
              f"{args.kills} worker kills landed (sweep too short? "
              f"raise --kills gaps or cell count)", file=sys.stderr)
        return 1
    print(f"shard-chaos: OK - report byte-identical to serial "
          f"({len(report)} bytes) after 1 supervisor + "
          f"{len(killer.killed)} worker SIGKILL(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="fault-injection utilities (see "
                    "docs/fault-injection.md)")
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("smoke",
                       help="chaos smoke gate: fig5 + hotplug cells "
                            "per scheduler under --sanitize")
    p.set_defaults(func=_cmd_smoke)
    p = sub.add_parser("shard-chaos",
                       help="shard-executor chaos gate: SIGKILL the "
                            "supervisor and N workers mid-sweep, "
                            "resume, assert the report is "
                            "byte-identical to a serial run")
    p.add_argument("--workers", type=int, default=3,
                   help="shard worker processes (default: 3 — "
                        "processes, not cores: the gate is about "
                        "crash tolerance, not throughput)")
    p.add_argument("--kills", type=int, default=3,
                   help="worker SIGKILL budget (default: 3)")
    p.add_argument("--seed", type=int, default=7,
                   help="kill-schedule seed")
    p.add_argument("--lease", type=float, default=0.5, metavar="S",
                   help="store lease duration (default: 0.5s — "
                        "short, so stolen cells re-lease quickly)")
    p.set_defaults(func=_cmd_shard_chaos)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
