"""The FaultPlan DSL: a declarative, seeded description of injected
faults.

A plan is plain data — frozen dataclasses with a stable JSON encoding
— so the same plan file replays the same faults on every run
(``repro-sched run --faults plan.json``), can be embedded in fuzz
campaigns, and round-trips through the campaign checkpoint.  The fault
taxonomy, determinism contract, and JSON schema are documented in
docs/fault-injection.md.

Fault kinds
-----------

``core-offline`` / ``core-online``
    Hotplug: at ``at_ns`` the CPU is removed (its threads drain to
    online cores through the scheduler's own placement path) or
    restored (the scheduler rebalances onto it).
``tick-jitter``
    Within ``[start_ns, end_ns)`` every periodic-tick re-arm on the
    matched CPUs is delayed by a uniform draw from
    ``[0, max_jitter_ns]`` (a bounded distribution: jitter never moves
    a tick earlier, and never more than the declared maximum).
``ipi-delay`` / ``ipi-drop``
    Resched IPIs (``Engine.request_resched``) inside the window are
    delayed by a uniform draw from ``[0, max_delay_ns]``, or dropped
    with probability ``prob`` — a drop is modelled as redelivery after
    ``redeliver_ns``, as on hardware where the wakeup eventually
    arrives via the next timer.
``thread-stall``
    At ``at_ns`` the named thread is yanked off the scheduler for
    ``duration_ns`` (page-fault storm / SMI analogue); stall time is
    accounted separately from sleep time.
``clock-coarsen``
    Sleep-timer wakeups landing inside the window are rounded *up* to
    the next multiple of ``granularity_ns`` (a coarse-grained timer
    wheel); a sleep never shortens.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union


def _window_ok(start_ns: int, end_ns: int) -> None:
    if start_ns < 0 or end_ns < start_ns:
        raise ValueError(f"bad fault window [{start_ns}, {end_ns})")


@dataclass(frozen=True)
class CoreOffline:
    """Remove ``cpu`` at ``at_ns`` (threads drain to online cores)."""
    at_ns: int
    cpu: int
    kind = "core-offline"

    def validate(self, ncpus: Optional[int] = None) -> None:
        if self.at_ns < 0 or self.cpu < 0:
            raise ValueError(f"bad {self.kind}: {self}")
        if ncpus is not None and self.cpu >= ncpus:
            raise ValueError(f"{self.kind}: cpu {self.cpu} >= {ncpus}")


@dataclass(frozen=True)
class CoreOnline:
    """Restore ``cpu`` at ``at_ns`` (the scheduler rebalances)."""
    at_ns: int
    cpu: int
    kind = "core-online"

    validate = CoreOffline.validate


@dataclass(frozen=True)
class TickJitter:
    """Delay tick re-arms by uniform ``[0, max_jitter_ns]`` inside the
    window; ``cpus=None`` matches every CPU."""
    start_ns: int
    end_ns: int
    max_jitter_ns: int
    cpus: Optional[Tuple[int, ...]] = None
    kind = "tick-jitter"

    def validate(self, ncpus: Optional[int] = None) -> None:
        _window_ok(self.start_ns, self.end_ns)
        if self.max_jitter_ns < 0:
            raise ValueError(f"negative max_jitter_ns: {self}")

    def matches(self, cpu: int, t: int) -> bool:
        return (self.start_ns <= t < self.end_ns
                and (self.cpus is None or cpu in self.cpus))


@dataclass(frozen=True)
class IpiDelay:
    """Delay resched IPIs by uniform ``[0, max_delay_ns]`` inside the
    window."""
    start_ns: int
    end_ns: int
    max_delay_ns: int
    cpus: Optional[Tuple[int, ...]] = None
    kind = "ipi-delay"

    def validate(self, ncpus: Optional[int] = None) -> None:
        _window_ok(self.start_ns, self.end_ns)
        if self.max_delay_ns < 0:
            raise ValueError(f"negative max_delay_ns: {self}")

    matches = TickJitter.matches


@dataclass(frozen=True)
class IpiDrop:
    """Drop resched IPIs with probability ``prob``; a dropped IPI is
    redelivered after ``redeliver_ns`` (never lost outright, so work
    conservation is only delayed, not broken)."""
    start_ns: int
    end_ns: int
    prob: float
    redeliver_ns: int
    cpus: Optional[Tuple[int, ...]] = None
    kind = "ipi-drop"

    def validate(self, ncpus: Optional[int] = None) -> None:
        _window_ok(self.start_ns, self.end_ns)
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob out of [0,1]: {self}")
        if self.redeliver_ns <= 0:
            raise ValueError(f"redeliver_ns must be positive: {self}")

    matches = TickJitter.matches


@dataclass(frozen=True)
class ThreadStall:
    """Stall the thread named ``thread`` for ``duration_ns`` starting
    at ``at_ns``; a no-op (recorded as skipped) when no live thread by
    that name is runnable at that instant."""
    at_ns: int
    thread: str
    duration_ns: int
    kind = "thread-stall"

    def validate(self, ncpus: Optional[int] = None) -> None:
        if self.at_ns < 0 or self.duration_ns <= 0 or not self.thread:
            raise ValueError(f"bad {self.kind}: {self}")


@dataclass(frozen=True)
class ClockCoarsen:
    """Round sleep wakeups inside the window up to the next multiple
    of ``granularity_ns``."""
    start_ns: int
    end_ns: int
    granularity_ns: int
    kind = "clock-coarsen"

    def validate(self, ncpus: Optional[int] = None) -> None:
        _window_ok(self.start_ns, self.end_ns)
        if self.granularity_ns <= 0:
            raise ValueError(f"granularity_ns must be positive: {self}")


Fault = Union[CoreOffline, CoreOnline, TickJitter, IpiDelay, IpiDrop,
              ThreadStall, ClockCoarsen]

_KINDS = {cls.kind: cls for cls in
          (CoreOffline, CoreOnline, TickJitter, IpiDelay, IpiDrop,
           ThreadStall, ClockCoarsen)}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of faults.

    ``seed`` feeds the plan's private RNG stream (tick jitter draws,
    IPI drop coin flips), so the same plan produces the same fault
    sequence regardless of the workload seed.  The empty plan is the
    identity: ``Engine(faults=FaultPlan())`` installs no injector and
    the schedule digest is byte-identical to ``faults=None``.
    """
    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def is_empty(self) -> bool:
        return not self.faults

    def validate(self, ncpus: Optional[int] = None) -> None:
        for fault in self.faults:
            fault.validate(ncpus)

    # -- JSON encoding --------------------------------------------------

    def to_dict(self) -> dict:
        items = []
        for fault in self.faults:
            entry = {"kind": fault.kind}
            entry.update(asdict(fault))
            if "cpus" in entry and entry["cpus"] is not None:
                entry["cpus"] = list(entry["cpus"])
            items.append(entry)
        return {"seed": self.seed, "faults": items}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults = []
        for entry in data.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind")
            if kind not in _KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            if entry.get("cpus") is not None:
                entry["cpus"] = tuple(entry["cpus"])
            faults.append(_KINDS[kind](**entry))
        plan = cls(seed=int(data.get("seed", 0)), faults=tuple(faults))
        plan.validate()
        return plan

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.loads(Path(path).read_text())

    def dump(self, path) -> None:
        from ..core.artifacts import atomic_write_text
        atomic_write_text(path, self.dumps())

    # -- oracle support -------------------------------------------------

    def sleep_granularity_ns(self) -> int:
        """The coarsest clock-coarsening granularity in the plan (0
        when none): each voluntary sleep can overshoot its requested
        duration by strictly less than this."""
        gs = [f.granularity_ns for f in self.faults
              if isinstance(f, ClockCoarsen)]
        return max(gs) if gs else 0


def random_plan(seed: int, ncpus: int, horizon_ns: int,
                thread_names: Sequence[str] = (),
                protect_cpus: Sequence[int] = (0,)) -> FaultPlan:
    """Draw a random but *bounded* fault plan for chaos fuzzing.

    CPUs in ``protect_cpus`` (cpu 0 by default) are never offlined, so
    at least one core always survives; every offline gets a matching
    online inside the horizon; jitter/delay magnitudes are capped so
    scenarios still complete well inside the fuzzer's deadline.
    """
    rng = random.Random(f"repro.faults.plan:{seed}")
    faults: list[Fault] = []
    protected = set(protect_cpus)
    for cpu in range(ncpus):
        if cpu in protected or rng.random() >= 0.35:
            continue
        off_at = rng.randrange(0, max(1, horizon_ns // 2))
        on_at = rng.randrange(off_at + 1, horizon_ns + 1)
        faults.append(CoreOffline(at_ns=off_at, cpu=cpu))
        faults.append(CoreOnline(at_ns=on_at, cpu=cpu))
    if rng.random() < 0.5:
        start = rng.randrange(0, max(1, horizon_ns // 2))
        faults.append(TickJitter(
            start_ns=start,
            end_ns=rng.randrange(start + 1, horizon_ns + 1),
            max_jitter_ns=rng.randrange(1, 500_000)))
    if rng.random() < 0.4:
        start = rng.randrange(0, max(1, horizon_ns // 2))
        faults.append(IpiDelay(
            start_ns=start,
            end_ns=rng.randrange(start + 1, horizon_ns + 1),
            max_delay_ns=rng.randrange(1, 200_000)))
    if rng.random() < 0.3:
        start = rng.randrange(0, max(1, horizon_ns // 2))
        faults.append(IpiDrop(
            start_ns=start,
            end_ns=rng.randrange(start + 1, horizon_ns + 1),
            prob=rng.uniform(0.05, 0.5),
            redeliver_ns=rng.randrange(10_000, 1_000_000)))
    if rng.random() < 0.4:
        start = rng.randrange(0, max(1, horizon_ns // 2))
        faults.append(ClockCoarsen(
            start_ns=start,
            end_ns=rng.randrange(start + 1, horizon_ns + 1),
            granularity_ns=rng.choice((10_000, 100_000, 1_000_000))))
    for name in thread_names:
        if rng.random() < 0.25:
            faults.append(ThreadStall(
                at_ns=rng.randrange(0, max(1, horizon_ns)),
                thread=name,
                duration_ns=rng.randrange(1_000_000, 50_000_000)))
    return FaultPlan(seed=seed, faults=tuple(faults))
