"""A sleeping mutex (like a kernel ``mutex`` / pthread mutex).

Contended acquisition blocks the thread; release hands the lock to the
oldest waiter (FIFO, no barging) and wakes it.  This is the primitive
behind the MySQL lock-contention effect in §6.4: whether the *woken*
lock holder preempts the current thread is a scheduler decision — ULE's
lack of full preemption leaves the woken thread waiting for up to a
full timeslice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import BlockResult, SyncAction
from ..core.errors import SimulationError
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class Mutex:
    """A blocking mutual-exclusion lock with FIFO handoff."""

    __slots__ = ("engine", "name", "owner", "waiters", "acquisitions",
                 "contentions")

    def __init__(self, engine: "Engine", name: str = "mutex"):
        self.engine = engine
        self.name = name
        self.owner: Optional["SimThread"] = None
        self.waiters = WaitQueue(engine, f"{name}.waiters")
        self.acquisitions = 0
        self.contentions = 0

    def acquire(self) -> "_AcquireAction":
        """Action: acquire the lock (blocking)."""
        return _AcquireAction(self)

    def release(self) -> "_ReleaseAction":
        """Action: release the lock, handing it to the oldest waiter."""
        return _ReleaseAction(self)

    # -- internal --------------------------------------------------------

    def _do_acquire(self, engine: "Engine", thread: "SimThread"):
        if self.owner is None:
            self.owner = thread
            self.acquisitions += 1
            return BlockResult.COMPLETED, None
        if self.owner is thread:
            raise SimulationError(
                f"{thread} recursively acquiring {self.name}")
        self.contentions += 1
        self.waiters.block(thread)
        return BlockResult.BLOCKED, None

    def _do_release(self, engine: "Engine", thread: "SimThread"):
        if self.owner is not thread:
            raise SimulationError(
                f"{thread} releasing {self.name} owned by {self.owner}")
        nxt = self.waiters.pop_waiter()
        if nxt is None:
            self.owner = None
        else:
            # Direct handoff: the woken thread owns the lock when it
            # resumes.  Whether it runs soon is up to the scheduler.
            self.owner = nxt
            self.acquisitions += 1
            nxt.set_wake_value(None)
            engine.wake_thread(nxt, waker=thread)
        return BlockResult.COMPLETED, None


class _AcquireAction(SyncAction):
    __slots__ = ("mutex",)

    def __init__(self, mutex: Mutex):
        self.mutex = mutex

    def apply(self, engine, thread):
        return self.mutex._do_acquire(engine, thread)


class _ReleaseAction(SyncAction):
    __slots__ = ("mutex",)

    def __init__(self, mutex: Mutex):
        self.mutex = mutex

    def apply(self, engine, thread):
        return self.mutex._do_release(engine, thread)
