"""A bounded, blocking pipe (hackbench's communication primitive).

Messages are opaque; capacity is counted in messages.  Writers block
when the pipe is full, readers when it is empty.  Each successful write
wakes one reader and vice versa, generating exactly the wakeup storms
hackbench uses to stress a scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from ..core.actions import BlockResult, SyncAction
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class Pipe:
    """A bounded message pipe with blocking read/write."""

    __slots__ = ("engine", "name", "capacity", "buffer", "readers",
                 "writers", "_pending_writes", "messages_written",
                 "messages_read")

    def __init__(self, engine: "Engine", capacity: int = 16,
                 name: str = "pipe"):
        if capacity < 1:
            raise ValueError("pipe capacity must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.buffer: deque[Any] = deque()
        self.readers = WaitQueue(engine, f"{name}.readers")
        self.writers = WaitQueue(engine, f"{name}.writers")
        #: pending messages of blocked writers, in waiter order
        self._pending_writes: deque[Any] = deque()
        self.messages_written = 0
        self.messages_read = 0

    def write(self, message: Any = None) -> "_WriteAction":
        """Action: append ``message``; blocks while full."""
        return _WriteAction(self, message)

    def read(self) -> "_ReadAction":
        """Action: remove and return the oldest message; blocks while
        empty.  The ``yield`` evaluates to the message."""
        return _ReadAction(self)

    # -- internals ----------------------------------------------------

    def _do_write(self, engine, thread, message):
        reader = self.readers.pop_waiter()
        if reader is not None:
            # Hand the message straight to a blocked reader.
            self.messages_written += 1
            self.messages_read += 1
            reader.set_wake_value(message)
            engine.wake_thread(reader, waker=thread)
            return BlockResult.COMPLETED, None
        if len(self.buffer) >= self.capacity:
            self._pending_writes.append(message)
            self.writers.block(thread)
            return BlockResult.BLOCKED, None
        self._commit_write(message)
        return BlockResult.COMPLETED, None

    def _commit_write(self, message):
        self.buffer.append(message)
        self.messages_written += 1

    def _do_read(self, engine, thread):
        if not self.buffer:
            self.readers.block(thread)
            return BlockResult.BLOCKED, None
        message = self._take()
        self._admit_blocked_writer(engine, thread)
        return BlockResult.COMPLETED, message

    def _take(self):
        self.messages_read += 1
        return self.buffer.popleft()

    def _admit_blocked_writer(self, engine, reader):
        """A read freed a slot: complete the oldest blocked write."""
        writer = self.writers.pop_waiter()
        if writer is not None:
            self._commit_write(self._pending_writes.popleft())
            writer.set_wake_value(None)
            engine.wake_thread(writer, waker=reader)


class _WriteAction(SyncAction):
    __slots__ = ("pipe", "message")

    def __init__(self, pipe: Pipe, message: Any):
        self.pipe = pipe
        self.message = message

    def apply(self, engine, thread):
        return self.pipe._do_write(engine, thread, self.message)


class _ReadAction(SyncAction):
    __slots__ = ("pipe",)

    def __init__(self, pipe: Pipe):
        self.pipe = pipe

    def apply(self, engine, thread):
        return self.pipe._do_read(engine, thread)
