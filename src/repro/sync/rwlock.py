"""Reader-writer lock with writer preference.

Databases (MySQL's table locks, RocksDB's memtable switches) guard hot
structures with rwlocks; under a scheduler the interesting property is
that a single delayed *writer* stalls every reader behind it — a
convoy that amplifies any wake-to-run latency the scheduler adds.

Semantics: any number of concurrent readers; writers exclusive.
Writer preference: once a writer waits, new readers queue behind it
(no writer starvation).  FIFO handoff on release, like
:class:`~repro.sync.mutex.Mutex`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..core.actions import BlockResult, SyncAction
from ..core.errors import SimulationError
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class RWLock:
    """A reader-writer lock with writer preference."""

    __slots__ = ("engine", "name", "readers", "writer", "_waiters",
                 "_waitq", "read_acquisitions", "write_acquisitions")

    def __init__(self, engine: "Engine", name: str = "rwlock"):
        self.engine = engine
        self.name = name
        #: threads currently holding a read lock
        self.readers: set["SimThread"] = set()
        #: thread currently holding the write lock
        self.writer: Optional["SimThread"] = None
        #: blocked acquirers in arrival order: ("r"|"w", thread)
        self._waiters: deque[tuple] = deque()
        self._waitq = WaitQueue(engine, f"{name}.waiters")
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # -- actions ----------------------------------------------------------

    def acquire_read(self) -> "_AcquireRead":
        """Action: take a shared read lock (blocks behind writers)."""
        return _AcquireRead(self)

    def acquire_write(self) -> "_AcquireWrite":
        """Action: take the exclusive write lock."""
        return _AcquireWrite(self)

    def release(self) -> "_Release":
        """Action: release whichever lock the caller holds."""
        return _Release(self)

    # -- internals --------------------------------------------------------

    def _writer_waiting(self) -> bool:
        return any(kind == "w" for kind, _ in self._waiters)

    def _do_acquire_read(self, engine, thread):
        if self.writer is None and not self._writer_waiting():
            self.readers.add(thread)
            self.read_acquisitions += 1
            return BlockResult.COMPLETED, None
        self._waiters.append(("r", thread))
        self._waitq.block(thread)
        return BlockResult.BLOCKED, None

    def _do_acquire_write(self, engine, thread):
        if self.writer is None and not self.readers:
            self.writer = thread
            self.write_acquisitions += 1
            return BlockResult.COMPLETED, None
        self._waiters.append(("w", thread))
        self._waitq.block(thread)
        return BlockResult.BLOCKED, None

    def _do_release(self, engine, thread):
        if self.writer is thread:
            self.writer = None
        elif thread in self.readers:
            self.readers.discard(thread)
        else:
            raise SimulationError(
                f"{thread} releasing {self.name} it does not hold")
        self._admit(engine, thread)
        return BlockResult.COMPLETED, None

    def _admit(self, engine, releaser) -> None:
        """Hand the lock to the next waiters: either one writer, or
        every leading reader up to the next writer."""
        if self.writer is not None or not self._waiters:
            return
        kind, head = self._waiters[0]
        if kind == "w":
            if self.readers:
                return  # readers still draining
            self._waiters.popleft()
            self.writer = head
            self.write_acquisitions += 1
            self._wake(engine, releaser, head)
            return
        while self._waiters and self._waiters[0][0] == "r":
            _, reader = self._waiters.popleft()
            self.readers.add(reader)
            self.read_acquisitions += 1
            self._wake(engine, releaser, reader)

    def _wake(self, engine, releaser, thread) -> None:
        self._waitq.remove(thread)
        thread.set_wake_value(None)
        engine.wake_thread(thread, waker=releaser)


class _AcquireRead(SyncAction):
    __slots__ = ("lock",)

    def __init__(self, lock: RWLock):
        self.lock = lock

    def apply(self, engine, thread):
        """Shared acquisition; see RWLock."""
        return self.lock._do_acquire_read(engine, thread)


class _AcquireWrite(SyncAction):
    __slots__ = ("lock",)

    def __init__(self, lock: RWLock):
        self.lock = lock

    def apply(self, engine, thread):
        """Exclusive acquisition; see RWLock."""
        return self.lock._do_acquire_write(engine, thread)


class _Release(SyncAction):
    __slots__ = ("lock",)

    def __init__(self, lock: RWLock):
        self.lock = lock

    def apply(self, engine, thread):
        """Release and hand off; see RWLock."""
        return self.lock._do_release(engine, thread)
