"""Adaptive mutex: spin briefly, then sleep.

MySQL's InnoDB latches and most modern userspace mutexes
(PTHREAD_MUTEX_ADAPTIVE_NP, absl, parking-lot locks) spin for a bounded
window before blocking.  The distinction matters to schedulers: spin
time counts as *runtime* (pushing a ULE thread toward batch) while
blocked time counts as voluntary sleep (pushing it toward interactive)
— so the same contention profile can classify differently depending on
the lock implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import BlockResult, Run, SyncAction
from ..core.clock import usec
from .mutex import Mutex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class AdaptiveMutex(Mutex):
    """A mutex whose acquire spins up to ``spin_ns`` before sleeping.

    The spin is modelled as bounded retry rounds: burn a slice of CPU,
    re-check the lock, repeat until the spin budget is exhausted, then
    fall back to the sleeping FIFO queue of :class:`Mutex`.
    """

    __slots__ = ("spin_ns", "spin_rounds", "spin_acquires",
                 "slept_acquires")

    def __init__(self, engine: "Engine", spin_ns: int = usec(20),
                 spin_rounds: int = 4, name: str = "adaptive"):
        super().__init__(engine, name=name)
        self.spin_ns = spin_ns
        self.spin_rounds = spin_rounds
        self.spin_acquires = 0
        self.slept_acquires = 0

    def acquire_adaptive(self):
        """Behaviour fragment (``yield from``): spin-then-block
        acquisition.  The plain blocking ``yield lock.acquire()`` of
        :class:`Mutex` also remains available."""
        return self._adaptive_acquire()

    def _adaptive_acquire(self):
        chunk = max(1, self.spin_ns // max(1, self.spin_rounds))
        for _ in range(self.spin_rounds):
            got = yield _TryAcquire(self)
            if got:
                return
            yield Run(chunk)  # spinning burns CPU (counts as runtime)
        # spin budget exhausted: block like a plain mutex
        got = yield _TryAcquire(self)
        if got:
            return
        yield _SleepAcquire(self)

    # -- internals ------------------------------------------------------

    def _try(self, thread) -> bool:
        if self.owner is None:
            self.owner = thread
            self.acquisitions += 1
            self.spin_acquires += 1
            return True
        return False


class _TryAcquire(SyncAction):
    __slots__ = ("mutex",)

    def __init__(self, mutex: AdaptiveMutex):
        self.mutex = mutex

    def apply(self, engine, thread):
        return BlockResult.COMPLETED, self.mutex._try(thread)


class _SleepAcquire(SyncAction):
    __slots__ = ("mutex",)

    def __init__(self, mutex: AdaptiveMutex):
        self.mutex = mutex

    def apply(self, engine, thread):
        self.mutex.slept_acquires += 1
        return self.mutex._do_acquire(engine, thread)
