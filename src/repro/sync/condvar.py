"""Condition variable with wait morphing.

``wait(mutex)`` atomically releases the mutex and blocks; ``signal``
does not wake the thread directly — it *morphs* the waiter onto the
mutex's wait queue (or grants the mutex when free), so the woken thread
owns the mutex when it resumes, like a well-implemented pthread
condvar.  ``broadcast`` morphs every waiter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import BlockResult, SyncAction
from ..core.errors import SimulationError
from .mutex import Mutex
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class CondVar:
    """A condition variable bound to callers' mutexes at wait time."""

    __slots__ = ("engine", "name", "waiters", "_mutex_of")

    def __init__(self, engine: "Engine", name: str = "cond"):
        self.engine = engine
        self.name = name
        self.waiters = WaitQueue(engine, f"{name}.waiters")
        self._mutex_of: dict[int, Mutex] = {}

    def wait(self, mutex: Mutex) -> "_CondWaitAction":
        """Action: release ``mutex``, block until signalled, reacquire
        ``mutex`` before resuming."""
        return _CondWaitAction(self, mutex)

    def signal(self) -> "_CondSignalAction":
        """Action: release one waiter (to the mutex queue)."""
        return _CondSignalAction(self, broadcast=False)

    def broadcast(self) -> "_CondSignalAction":
        """Action: release all waiters (to the mutex queue)."""
        return _CondSignalAction(self, broadcast=True)

    # -- internals --------------------------------------------------------

    def _do_wait(self, engine, thread, mutex):
        if mutex.owner is not thread:
            raise SimulationError(
                f"{thread} cond-waiting without owning {mutex.name}")
        self._mutex_of[thread.tid] = mutex
        # Release the mutex (may hand it off and wake a lock waiter).
        mutex._do_release(engine, thread)
        self.waiters.block(thread)
        return BlockResult.BLOCKED, None

    def _morph_one(self, engine, signaller) -> bool:
        waiter = self.waiters.pop_waiter()
        if waiter is None:
            return False
        mutex = self._mutex_of.pop(waiter.tid)
        if mutex.owner is None:
            mutex.owner = waiter
            mutex.acquisitions += 1
            waiter.set_wake_value(None)
            engine.wake_thread(waiter, waker=signaller)
        else:
            # Wait morphing: sleep on the mutex instead of waking.
            mutex.contentions += 1
            mutex.waiters.add_sleeper(waiter)
        return True

    def _do_signal(self, engine, thread, broadcast):
        if broadcast:
            while self._morph_one(engine, thread):
                pass
        else:
            self._morph_one(engine, thread)
        return BlockResult.COMPLETED, None


class _CondWaitAction(SyncAction):
    __slots__ = ("cond", "mutex")

    def __init__(self, cond: CondVar, mutex: Mutex):
        self.cond = cond
        self.mutex = mutex

    def apply(self, engine, thread):
        return self.cond._do_wait(engine, thread, self.mutex)


class _CondSignalAction(SyncAction):
    __slots__ = ("cond", "broadcast")

    def __init__(self, cond: CondVar, broadcast: bool):
        self.cond = cond
        self.broadcast = broadcast

    def apply(self, engine, thread):
        return self.cond._do_signal(engine, thread, self.broadcast)
