"""Counting semaphore and one-shot event primitives."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import BlockResult, SyncAction
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class Semaphore:
    """A counting semaphore with FIFO wakeups."""

    __slots__ = ("engine", "name", "value", "waiters")

    def __init__(self, engine: "Engine", value: int = 0,
                 name: str = "sem"):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.engine = engine
        self.name = name
        self.value = value
        self.waiters = WaitQueue(engine, f"{name}.waiters")

    def down(self) -> "_DownAction":
        """Action: decrement, blocking while the count is zero."""
        return _DownAction(self)

    def up(self, count: int = 1) -> "_UpAction":
        """Action: increment by ``count``, waking up to ``count``
        waiters."""
        return _UpAction(self, count)

    def _do_down(self, engine, thread):
        if self.value > 0:
            self.value -= 1
            return BlockResult.COMPLETED, None
        self.waiters.block(thread)
        return BlockResult.BLOCKED, None

    def _do_up(self, engine, thread, count):
        for _ in range(count):
            woken = self.waiters.wake_one(waker=thread)
            if woken is None:
                self.value += 1
        return BlockResult.COMPLETED, None


class _DownAction(SyncAction):
    __slots__ = ("sem",)

    def __init__(self, sem: Semaphore):
        self.sem = sem

    def apply(self, engine, thread):
        return self.sem._do_down(engine, thread)


class _UpAction(SyncAction):
    __slots__ = ("sem", "count")

    def __init__(self, sem: Semaphore, count: int):
        self.sem = sem
        self.count = count

    def apply(self, engine, thread):
        return self.sem._do_up(engine, thread, self.count)


class OneShotEvent:
    """A latch: waiters block until the first ``set``; afterwards waits
    complete immediately.  Used to build wake-up chains (the cascading
    barrier of c-ray wakes thread *i+1* from thread *i*)."""

    __slots__ = ("engine", "name", "is_set", "waiters")

    def __init__(self, engine: "Engine", name: str = "event"):
        self.engine = engine
        self.name = name
        self.is_set = False
        self.waiters = WaitQueue(engine, f"{name}.waiters")

    def wait(self) -> "_WaitAction":
        """Action: block until the event is set."""
        return _WaitAction(self)

    def fire(self) -> "_FireAction":
        """Action: set the event and wake all waiters."""
        return _FireAction(self)

    def _do_wait(self, engine, thread):
        if self.is_set:
            return BlockResult.COMPLETED, None
        self.waiters.block(thread)
        return BlockResult.BLOCKED, None

    def _do_fire(self, engine, thread):
        self.is_set = True
        self.waiters.wake_all(waker=thread)
        return BlockResult.COMPLETED, None


class _WaitAction(SyncAction):
    __slots__ = ("event",)

    def __init__(self, event: OneShotEvent):
        self.event = event

    def apply(self, engine, thread):
        return self.event._do_wait(engine, thread)


class _FireAction(SyncAction):
    __slots__ = ("event",)

    def __init__(self, event: OneShotEvent):
        self.event = event

    def apply(self, engine, thread):
        return self.event._do_fire(engine, thread)
