"""Synchronization primitives for simulated threads: wait queues,
mutexes, semaphores, events, pipes, barriers, condition variables, and
request channels."""

from .adaptive import AdaptiveMutex
from .barrier import Barrier, CascadingBarrier
from .channel import Channel
from .condvar import CondVar
from .mutex import Mutex
from .pipe import Pipe
from .rwlock import RWLock
from .semaphore import OneShotEvent, Semaphore
from .waitqueue import WaitQueue

__all__ = [
    "WaitQueue",
    "AdaptiveMutex",
    "Mutex",
    "Semaphore",
    "OneShotEvent",
    "Pipe",
    "RWLock",
    "Barrier",
    "CascadingBarrier",
    "CondVar",
    "Channel",
]
