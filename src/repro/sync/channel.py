"""An unbounded message channel (request queue).

The client/server workloads (apache's ab→httpd, sysbench's dispatcher→
worker threads) are closed-loop request systems: a channel carries
requests to a pool of workers that block on :meth:`get` while idle.
``put`` wakes exactly one blocked worker — the 1-to-many wakeup pattern
CFS's placement heuristics try to detect.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from ..core.actions import BlockResult, SyncAction
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class Channel:
    """Unbounded FIFO of messages with blocking ``get``."""

    __slots__ = ("engine", "name", "queue", "getters", "puts", "gets")

    def __init__(self, engine: "Engine", name: str = "chan"):
        self.engine = engine
        self.name = name
        self.queue: deque[Any] = deque()
        self.getters = WaitQueue(engine, f"{name}.getters")
        self.puts = 0
        self.gets = 0

    def put(self, message: Any = None) -> "_PutAction":
        """Action: enqueue ``message``, waking one blocked getter."""
        return _PutAction(self, message)

    def get(self) -> "_GetAction":
        """Action: dequeue a message, blocking while empty.  The
        ``yield`` evaluates to the message."""
        return _GetAction(self)

    def __len__(self) -> int:
        return len(self.queue)

class _PutAction(SyncAction):
    __slots__ = ("chan", "message")

    def __init__(self, chan: Channel, message: Any):
        self.chan = chan
        self.message = message

    def apply(self, engine, thread):
        # the put/get bodies live in apply: one dispatch per operation
        # on the hackbench-shaped hot path
        chan = self.chan
        chan.puts += 1
        getter = chan.getters.pop_waiter()
        if getter is not None:
            # Hand the message directly to the blocked getter.
            chan.gets += 1
            getter.set_wake_value(self.message)
            engine.wake_thread(getter, waker=thread)
        else:
            chan.queue.append(self.message)
        return BlockResult.COMPLETED, None


class _GetAction(SyncAction):
    __slots__ = ("chan",)

    def __init__(self, chan: Channel):
        self.chan = chan

    def apply(self, engine, thread):
        chan = self.chan
        if chan.queue:
            chan.gets += 1
            return BlockResult.COMPLETED, chan.queue.popleft()
        chan.getters.block(thread)
        return BlockResult.BLOCKED, None
