"""Thread barriers.

Two flavours used by the paper's workloads:

* :class:`Barrier` — classic N-party barrier; the last arrival wakes
  everyone at once.  ``spin_ns`` models the hybrid spin-then-sleep
  barriers of the NAS kernels (MG spins ~100 ms before sleeping —
  §6.3): arrivals burn CPU for up to ``spin_ns`` before blocking, and
  count as *running* during the spin (which matters for ULE's
  interactivity classification).
* :class:`CascadingBarrier` — c-ray's barrier (§6.2): when released,
  thread 0 wakes thread 1, thread 1 wakes thread 2, ...  A freshly
  woken thread must itself be *scheduled* before it can wake its
  successor, so a scheduler that starves a thread in the chain delays
  every thread behind it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import BlockResult, Run, SyncAction
from .waitqueue import WaitQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class Barrier:
    """N-party reusable barrier with broadcast release."""

    __slots__ = ("engine", "name", "parties", "spin_ns", "waiters",
                 "arrived", "generation")

    def __init__(self, engine: "Engine", parties: int,
                 name: str = "barrier", spin_ns: int = 0):
        if parties < 1:
            raise ValueError("barrier needs >= 1 parties")
        self.engine = engine
        self.name = name
        self.parties = parties
        self.spin_ns = spin_ns
        self.waiters = WaitQueue(engine, f"{name}.waiters")
        self.arrived = 0
        self.generation = 0

    def wait(self):
        """Behaviour fragment: arrive at the barrier.

        Returns a generator to be ``yield from``-ed (it may emit a spin
        Run before blocking).
        """
        if self.spin_ns > 0:
            return self._wait_with_spin()
        return self._wait_plain()

    def _wait_plain(self):
        yield _ArriveAction(self, block=True)

    def _wait_with_spin(self):
        # Arrive first (a spin barrier publishes arrival immediately),
        # then burn CPU polling; fall back to sleeping only when the
        # spin window expires — MG's behaviour in §6.3.
        gen = self.generation
        released = yield _ArriveAction(self, block=False)
        if released:
            return
        chunk = max(1, self.spin_ns // 8)
        spent = 0
        while spent < self.spin_ns and self.generation == gen:
            yield Run(chunk)
            spent += chunk
        if self.generation == gen:
            yield _SpinSleepAction(self, gen)

    def _do_arrive(self, engine, thread, block):
        self.arrived += 1
        if self.arrived >= self.parties:
            self.arrived = 0
            self.generation += 1
            self.waiters.wake_all(waker=thread)
            return BlockResult.COMPLETED, True
        if block:
            self.waiters.block(thread)
            return BlockResult.BLOCKED, None
        return BlockResult.COMPLETED, False

    def _do_spin_sleep(self, engine, thread, gen):
        if self.generation != gen:
            return BlockResult.COMPLETED, None
        self.waiters.block(thread)
        return BlockResult.BLOCKED, None


class _ArriveAction(SyncAction):
    __slots__ = ("barrier", "block")

    def __init__(self, barrier: Barrier, block: bool):
        self.barrier = barrier
        self.block = block

    def apply(self, engine, thread):
        return self.barrier._do_arrive(engine, thread, self.block)


class _SpinSleepAction(SyncAction):
    __slots__ = ("barrier", "gen")

    def __init__(self, barrier: Barrier, gen: int):
        self.barrier = barrier
        self.gen = gen

    def apply(self, engine, thread):
        return self.barrier._do_spin_sleep(engine, thread, self.gen)


class CascadingBarrier:
    """A barrier whose release is a serial wakeup chain.

    Threads join with an index; the release order follows the index.
    ``wait(i)`` blocks until released; once thread *i* resumes it wakes
    thread *i+1* (the wake happens in thread *i*'s context when it is
    next scheduled, which is the point of the c-ray experiment).
    """

    __slots__ = ("engine", "name", "parties", "arrived", "released",
                 "_sleepers", "_release_index", "wake_times")

    def __init__(self, engine: "Engine", parties: int,
                 name: str = "cascade"):
        if parties < 1:
            raise ValueError("cascading barrier needs >= 1 parties")
        self.engine = engine
        self.name = name
        self.parties = parties
        self.arrived = 0
        self.released = False
        self._sleepers: dict[int, "SimThread"] = {}
        #: index of the (never-slept) releasing party
        self._release_index: Optional[int] = None
        #: time each thread was woken, for the Fig. 7 analysis
        self.wake_times: dict[int, int] = {}

    def wait(self, index: int):
        """Behaviour fragment (``yield from``): arrive as party
        ``index``; on resume, wake party ``index + 1``."""
        yield _CascadeArrive(self, index)
        # Scheduled again after release: wake the successor.
        yield _CascadeWakeNext(self, index)

    def _do_arrive(self, engine, thread, index):
        if index in self._sleepers:
            raise ValueError(f"duplicate cascade index {index}")
        self.arrived += 1
        if self.arrived >= self.parties:
            # Last arrival: release the chain starting at index 0
            # without blocking itself.  Its own wake-next is a no-op;
            # the chain walks past it when it gets there.
            self.released = True
            self._release_index = index
            self.wake_times[index] = engine.now
            self._wake_index(engine, thread, 0)
            return BlockResult.COMPLETED, None
        self._sleepers[index] = thread
        from ..core.thread import ThreadState
        core = engine.machine.cores[thread.cpu]
        engine.block_current(core, ThreadState.BLOCKED)
        return BlockResult.BLOCKED, None

    def _wake_index(self, engine, waker, index):
        # Wake the first sleeping party at or after ``index``, skipping
        # the releaser (who never slept).
        while index < self.parties:
            sleeper = self._sleepers.pop(index, None)
            if sleeper is not None:
                self.wake_times[index] = engine.now
                sleeper.set_wake_value(None)
                engine.wake_thread(sleeper, waker=waker)
                return
            if index == self._release_index:
                index += 1
                continue
            return

    def _do_wake_next(self, engine, thread, index):
        if index != self._release_index:
            self._wake_index(engine, thread, index + 1)
        return BlockResult.COMPLETED, None


class _CascadeArrive(SyncAction):
    __slots__ = ("barrier", "index")

    def __init__(self, barrier: CascadingBarrier, index: int):
        self.barrier = barrier
        self.index = index

    def apply(self, engine, thread):
        return self.barrier._do_arrive(engine, thread, self.index)


class _CascadeWakeNext(SyncAction):
    __slots__ = ("barrier", "index")

    def __init__(self, barrier: CascadingBarrier, index: int):
        self.barrier = barrier
        self.index = index

    def apply(self, engine, thread):
        return self.barrier._do_wake_next(engine, thread, self.index)
