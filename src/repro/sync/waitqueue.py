"""FIFO wait queues — the building block of every blocking primitive.

A :class:`WaitQueue` holds blocked threads in arrival order.  Waking a
thread hands it an optional value (delivered to its behaviour as the
result of the blocking ``yield``) and routes through the engine's
wakeup path, so scheduler placement and wakeup-preemption logic run
exactly as for any other wakeup.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from ..core.thread import ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class WaitQueue:
    """An ordered queue of blocked threads."""

    __slots__ = ("engine", "name", "_waiters")

    def __init__(self, engine: "Engine", name: str = "waitq"):
        self.engine = engine
        self.name = name
        self._waiters: deque["SimThread"] = deque()

    def __len__(self) -> int:
        return len(self._waiters)

    def __bool__(self) -> bool:
        return bool(self._waiters)

    def block(self, thread: "SimThread") -> None:
        """Block the (currently running) thread on this queue."""
        core = self.engine.machine.cores[thread.cpu]
        self._waiters.append(thread)
        self.engine.block_current(core, ThreadState.BLOCKED)

    def add_sleeper(self, thread: "SimThread") -> None:
        """Move an *already blocked* thread onto this queue (used by
        condition-variable wait morphing)."""
        self._waiters.append(thread)

    def wake_one(self, waker: Optional["SimThread"] = None,
                 value: Any = None) -> Optional["SimThread"]:
        """Wake the oldest waiter, delivering ``value``."""
        if not self._waiters:
            return None
        thread = self._waiters.popleft()
        thread.set_wake_value(value)
        self.engine.wake_thread(thread, waker=waker)
        return thread

    def wake_all(self, waker: Optional["SimThread"] = None,
                 value: Any = None) -> list["SimThread"]:
        """Wake every waiter in FIFO order."""
        woken = []
        while self._waiters:
            woken.append(self.wake_one(waker=waker, value=value))
        return woken

    def pop_waiter(self) -> Optional["SimThread"]:
        """Remove and return the oldest waiter *without* waking it
        (wait morphing: the caller re-blocks it elsewhere)."""
        return self._waiters.popleft() if self._waiters else None

    def remove(self, thread: "SimThread") -> bool:
        """Remove a specific thread (e.g. wait cancellation)."""
        try:
            self._waiters.remove(thread)
            return True
        except ValueError:
            return False
