"""Lightweight metric collection.

The engine and workloads record scalar counters, latency samples, and
time series through a single :class:`MetricRegistry`.  Everything is
plain Python so experiments can introspect results without a storage
backend.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Optional


class LatencyRecorder:
    """Accumulates duration samples and reports summary statistics."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: list[int] = []

    def record(self, value: int) -> None:
        """Add one duration sample (nanoseconds)."""
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> int:
        return sum(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def max(self) -> int:
        return max(self.samples) if self.samples else 0


class TimeSeries:
    """A series of ``(time_ns, value)`` observations."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[int] = []
        self.values: list[float] = []

    def record(self, time_ns: int, value: float) -> None:
        """Append an observation (times must be non-decreasing)."""
        self.times.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> Optional[tuple[int, float]]:
        """The most recent ``(time, value)``, or None when empty."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def value_at(self, time_ns: int) -> Optional[float]:
        """Most recent value at or before ``time_ns`` (step semantics)."""
        result = None
        for t, v in zip(self.times, self.values):
            if t > time_ns:
                break
            result = v
        return result


class MetricRegistry:
    """Namespace of counters, latency recorders, and time series."""

    __slots__ = ("counters", "_latencies", "_series")

    def __init__(self):
        self.counters: dict[str, float] = defaultdict(float)
        self._latencies: dict[str, LatencyRecorder] = {}
        self._series: dict[str, TimeSeries] = {}

    # counters ----------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never touched)."""
        return self.counters.get(name, 0.0)

    # latencies ---------------------------------------------------------

    def latency(self, name: str) -> LatencyRecorder:
        """The recorder named ``name``, created on first use."""
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def latencies(self) -> Iterable[LatencyRecorder]:
        """All latency recorders."""
        return self._latencies.values()

    # series ------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """The time series named ``name``, created on first use."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def series_names(self) -> list[str]:
        """Names of all recorded series, sorted."""
        return sorted(self._series)

    def has_series(self, name: str) -> bool:
        """True when a series named ``name`` was recorded."""
        return name in self._series
