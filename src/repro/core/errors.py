"""Exception hierarchy for the simulator.

Every error raised by the library derives from :class:`SimulationError`
so callers can catch library failures without catching programming
mistakes such as ``TypeError``.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the repro simulator."""


class SchedulerError(SimulationError):
    """A scheduler implementation violated its contract."""


class ThreadStateError(SimulationError):
    """An operation was applied to a thread in an incompatible state."""


class TopologyError(SimulationError):
    """The machine topology description is malformed."""


class WorkloadError(SimulationError):
    """A workload description is malformed or behaved illegally."""


class ExperimentError(SimulationError):
    """An experiment driver was configured inconsistently."""


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked."""
