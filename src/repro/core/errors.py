"""Exception hierarchy for the simulator.

Every error raised by the library derives from :class:`SimulationError`
so callers can catch library failures without catching programming
mistakes such as ``TypeError``.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the repro simulator."""


class SchedulerError(SimulationError):
    """A scheduler implementation violated its contract."""


class ThreadStateError(SimulationError):
    """An operation was applied to a thread in an incompatible state."""


class TopologyError(SimulationError):
    """The machine topology description is malformed."""


class WorkloadError(SimulationError):
    """A workload description is malformed or behaved illegally."""


class ExperimentError(SimulationError):
    """An experiment driver was configured inconsistently."""


class DeadlockError(SimulationError):
    """The event queue drained while threads were still blocked."""


class SanitizerError(SimulationError):
    """A runtime invariant check failed (``REPRO_SANITIZE=1`` mode).

    Carries the failed invariant, the simulated time/core/event at
    which it tripped, and the last few trace records so the violation
    can be localized without re-running under a debugger.
    """

    def __init__(self, invariant: str, message: str, *,
                 time_ns: int = 0, cpu=None, event: str = "",
                 trace=()):
        self.invariant = invariant
        self.time_ns = time_ns
        self.cpu = cpu
        self.event = event
        self.trace = tuple(trace)
        where = f"t={time_ns}ns"
        if cpu is not None:
            where += f" cpu{cpu}"
        if event:
            where += f" after {event}"
        lines = [f"[{invariant}] {message} ({where})"]
        if self.trace:
            lines.append("recent trace:")
            lines.extend(f"  {entry}" for entry in self.trace)
        super().__init__("\n".join(lines))
