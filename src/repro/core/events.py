"""The discrete-event queue.

Two interchangeable implementations share the :class:`Event` type and
the queue API (``post`` / ``repost`` / ``make_reusable`` / ``cancel`` /
``pop`` / ``peek_time`` / ``len``):

* :class:`EventQueue` — a binary heap.  Simple, obviously correct, and
  the *reference implementation* for differential testing.
* :class:`~repro.core.timerwheel.TimingWheelQueue` — a hierarchical
  timing wheel (Linux ``timer_wheel`` style) with O(1) posting into
  near-future slots, an overflow heap for far-future events, and
  cascading on advance.  The engine's default; see
  ``docs/performance.md``.

Both pop events in exactly ``(time, seq)`` order, so every schedule —
and therefore every digest in ``tests/golden/`` — is identical under
either queue (``tests/test_eventq_differential.py`` enforces this).

Shared design points:

* **Tuple entries.**  Internally both queues store ``(time, seq,
  event)`` tuples, so heap sift comparisons happen on C-level tuples
  instead of calling ``Event.__lt__`` — a large constant-factor win on
  the hottest path in the simulator.
* **Lazy cancellation.**  ``cancel()`` marks the event dead in O(1);
  dead entries are skipped on pop and reclaimed by compaction once
  they outnumber the live ones.  Accounting is *subtractive*:
  compaction decrements the dead counter by the number of entries it
  actually removed, never resets it to zero, so a dead entry that
  currently sits in a different region (e.g. moved by a timing-wheel
  cascade) cannot be double-counted as reclaimed.  Compaction also
  filters container lists **in place** (``list[:] = ...``) so hoisted
  aliases held across a cascade or pop loop can never go stale.
* **Reusable events.**  Recurring fixed-callback events — the per-core
  scheduler tick, the resched IPI — go through
  :meth:`EventQueue.repost` instead of allocating a fresh ``Event``
  (and formatting a fresh label) every period.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events fire in ``(time, seq)`` order, so simultaneous events fire
    in posting order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "popped", "label", "_queue", "_region")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple, label: str = "",
                 queue=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been returned by :meth:`EventQueue.pop`
        self.popped = False
        self.label = label
        self._queue = queue
        #: which region of the owning queue currently holds the entry
        #: (only the timing wheel distinguishes regions; the heap
        #: ignores it).  See ``timerwheel._REGION_*``.
        self._region = 0

    def cancel(self) -> bool:
        """Logically remove the event; it will be skipped when popped.

        Returns ``True`` when the event was live and is now cancelled.
        Cancelling twice, cancelling an event that has already fired,
        or cancelling a :meth:`EventQueue.make_reusable` event that was
        never scheduled is a documented no-op returning ``False`` — it
        never double-decrements the queue's live count.  Fault
        injection relies on this: dropping a resched IPI cancels the
        pending event without caring whether it already fired.
        """
        if self.cancelled or self.popped:
            return False
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel(self)
        return True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} {self.label}{state}>"


class EventQueue:
    """Binary heap of ``(time, seq, event)`` entries — the reference
    event-queue implementation."""

    __slots__ = ("_heap", "_seq", "_live", "_dead_in_heap")

    def __init__(self):
        self._heap: list[tuple] = []
        self._seq = 0
        #: number of posted, not-yet-popped, not-cancelled events
        self._live = 0
        #: cancelled events still sitting in the heap
        self._dead_in_heap = 0

    def post(self, time: int, callback: Callable[..., Any], *args,
             label: str = "") -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a handle
        whose ``cancel()`` unschedules it."""
        self._seq += 1
        event = Event(time, self._seq, callback, args, label, queue=self)
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def repost(self, event: Event, time: int) -> Event:
        """Re-arm a recurring event that has already fired.

        The event keeps its callback, args, and label; it gets a fresh
        sequence number so same-instant FIFO ordering is identical to
        posting a brand-new event.  The caller must guarantee the event
        is not currently in the heap (i.e. it was popped, or never
        posted).  This is the allocation-free path for per-core ticks.
        """
        self._seq += 1
        event.time = time
        event.seq = self._seq
        event.cancelled = False
        event.popped = False
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def make_reusable(self, callback: Callable[..., Any], *args,
                      label: str = "") -> Event:
        """Create an unscheduled event for later :meth:`repost` calls."""
        event = Event(0, 0, callback, args, label, queue=self)
        event.popped = True  # not in the heap yet
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is exhausted."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event.popped = True
                self._live -= 1
                return event
            self._dead_in_heap -= 1
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry[0]
            heapq.heappop(heap)
            self._dead_in_heap -= 1
        return None

    def pop_before(self, limit: Optional[int]) -> Optional[Event]:
        """Fused peek + pop for the engine's run loop: remove and
        return the earliest live event unless its time exceeds
        ``limit`` (``None`` = no limit), in which case it stays queued
        and ``None`` is returned.  One heap traversal instead of the
        peek_time()/pop() pair."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                self._dead_in_heap -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            heappop(heap)
            event.popped = True
            self._live -= 1
            return event
        return None

    def _note_cancel(self, event: Event) -> None:
        """Account for a just-cancelled in-queue event (called from
        :meth:`Event.cancel` exactly once per live event)."""
        self._live -= 1
        self._dead_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones
        (and the heap is big enough for the O(n) rebuild to pay off).

        Filters in place and subtracts the number of entries actually
        removed (see the module docstring) so the accounting stays
        correct no matter where compaction is triggered from.
        """
        heap = self._heap
        if self._dead_in_heap <= 64 or self._dead_in_heap * 2 <= len(heap):
            return
        before = len(heap)
        heap[:] = [e for e in heap if not e[2].cancelled]
        heapq.heapify(heap)
        self._dead_in_heap -= before - len(heap)

    def _check_accounting(self) -> None:
        """Debug/test helper: verify counters against the actual heap
        contents; raises ``AssertionError`` on drift."""
        dead = sum(1 for e in self._heap if e[2].cancelled)
        live = len(self._heap) - dead
        assert self._live == live, (self._live, live)
        assert self._dead_in_heap == dead, (self._dead_in_heap, dead)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
