"""The discrete-event queue.

A binary-heap event queue with stable FIFO ordering for events posted
at the same instant, O(1) logical cancellation, an O(1) live-event
count, and lazy compaction: cancelled events stay in the heap and are
skipped on pop, but once they outnumber the live ones the heap is
rebuilt so pathological cancel-heavy workloads (run-completion timers
racing preemptions) do not keep dead entries around forever.

Hot-path events that recur forever with a fixed callback — the
per-core scheduler tick, the resched IPI — can be *reused* through
:meth:`EventQueue.repost` instead of allocating a fresh ``Event`` (and
formatting a fresh label) every period.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so simultaneous events fire in
    posting order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "popped", "label", "_queue")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple, label: str = "",
                 queue: Optional["EventQueue"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been returned by :meth:`EventQueue.pop`
        self.popped = False
        self.label = label
        self._queue = queue

    def cancel(self) -> bool:
        """Logically remove the event; it will be skipped when popped.

        Returns ``True`` when the event was live and is now cancelled.
        Cancelling twice, cancelling an event that has already fired,
        or cancelling a :meth:`EventQueue.make_reusable` event that was
        never scheduled is a documented no-op returning ``False`` — it
        never double-decrements the queue's live count.  Fault
        injection relies on this: dropping a resched IPI cancels the
        pending event without caring whether it already fired.
        """
        if self.cancelled or self.popped:
            return False
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            queue._dead_in_heap += 1
            queue._maybe_compact()
        return True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} {self.label}{state}>"


class EventQueue:
    """Binary heap of :class:`Event` objects."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0
        #: number of posted, not-yet-popped, not-cancelled events
        self._live = 0
        #: cancelled events still sitting in the heap
        self._dead_in_heap = 0

    def post(self, time: int, callback: Callable[..., Any], *args,
             label: str = "") -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a handle
        whose ``cancel()`` unschedules it."""
        self._seq += 1
        event = Event(time, self._seq, callback, args, label, queue=self)
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def repost(self, event: Event, time: int) -> Event:
        """Re-arm a recurring event that has already fired.

        The event keeps its callback, args, and label; it gets a fresh
        sequence number so same-instant FIFO ordering is identical to
        posting a brand-new event.  The caller must guarantee the event
        is not currently in the heap (i.e. it was popped, or never
        posted).  This is the allocation-free path for per-core ticks.
        """
        self._seq += 1
        event.time = time
        event.seq = self._seq
        event.cancelled = False
        event.popped = False
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def make_reusable(self, callback: Callable[..., Any], *args,
                      label: str = "") -> Event:
        """Create an unscheduled event for later :meth:`repost` calls."""
        event = Event(0, 0, callback, args, label, queue=self)
        event.popped = True  # not in the heap yet
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event.popped = True
                self._live -= 1
                return event
            self._dead_in_heap -= 1
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._dead_in_heap -= 1
        return self._heap[0].time if self._heap else None

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones
        (and the heap is big enough for the O(n) rebuild to pay off)."""
        if self._dead_in_heap <= 64 or \
                self._dead_in_heap * 2 <= len(self._heap):
            return
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead_in_heap = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None
