"""The discrete-event queue.

Two interchangeable implementations share the :class:`Event` type and
the queue API (``post`` / ``repost`` / ``make_reusable`` / ``cancel`` /
``pop`` / ``peek_time`` / ``len``):

* :class:`EventQueue` — a binary heap.  Simple, obviously correct, and
  the *reference implementation* for differential testing.
* :class:`~repro.core.timerwheel.TimingWheelQueue` — a hierarchical
  timing wheel (Linux ``timer_wheel`` style) with O(1) posting into
  near-future slots, an overflow heap for far-future events, and
  cascading on advance.  The engine's default; see
  ``docs/performance.md``.

Both pop events in exactly ``(time, seq)`` order, so every schedule —
and therefore every digest in ``tests/golden/`` — is identical under
either queue (``tests/test_eventq_differential.py`` enforces this).

Shared design points:

* **Tuple entries.**  Internally both queues store ``(time, seq,
  event)`` tuples, so heap sift comparisons happen on C-level tuples
  instead of calling ``Event.__lt__`` — a large constant-factor win on
  the hottest path in the simulator.
* **Lazy cancellation.**  ``cancel()`` marks the event dead in O(1);
  dead entries are skipped on pop and reclaimed by compaction once
  they outnumber the live ones.  Accounting is *subtractive*:
  compaction decrements the dead counter by the number of entries it
  actually removed, never resets it to zero, so a dead entry that
  currently sits in a different region (e.g. moved by a timing-wheel
  cascade) cannot be double-counted as reclaimed.  Compaction also
  filters container lists **in place** (``list[:] = ...``) so hoisted
  aliases held across a cascade or pop loop can never go stale.
* **Reusable events.**  Recurring fixed-callback events — the per-core
  scheduler tick, the resched IPI — go through
  :meth:`EventQueue.repost` instead of allocating a fresh ``Event``
  (and formatting a fresh label) every period.
* **The tick lane.**  :class:`EventLane` is a tiny sorted side queue
  the engine keeps *next to* the main queue for exactly those
  recurring events.  It draws sequence numbers from the main queue's
  counter (:meth:`EventQueue.reserve_seq`), so merging the lane head
  against the main head by ``(time, seq)`` reproduces the global pop
  order bit-for-bit while the heap/wheel never sees tick or IPI
  traffic at all.  See ``Engine._pop_next`` and docs/performance.md.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events fire in ``(time, seq)`` order, so simultaneous events fire
    in posting order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "popped", "label", "_queue", "_region")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple, label: str = "",
                 queue=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: True once the event has been returned by :meth:`EventQueue.pop`
        self.popped = False
        self.label = label
        self._queue = queue
        #: which region of the owning queue currently holds the entry
        #: (only the timing wheel distinguishes regions; the heap
        #: ignores it).  See ``timerwheel._REGION_*``.
        self._region = 0

    def cancel(self) -> bool:
        """Logically remove the event; it will be skipped when popped.

        Returns ``True`` when the event was live and is now cancelled.
        Cancelling twice, cancelling an event that has already fired,
        or cancelling a :meth:`EventQueue.make_reusable` event that was
        never scheduled is a documented no-op returning ``False`` — it
        never double-decrements the queue's live count.  Fault
        injection relies on this: dropping a resched IPI cancels the
        pending event without caring whether it already fired.
        """
        if self.cancelled or self.popped:
            return False
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel(self)
        return True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} {self.label}{state}>"


class EventQueue:
    """Binary heap of ``(time, seq, event)`` entries — the reference
    event-queue implementation."""

    __slots__ = ("_heap", "_seq", "_live", "_dead_in_heap")

    def __init__(self):
        self._heap: list[tuple] = []
        self._seq = 0
        #: number of posted, not-yet-popped, not-cancelled events
        self._live = 0
        #: cancelled events still sitting in the heap
        self._dead_in_heap = 0

    def post(self, time: int, callback: Callable[..., Any], *args,
             label: str = "") -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a handle
        whose ``cancel()`` unschedules it."""
        self._seq += 1
        event = Event(time, self._seq, callback, args, label, queue=self)
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def repost(self, event: Event, time: int) -> Event:
        """Re-arm a recurring event that has already fired.

        The event keeps its callback, args, and label; it gets a fresh
        sequence number so same-instant FIFO ordering is identical to
        posting a brand-new event.  The caller must guarantee the event
        is not currently in the heap (i.e. it was popped, or never
        posted).  This is the allocation-free path for per-core ticks.
        """
        self._seq += 1
        event.time = time
        event.seq = self._seq
        event.cancelled = False
        event.popped = False
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def make_reusable(self, callback: Callable[..., Any], *args,
                      label: str = "") -> Event:
        """Create an unscheduled event for later :meth:`repost` calls."""
        event = Event(0, 0, callback, args, label, queue=self)
        event.popped = True  # not in the heap yet
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is exhausted."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event.popped = True
                self._live -= 1
                return event
            self._dead_in_heap -= 1
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry[0]
            heapq.heappop(heap)
            self._dead_in_heap -= 1
        return None

    def pop_before(self, limit: Optional[int]) -> Optional[Event]:
        """Fused peek + pop for the engine's run loop: remove and
        return the earliest live event unless its time exceeds
        ``limit`` (``None`` = no limit), in which case it stays queued
        and ``None`` is returned.  One heap traversal instead of the
        peek_time()/pop() pair."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                self._dead_in_heap -= 1
                continue
            if limit is not None and entry[0] > limit:
                return None
            heappop(heap)
            event.popped = True
            self._live -= 1
            return event
        return None

    def peek_entry(self) -> Optional[tuple]:
        """The earliest live ``(time, seq, event)`` entry without
        removing it (drains dead heads like :meth:`peek_time`).  The
        tuple is the queue's own entry — callers must not mutate it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry
            heapq.heappop(heap)
            self._dead_in_heap -= 1
        return None

    def pop_head(self) -> Event:
        """Pop the live head that :meth:`peek_entry` just returned.

        Only valid immediately after a non-``None`` :meth:`peek_entry`
        with no intervening queue mutation — the dead-head drain has
        already run, so this is the single ``heappop`` the fused
        :meth:`pop_before` would do (the engine's merged lane/queue
        pop uses the pair to avoid scanning the heap twice)."""
        event = heapq.heappop(self._heap)[2]
        event.popped = True
        self._live -= 1
        return event

    def reserve_seq(self) -> int:
        """Draw the next sequence number without posting (the tick
        lane's ordering hook — see :class:`EventLane`)."""
        self._seq += 1
        return self._seq

    def clear(self) -> None:
        """Drop every entry and reset all counters — including the
        sequence counter, so a reused engine replays the exact seq
        stream a fresh one would (``Engine.reset``)."""
        self._heap.clear()
        self._seq = 0
        self._live = 0
        self._dead_in_heap = 0

    def _note_cancel(self, event: Event) -> None:
        """Account for a just-cancelled in-queue event (called from
        :meth:`Event.cancel` exactly once per live event)."""
        self._live -= 1
        self._dead_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries outnumber live ones
        (and the heap is big enough for the O(n) rebuild to pay off).

        Filters in place and subtracts the number of entries actually
        removed (see the module docstring) so the accounting stays
        correct no matter where compaction is triggered from.
        """
        heap = self._heap
        if self._dead_in_heap <= 64 or self._dead_in_heap * 2 <= len(heap):
            return
        before = len(heap)
        heap[:] = [e for e in heap if not e[2].cancelled]
        heapq.heapify(heap)
        self._dead_in_heap -= before - len(heap)

    def _check_accounting(self) -> None:
        """Debug/test helper: verify counters against the actual heap
        contents; raises ``AssertionError`` on drift."""
        dead = sum(1 for e in self._heap if e[2].cancelled)
        live = len(self._heap) - dead
        assert self._live == live, (self._live, live)
        assert self._dead_in_heap == dead, (self._dead_in_heap, dead)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class EventLane:
    """Sorted side lane for the engine's highest-frequency recurring
    events: the per-core scheduler ticks and resched IPIs.

    Those events dominate the main queue's population on tick-heavy
    workloads, and every one of them pays heap sift / wheel cascade
    cost twice (post + pop).  The lane keeps them in a plain sorted
    list instead — its population is bounded by ~2 entries per core,
    so an ``insort`` memmove is a handful of pointer moves and the
    head pop is O(1).

    Ordering contract: :meth:`repost` draws its sequence number from
    the owning main queue's shared counter
    (:meth:`EventQueue.reserve_seq`), at the same call sites a direct
    post would have — so the global ``(time, seq)`` order across both
    structures is *identical* to a single-queue run, and the engine's
    merged pop (``Engine._pop_next``) replays it bit-for-bit.  The
    digest-identity of lane-on vs lane-off runs is fuzzed by
    ``tests/test_epoch_tick.py``.

    Cancellation is lazy (:meth:`peek` skips dead heads); like the
    main queues, an event must never be reposted while a cancelled
    instance of it still sits in the lane (the engine's hotplug paths
    drop and re-create the event objects instead).
    """

    __slots__ = ("_entries", "_head", "_queue")

    def __init__(self, queue):
        #: sorted (time, seq, event) entries; consumed prefix kept
        #: until compaction
        self._entries: list[tuple] = []
        #: index of the first unconsumed entry
        self._head = 0
        #: the main queue whose seq counter this lane shares
        self._queue = queue

    def repost(self, event: Event, time: int) -> Event:
        """Re-arm a recurring event (same contract as
        :meth:`EventQueue.repost`), keeping it in the lane."""
        # reserve_seq() inlined: one draw per tick/resched repost
        queue = self._queue
        queue._seq = seq = queue._seq + 1
        event.time = time
        event.seq = seq
        event.cancelled = False
        event.popped = False
        event._queue = self
        entries = self._entries
        entry = (time, seq, event)
        if entries and entry < entries[-1]:
            insort(entries, entry, lo=self._head)
        else:
            entries.append(entry)
        return event

    def make_reusable(self, callback: Callable[..., Any], *args,
                      label: str = "") -> Event:
        """Create an unscheduled event for later :meth:`repost` calls."""
        event = Event(0, 0, callback, args, label, queue=self)
        event.popped = True  # not in the lane yet
        return event

    def peek(self) -> Optional[Event]:
        """The earliest live event without removing it (consumes dead
        heads); ``None`` when the lane holds no live entries."""
        entries = self._entries
        head = self._head
        n = len(entries)
        while head < n:
            event = entries[head][2]
            if not event.cancelled:
                self._head = head
                return event
            head += 1
        del entries[:]
        self._head = 0
        return None

    def pop_head(self) -> Event:
        """Pop the event the last :meth:`peek` returned."""
        head = self._head
        event = self._entries[head][2]
        head += 1
        if head >= 64:
            # compact the consumed prefix
            del self._entries[:head]
            head = 0
        self._head = head
        event.popped = True
        return event

    def epoch_cores(self, time: int) -> Optional[list]:
        """Cores of the ≥2 same-instant *tick* entries at the lane
        head, else ``None`` — the epoch-group probe behind the fused
        multi-core tick pass (``Engine._pop_next``).  O(1) when the
        head instant holds a single entry (the common case)."""
        entries = self._entries
        i = self._head + 1
        n = len(entries)
        if i >= n or entries[i][0] != time:
            return None
        cores = []
        head_event = entries[self._head][2]
        if not head_event.cancelled \
                and head_event.label.startswith("tick:"):
            cores.append(head_event.args[0])
        while i < n and entries[i][0] == time:
            event = entries[i][2]
            if not event.cancelled and event.label.startswith("tick:"):
                cores.append(event.args[0])
            i += 1
        return cores if len(cores) >= 2 else None

    def _note_cancel(self, event: Event) -> None:
        """Lazy cancellation: :meth:`peek` skips dead entries; nothing
        to account (the lane is outside the main queue's counters)."""

    def clear(self) -> None:
        """Drop every entry (``Engine.reset``)."""
        del self._entries[:]
        self._head = 0

    def __len__(self) -> int:
        return sum(1 for e in self._entries[self._head:]
                   if not e[2].cancelled)
