"""The discrete-event queue.

A simple binary-heap event queue with stable FIFO ordering for events
posted at the same instant, and O(1) logical cancellation (cancelled
events stay in the heap and are skipped on pop).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so simultaneous events fire in
    posting order, which keeps runs deterministic.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple, label: str = ""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Logically remove the event; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} {self.label}{state}>"


class EventQueue:
    """Binary heap of :class:`Event` objects."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0

    def post(self, time: int, callback: Callable[..., Any], *args,
             label: str = "") -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a handle
        whose ``cancel()`` unschedules it."""
        self._seq += 1
        event = Event(time, self._seq, callback, args, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is exhausted."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
