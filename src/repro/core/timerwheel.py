"""Hierarchical timing-wheel event queue (the engine's default).

The simulator's event population is bimodal: a dense cloud of
near-future events (ticks one period out, resched IPIs at the current
instant, run-completion timers a slice away) and a sparse tail of
far-future ones (second-scale sleeps).  A binary heap pays O(log n)
sift costs on every post and pop regardless; a timing wheel — the
structure Linux uses for its timer subsystem — makes the dense
near-future case O(1):

* time is divided into **slots** of ``2**SLOT_SHIFT`` ns; the wheel
  keeps ``NUM_SLOTS`` buckets covering the horizon
  ``[cursor, cursor + NUM_SLOTS)`` slots.  Posting into the horizon is
  a single ``list.append`` — no comparisons at all;
* events beyond the horizon go to an **overflow heap** and *cascade*
  into the wheel as the cursor advances toward them;
* the slot currently being drained is kept as a small **pending
  heap**, which restores exact ``(time, seq)`` order among the events
  of one slot and absorbs same-instant posts made *during* the drain
  (a resched IPI posted at ``now`` must fire before the next tick).

Pop order is exactly the heap queue's ``(time, seq)`` order, so every
schedule — and every golden digest — is identical under either
implementation; ``tests/test_eventq_differential.py`` fuzzes this
equivalence and :mod:`repro.benchmarks`' bench-smoke gate re-asserts
it in CI.

Cancellation is lazy in all three regions.  Each event records which
region holds it (``Event._region``) so the dead counters stay exact:
``_dead_in_heap`` counts dead entries in the overflow heap (the name
matches :class:`~repro.core.events.EventQueue` deliberately) and
``_dead_in_wheel`` counts dead entries in the slots and the pending
heap.  A cascade *drops* dead overflow entries instead of moving them.
Compaction follows the shared rules from :mod:`repro.core.events`:
filter in place, subtract what was actually removed — never reset a
counter to zero, because a compaction triggered between two cascade
steps would then erase dead entries it never looked at.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Optional

from .events import Event

#: log2 of the slot width in nanoseconds: 2**20 ns = 1.049 ms per
#: slot.  Scheduler periods (CFS 1 ms tick, ULE ~7.87 ms stathz) and
#: run slices land well inside the horizon below.
SLOT_SHIFT = 20

#: number of wheel buckets; the horizon is NUM_SLOTS slots ≈ 268 ms.
NUM_SLOTS = 256

_SLOT_MASK = NUM_SLOTS - 1

#: ``Event._region`` values (0 = not queued, shared with events.py)
_REGION_NONE = 0
_REGION_WHEEL = 1      # a slot bucket or the pending heap
_REGION_OVERFLOW = 2   # the far-future overflow heap


class TimingWheelQueue:
    """Drop-in :class:`~repro.core.events.EventQueue` replacement
    backed by a hierarchical timing wheel."""

    __slots__ = ("_slots", "_wheel_count", "_pending", "_overflow",
                 "_cursor", "_seq", "_live", "_dead_in_heap",
                 "_dead_in_wheel")

    def __init__(self):
        self._slots: list[list] = [[] for _ in range(NUM_SLOTS)]
        #: entries (live + dead) currently in slot buckets
        self._wheel_count = 0
        #: min-heap for the slot being drained (plus same-instant posts)
        self._pending: list[tuple] = []
        #: min-heap of entries at or beyond the horizon
        self._overflow: list[tuple] = []
        #: absolute index of the slot being drained
        self._cursor = 0
        self._seq = 0
        #: number of posted, not-yet-popped, not-cancelled events
        self._live = 0
        #: cancelled entries still in the overflow heap
        self._dead_in_heap = 0
        #: cancelled entries still in slot buckets or the pending heap
        self._dead_in_wheel = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def post(self, time: int, callback: Callable, *args,
             label: str = "") -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns a handle
        whose ``cancel()`` unschedules it."""
        seq = self._seq = self._seq + 1
        event = Event(time, seq, callback, args, label, queue=self)
        # _schedule inlined: post/repost are the engine's hottest
        # allocation sites.
        self._live += 1
        offset = (time >> SLOT_SHIFT) - self._cursor
        if 0 < offset < NUM_SLOTS:
            event._region = _REGION_WHEEL
            self._slots[(time >> SLOT_SHIFT) & _SLOT_MASK].append(
                (time, seq, event))
            self._wheel_count += 1
        elif offset <= 0:
            event._region = _REGION_WHEEL
            heappush(self._pending, (time, seq, event))
        else:
            event._region = _REGION_OVERFLOW
            heappush(self._overflow, (time, seq, event))
        return event

    def repost(self, event: Event, time: int) -> Event:
        """Re-arm a recurring event (same contract as
        :meth:`EventQueue.repost`: the event must not currently be
        queued)."""
        seq = self._seq = self._seq + 1
        event.time = time
        event.seq = seq
        event.cancelled = False
        event.popped = False
        event._queue = self
        # _schedule inlined (see post)
        self._live += 1
        offset = (time >> SLOT_SHIFT) - self._cursor
        if 0 < offset < NUM_SLOTS:
            event._region = _REGION_WHEEL
            self._slots[(time >> SLOT_SHIFT) & _SLOT_MASK].append(
                (time, seq, event))
            self._wheel_count += 1
        elif offset <= 0:
            event._region = _REGION_WHEEL
            heappush(self._pending, (time, seq, event))
        else:
            event._region = _REGION_OVERFLOW
            heappush(self._overflow, (time, seq, event))
        return event

    def make_reusable(self, callback: Callable, *args,
                      label: str = "") -> Event:
        """Create an unscheduled event for later :meth:`repost` calls."""
        event = Event(0, 0, callback, args, label, queue=self)
        event.popped = True  # not queued yet
        return event

    def _schedule(self, time: int, seq: int, event: Event) -> None:
        """Route an entry to pending / slot bucket / overflow."""
        self._live += 1
        slot = time >> SLOT_SHIFT
        offset = slot - self._cursor
        if offset <= 0:
            # Current (or, defensively, past) slot: joins the drain
            # heap so it still fires in exact (time, seq) order.
            event._region = _REGION_WHEEL
            heappush(self._pending, (time, seq, event))
        elif offset < NUM_SLOTS:
            event._region = _REGION_WHEEL
            self._slots[slot & _SLOT_MASK].append((time, seq, event))
            self._wheel_count += 1
        else:
            event._region = _REGION_OVERFLOW
            heappush(self._overflow, (time, seq, event))

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when
        the queue is exhausted."""
        pending = self._pending
        while True:
            while pending:
                event = heappop(pending)[2]
                if not event.cancelled:
                    event.popped = True
                    event._region = _REGION_NONE
                    self._live -= 1
                    return event
                self._dead_in_wheel -= 1
            if not self._advance():
                return None

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event without removing it."""
        pending = self._pending
        while True:
            while pending:
                entry = pending[0]
                if not entry[2].cancelled:
                    return entry[0]
                heappop(pending)
                self._dead_in_wheel -= 1
            if not self._advance():
                return None

    def peek_entry(self) -> Optional[tuple]:
        """The earliest live ``(time, seq, event)`` entry without
        removing it (drains dead heads and advances the cursor like
        :meth:`peek_time`); ``None`` when the queue is exhausted."""
        pending = self._pending
        while True:
            while pending:
                entry = pending[0]
                if not entry[2].cancelled:
                    return entry
                heappop(pending)
                self._dead_in_wheel -= 1
            if not self._advance():
                return None

    def pop_head(self) -> Event:
        """Pop the live head that :meth:`peek_entry` just returned
        (same contract as :meth:`EventQueue.pop_head`: only valid with
        no intervening mutation — ``_pending``'s head is known live)."""
        event = heappop(self._pending)[2]
        event.popped = True
        event._region = _REGION_NONE
        self._live -= 1
        return event

    def reserve_seq(self) -> int:
        """Draw the next sequence number for an entry scheduled
        outside this queue (the engine's :class:`EventLane` shares the
        counter so the global ``(time, seq)`` order is unchanged)."""
        self._seq += 1
        return self._seq

    def clear(self) -> None:
        """Drop every entry and reset all counters *including* the
        sequence counter, so a reused engine replays the exact seq
        stream a fresh one would (``Engine.reset``)."""
        for bucket in self._slots:
            bucket.clear()
        self._pending.clear()
        self._overflow.clear()
        self._wheel_count = 0
        self._cursor = 0
        self._seq = 0
        self._live = 0
        self._dead_in_heap = 0
        self._dead_in_wheel = 0

    def pop_before(self, limit: Optional[int]) -> Optional[Event]:
        """Fused peek + pop (same contract as
        :meth:`EventQueue.pop_before`): one drain pass instead of the
        peek_time()/pop() pair."""
        pending = self._pending
        while True:
            while pending:
                entry = pending[0]
                event = entry[2]
                if event.cancelled:
                    heappop(pending)
                    self._dead_in_wheel -= 1
                    continue
                if limit is not None and entry[0] > limit:
                    return None
                heappop(pending)
                event.popped = True
                event._region = _REGION_NONE
                self._live -= 1
                return event
            if not self._advance():
                return None

    def _advance(self) -> bool:
        """Advance the cursor to the next populated slot, cascading
        overflow entries that come inside the horizon; refills
        ``_pending`` and returns True when it holds entries.  Called
        only with ``_pending`` empty.

        Never rebinds ``self._pending`` / ``self._overflow`` — callers
        hold hoisted aliases across this call.
        """
        if self._live == 0:
            # Only dead entries can remain; reclaim them all at once.
            if self._wheel_count or self._overflow or self._pending:
                self._purge_dead()
            return False
        slots = self._slots
        pending = self._pending
        overflow = self._overflow
        cursor = self._cursor
        wheel_count = self._wheel_count
        while True:
            if wheel_count:
                cursor += 1
            elif overflow:
                # Wheel empty: jump straight to the first overflow slot
                # instead of stepping through the gap.
                cursor = overflow[0][0] >> SLOT_SHIFT
            else:
                self._cursor = cursor
                self._wheel_count = wheel_count
                return bool(pending)
            # Cascade: pull overflow entries now inside the horizon.
            if overflow:
                horizon = (cursor + NUM_SLOTS) << SLOT_SHIFT
                while overflow and overflow[0][0] < horizon:
                    entry = heappop(overflow)
                    event = entry[2]
                    if event.cancelled:
                        # Dead entries are dropped, not moved.
                        self._dead_in_heap -= 1
                        continue
                    event._region = _REGION_WHEEL
                    slot = entry[0] >> SLOT_SHIFT
                    if slot <= cursor:
                        heappush(pending, entry)
                    else:
                        slots[slot & _SLOT_MASK].append(entry)
                        wheel_count += 1
            bucket = slots[cursor & _SLOT_MASK]
            if bucket:
                wheel_count -= len(bucket)
                pending.extend(bucket)
                heapify(pending)
                bucket.clear()
            if pending:
                self._cursor = cursor
                self._wheel_count = wheel_count
                return True

    def _purge_dead(self) -> None:
        """Drop every (necessarily dead) remaining entry."""
        for bucket in self._slots:
            bucket.clear()
        self._pending.clear()
        self._overflow.clear()
        self._wheel_count = 0
        self._dead_in_heap = 0
        self._dead_in_wheel = 0

    # ------------------------------------------------------------------
    # cancellation + compaction
    # ------------------------------------------------------------------

    def _note_cancel(self, event: Event) -> None:
        """Account for a just-cancelled in-queue event (called from
        :meth:`Event.cancel` exactly once per live event)."""
        self._live -= 1
        if event._region == _REGION_OVERFLOW:
            self._dead_in_heap += 1
            self._maybe_compact_overflow()
        else:
            self._dead_in_wheel += 1
            self._maybe_compact_wheel()

    def _maybe_compact_overflow(self) -> None:
        """Rebuild the overflow heap once dead entries outnumber live
        ones there; subtractive accounting, in-place filtering (see
        module docstring)."""
        overflow = self._overflow
        if self._dead_in_heap <= 64 or \
                self._dead_in_heap * 2 <= len(overflow):
            return
        before = len(overflow)
        overflow[:] = [e for e in overflow if not e[2].cancelled]
        heapify(overflow)
        self._dead_in_heap -= before - len(overflow)

    def _maybe_compact_wheel(self) -> None:
        """Filter dead entries out of the slot buckets and the pending
        heap once they dominate.  ``_wheel_count`` is adjusted by the
        number of bucket entries actually removed — a cascade may have
        moved dead entries between regions since they were counted."""
        total = self._wheel_count + len(self._pending)
        if self._dead_in_wheel <= 64 or self._dead_in_wheel * 2 <= total:
            return
        removed = 0
        for bucket in self._slots:
            if not bucket:
                continue
            before = len(bucket)
            bucket[:] = [e for e in bucket if not e[2].cancelled]
            removed += before - len(bucket)
        self._wheel_count -= removed
        pending = self._pending
        before = len(pending)
        pending[:] = [e for e in pending if not e[2].cancelled]
        heapify(pending)
        removed += before - len(pending)
        self._dead_in_wheel -= removed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def _check_accounting(self) -> None:
        """Debug/test helper: verify counters against the actual
        contents of all three regions; raises ``AssertionError`` on
        drift."""
        wheel_entries = [e for bucket in self._slots for e in bucket]
        assert self._wheel_count == len(wheel_entries), \
            (self._wheel_count, len(wheel_entries))
        wheel_entries += self._pending
        dead_wheel = sum(1 for e in wheel_entries if e[2].cancelled)
        dead_over = sum(1 for e in self._overflow if e[2].cancelled)
        live = (len(wheel_entries) + len(self._overflow)
                - dead_wheel - dead_over)
        assert self._live == live, (self._live, live)
        assert self._dead_in_wheel == dead_wheel, \
            (self._dead_in_wheel, dead_wheel)
        assert self._dead_in_heap == dead_over, \
            (self._dead_in_heap, dead_over)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
