"""Actions yielded by simulated thread behaviours.

A simulated thread's behaviour is a Python generator that yields
:class:`Action` objects.  The engine interprets each action:

* :class:`Run` — consume CPU for a duration (the only action that takes
  simulated time on a core).
* :class:`Sleep` — voluntarily sleep for a duration.
* :class:`Yield` — give the CPU back to the scheduler while staying
  runnable (``sched_yield``).
* :class:`Fork` — create a child thread; the ``yield`` expression
  evaluates to the child's :class:`~repro.core.thread.SimThread`.
* :class:`Exit` — terminate the thread (returning from the generator has
  the same effect).
* :class:`SyncAction` — operations on synchronization primitives
  (mutexes, pipes, barriers, ...); these either complete instantly or
  block the thread until another thread wakes it.

Instantaneous actions (fork, lock release, a successful non-blocking
acquire) consume zero simulated time; behaviours model real work with
explicit :class:`Run` actions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine
    from .thread import SimThread


class Action:
    """Base class for everything a behaviour may yield."""

    __slots__ = ()


class Run(Action):
    """Consume CPU for ``duration`` nanoseconds.

    ``duration=None`` means "run forever" (an infinite spin loop); the
    thread then only stops running when preempted, migrated, or killed.

    A hand-rolled ``__slots__`` value class rather than a frozen
    dataclass: behaviours construct one per work item, and the frozen
    ``object.__setattr__`` path showed up as several percent of
    wakeup-heavy runs.  Equality/hash/repr keep the dataclass
    semantics.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: Optional[int]):
        if duration is not None and duration < 0:
            raise ValueError(f"negative run duration: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Run(duration={self.duration!r})"

    def __eq__(self, other) -> bool:
        return other.__class__ is Run and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Run, self.duration))


def run_forever() -> Run:
    """A :class:`Run` action that never completes (pure spinner)."""
    return Run(None)


class Sleep(Action):
    """Voluntarily sleep for ``duration`` nanoseconds.

    Sleeping time counts as voluntary sleep for ULE's interactivity
    metric and lowers the thread's CFS load average.  (``__slots__``
    value class — see :class:`Run`.)
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int):
        if duration < 0:
            raise ValueError(f"negative sleep duration: {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep(duration={self.duration!r})"

    def __eq__(self, other) -> bool:
        return other.__class__ is Sleep and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Sleep, self.duration))


class Yield(Action):
    """Relinquish the CPU while remaining runnable (``sched_yield``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Yield()"

    def __eq__(self, other) -> bool:
        return other.__class__ is Yield

    def __hash__(self) -> int:
        return hash(Yield)


class Exit(Action):
    """Terminate the calling thread immediately."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Exit()"

    def __eq__(self, other) -> bool:
        return other.__class__ is Exit

    def __hash__(self) -> int:
        return hash(Exit)


@dataclass
class ThreadSpec:
    """Description of a thread to create (top-level or forked).

    ``behavior`` is a callable taking a :class:`~repro.core.thread.ThreadCtx`
    and returning the behaviour generator.  ``affinity`` restricts the set
    of allowed CPUs (``None`` = any CPU).
    """

    name: str
    behavior: Callable[["ThreadCtx"], Any]
    nice: int = 0
    affinity: Optional[frozenset[int]] = None
    app: Optional[str] = None  # application label for grouping/cgroups
    tags: dict = field(default_factory=dict)

    def __post_init__(self):
        if not -20 <= self.nice <= 19:
            raise ValueError(f"nice value out of range: {self.nice}")
        if self.affinity is not None:
            self.affinity = frozenset(self.affinity)


@dataclass(frozen=True)
class Fork(Action):
    """Create a child thread from ``spec``.

    The ``yield`` expression evaluates to the child ``SimThread``.  The
    child inherits scheduler state from its parent according to the
    active scheduler's fork rules (e.g. ULE interactivity inheritance,
    CFS vruntime placement).
    """

    spec: ThreadSpec


class BlockResult(enum.Enum):
    """Outcome of applying a :class:`SyncAction`."""

    #: The operation completed; the thread keeps the CPU.
    COMPLETED = "completed"
    #: The thread is now blocked; the primitive will wake it later.
    BLOCKED = "blocked"


class SyncAction(Action):
    """Base class for actions that touch a synchronization primitive.

    Subclasses implement :meth:`apply`, returning ``(BlockResult, value)``
    where ``value`` is delivered to the behaviour as the result of the
    ``yield`` when the result is ``COMPLETED``.  When the thread blocks,
    the primitive is responsible for delivering the value at wake time
    via ``thread.set_wake_value``.
    """

    __slots__ = ()

    def apply(self, engine: "Engine", thread: "SimThread"):
        """Execute against the primitive; returns (BlockResult, value)."""
        raise NotImplementedError
