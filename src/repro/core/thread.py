"""The simulated thread (the analogue of ``task_struct`` / ``struct thread``).

A :class:`SimThread` owns:

* identity (tid, name, application label, nice value, CPU affinity),
* a behaviour generator producing :mod:`~repro.core.actions` actions,
* generic accounting (total runtime, sleep time, wait time, switch
  counts) maintained by the engine,
* a ``policy`` slot where the active scheduler hangs its per-thread
  state (a CFS ``sched_entity`` or a ULE ``td_sched``).

Thread state machine::

    NEW -> RUNNABLE <-> RUNNING -> EXITED
              ^            |
              |            v
              +---- SLEEPING/BLOCKED

``SLEEPING`` is a timed voluntary sleep; ``BLOCKED`` is waiting on a
synchronization primitive.  Schedulers treat both as "not runnable";
ULE counts both toward voluntary sleep time.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from .actions import ThreadSpec
from .errors import ThreadStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine
    from .rng import RandomStream


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    EXITED = "exited"

    @property
    def is_queued(self) -> bool:
        """True when the thread should be present in a runqueue."""
        return self in (ThreadState.RUNNABLE, ThreadState.RUNNING)


class ThreadCtx:
    """Handle passed to behaviour factories.

    Gives a behaviour access to its own thread object, the engine clock,
    and a private random stream, without exposing engine internals.
    """

    __slots__ = ("_engine", "thread")

    def __init__(self, engine: "Engine", thread: "SimThread"):
        self._engine = engine
        self.thread = thread

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._engine.now

    @property
    def rng(self) -> "RandomStream":
        """A random stream private to this thread."""
        return self._engine.random.stream(f"thread:{self.thread.name}")

    @property
    def ncpus(self) -> int:
        return len(self._engine.machine.cores)

    @property
    def metrics(self):
        """The engine's metric registry (for workload instrumentation)."""
        return self._engine.metrics


class SimThread:
    """A simulated kernel-visible thread."""

    __slots__ = ("tid", "spec", "name", "app", "nice", "affinity",
                 "parent", "state", "cpu", "rq_cpu", "ctx",
                 "_generator", "_behavior", "total_runtime",
                 "total_sleeptime", "total_waittime", "total_stalltime",
                 "nr_switches", "nr_migrations", "nr_preemptions",
                 "created_at", "exited_at", "sleep_start", "wait_start",
                 "last_ran", "run_remaining", "_wake_value",
                 "sleep_event", "policy", "tags", "_send",
                 "_runend_label", "_wake_label")

    _COUNTER = 0

    def __init__(self, engine: "Engine", spec: ThreadSpec,
                 parent: Optional["SimThread"] = None):
        SimThread._COUNTER += 1
        self.tid = SimThread._COUNTER
        self.spec = spec
        self.name = spec.name
        # Forked threads belong to their parent's application unless
        # the spec says otherwise (cgroups group whole applications).
        if spec.app is not None:
            self.app = spec.app
        elif parent is not None:
            self.app = parent.app
        else:
            self.app = spec.name
        self.nice = spec.nice
        self.affinity = spec.affinity
        self.parent = parent

        self.state = ThreadState.NEW
        #: CPU the thread is running on (or last ran on).
        self.cpu: Optional[int] = None
        #: CPU whose runqueue currently holds the thread (while queued).
        self.rq_cpu: Optional[int] = None

        self.ctx = ThreadCtx(engine, self)
        self._generator = None
        #: the generator's bound ``send`` (None for plain iterators),
        #: cached so next_action avoids a per-step hasattr probe
        self._send = None
        self._behavior = spec.behavior

        # -- generic accounting (engine-maintained, scheduler-agnostic) --
        self.total_runtime = 0          # ns actually executed
        self.total_sleeptime = 0        # ns spent sleeping/blocked
        self.total_waittime = 0         # ns runnable but waiting for CPU
        self.total_stalltime = 0        # ns lost to injected stalls
        self.nr_switches = 0            # times scheduled onto a CPU
        self.nr_migrations = 0          # cross-CPU moves
        self.nr_preemptions = 0         # involuntary context switches
        self.created_at = engine.now
        self.exited_at: Optional[int] = None
        self.sleep_start: Optional[int] = None
        self.wait_start: Optional[int] = None
        self.last_ran: int = engine.now

        #: remaining nanoseconds of the current Run action
        #: (None = run forever).
        self.run_remaining: Optional[int] = None
        #: value to deliver to the behaviour at next resume
        self._wake_value: Any = None
        #: event handle for a pending timed sleep
        self.sleep_event = None
        #: precomputed event labels for the per-post hot paths (a
        #: run-completion timer is armed at every pick; formatting the
        #: f-string each time showed up in profiles)
        self._runend_label = f"runend:{self.name}"
        self._wake_label = f"wake:{self.name}"
        #: scheduler-private per-thread state
        self.policy: Any = None
        #: arbitrary workload-visible tags (copied from the spec)
        self.tags = dict(spec.tags)
        # forked threads stay in their parent's cgroup unless the spec
        # placed them elsewhere
        if parent is not None and "cgroup" not in self.tags \
                and "cgroup" in parent.tags:
            self.tags["cgroup"] = parent.tags["cgroup"]

    # ------------------------------------------------------------------
    # behaviour generator plumbing
    # ------------------------------------------------------------------

    def start_behavior(self):
        """Instantiate the behaviour generator (once, at first schedule)."""
        if self._generator is not None:
            raise ThreadStateError(f"{self} behaviour already started")
        self._generator = self._behavior(self.ctx)
        # plain iterators (e.g. iter([...])) cannot receive values
        self._send = getattr(self._generator, "send", None)

    def next_action(self):
        """Advance the behaviour and return the next action.

        Delivers the pending wake value (set by ``set_wake_value``) to the
        behaviour as the result of its last ``yield``.  Raises
        ``StopIteration`` when the behaviour returns.
        """
        value, self._wake_value = self._wake_value, None
        if self._generator is None:
            self.start_behavior()
            return next(self._generator)
        send = self._send
        if send is not None:
            return send(value)
        return next(self._generator)

    def set_wake_value(self, value: Any) -> None:
        """Set the value delivered to the behaviour at its next resume."""
        self._wake_value = value

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------

    @property
    def is_runnable(self) -> bool:
        return self.state in (ThreadState.RUNNABLE, ThreadState.RUNNING)

    @property
    def is_running(self) -> bool:
        return self.state is ThreadState.RUNNING

    @property
    def is_blocked(self) -> bool:
        return self.state in (ThreadState.SLEEPING, ThreadState.BLOCKED)

    @property
    def has_exited(self) -> bool:
        return self.state is ThreadState.EXITED

    def allows_cpu(self, cpu: int) -> bool:
        """True when the thread's affinity mask permits ``cpu``."""
        return self.affinity is None or cpu in self.affinity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimThread tid={self.tid} name={self.name!r} "
                f"state={self.state.value} cpu={self.cpu}>")
