"""The discrete-event simulation engine.

The engine owns the clock, the event queue, the machine, the thread
population, and exactly one scheduler (a
:class:`~repro.sched.base.SchedClass` instance).  It interprets thread
behaviours (see :mod:`repro.core.actions`) and calls into the scheduler
through the Linux-style API of the paper's Table 1.

Execution model
---------------

Threads run on cores.  Time only advances through the event queue; the
engine accounts CPU time lazily at scheduling events (context switches,
ticks, wakeups touching the core) instead of simulating every cycle.

The engine deliberately mirrors the structure the paper's port targets:

* the currently running thread *stays in the runqueue* (the Linux
  convention the authors adopted for their ULE port);
* wakeup placement goes through ``select_task_rq`` before
  ``enqueue_task``, and may trigger wakeup preemption;
* periodic scheduler work (load balancing, slice expiry) is driven by
  per-core tick events at the scheduler's native tick rate (1 ms for
  CFS, ~7.87 ms stathz for ULE);
* like a NO_HZ/dynticks kernel, the engine parks the periodic tick on
  cores that are idle and whose scheduler reports no periodic work
  (:meth:`~repro.sched.base.SchedClass.needs_tick`), and re-arms it —
  phase-aligned to the original stagger, so the schedule is identical
  to an always-tick run — from the wakeup/enqueue path.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Iterable, Optional

from . import actions as act
from .errors import DeadlockError, SimulationError, ThreadStateError
from .events import EventLane, EventQueue
from .machine import Core, Machine
from .metrics import MetricRegistry
from .profile import EventProfiler, global_profiler, profile_from_env, \
    timestamp
from .rng import RandomSource
from .schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .thread import SimThread, ThreadState
from .timerwheel import TimingWheelQueue
from .topology import Topology

#: ``run_remaining`` value meaning "spin forever".
RUN_FOREVER = math.inf

#: hoisted singleton flag members (enum attribute access and Flag
#: arithmetic are surprisingly costly on the per-wakeup path)
_ENQ_WAKEUP = EnqueueFlags.WAKEUP
_ENQ_NEW = EnqueueFlags.NEW

#: default for :class:`Engine`'s ``tickless`` parameter.  Tickless idle
#: produces bit-identical schedules (see ``tests/test_tickless.py``);
#: flip this (or pass ``tickless=False``) to force the always-tick
#: engine, e.g. when bisecting a determinism report.
TICKLESS_DEFAULT = True


def _sanitize_from_env() -> bool:
    """``REPRO_SANITIZE`` truthiness (unset/0/false/no/off = off)."""
    value = os.environ.get("REPRO_SANITIZE", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _fast_from_env() -> bool:
    """``REPRO_FAST`` truthiness (unset/0/false/no/off = off)."""
    value = os.environ.get("REPRO_FAST", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _eventq_from_env() -> str:
    """``REPRO_EVENTQ``: ``wheel`` (default) or ``heap``."""
    value = os.environ.get("REPRO_EVENTQ", "").strip().lower()
    if value in ("", "wheel"):
        return "wheel"
    if value == "heap":
        return "heap"
    raise ValueError(f"REPRO_EVENTQ must be 'heap' or 'wheel', "
                     f"got {value!r}")


def _lane_from_env() -> bool:
    """``REPRO_TICK_LANE`` truthiness; **on** unless explicitly
    disabled (0/false/no/off).  Disabling routes ticks and resched
    IPIs through the main queue like every other event — the
    documented kill-switch, and the reference leg of the epoch-kernel
    digest tests (``tests/test_epoch_tick.py``)."""
    value = os.environ.get("REPRO_TICK_LANE", "").strip().lower()
    return value not in ("0", "false", "no", "off")


def make_event_queue(kind: Optional[str] = None):
    """Build an event queue: ``"wheel"`` (the default), ``"heap"``
    (the reference binary heap, for differential testing), or ``None``
    to consult ``REPRO_EVENTQ``.  Both implementations pop in
    identical ``(time, seq)`` order, so the choice never changes a
    schedule — see docs/performance.md."""
    if kind is None:
        kind = _eventq_from_env()
    if kind == "wheel":
        return TimingWheelQueue()
    if kind == "heap":
        return EventQueue()
    raise ValueError(f"unknown event queue kind: {kind!r}")


class Tracer:
    """Dispatch point for observation hooks.

    Experiments register callbacks; the engine invokes them at the
    corresponding lifecycle points.  All hooks are optional and add no
    cost when absent.
    """

    __slots__ = ("on_switch", "on_wake", "on_migrate", "on_exit",
                 "on_preempt", "on_fault")

    def __init__(self):
        self.on_switch: list[Callable] = []      # (core, prev, next)
        self.on_wake: list[Callable] = []        # (thread, cpu, waker)
        self.on_migrate: list[Callable] = []     # (thread, src, dst)
        self.on_exit: list[Callable] = []        # (thread,)
        self.on_preempt: list[Callable] = []     # (core, preempted, by)
        self.on_fault: list[Callable] = []       # (kind, detail)

    @staticmethod
    def _fire(hooks: list, *args) -> None:
        for hook in hooks:
            hook(*args)


# schedlint: ignore[missing-slots] -- one instance per run; fault hooks and tests monkeypatch attributes
class Engine:
    """A single simulation run."""

    def __init__(self, topology: Topology, scheduler_factory,
                 seed: int = 0, corun_slowdown: float = 1.0,
                 ctx_switch_cost_ns: int = 0,
                 tickless: Optional[bool] = None,
                 sanitize: Optional[bool] = None,
                 faults=None,
                 event_queue=None,
                 profile: Optional[bool] = None,
                 fast: Optional[bool] = None):
        self.now = 0
        #: fast mode (``fast=True`` / ``REPRO_FAST``): :meth:`run`
        #: selects a specialized loop with no per-event observer
        #: branches, and schedulers may pick flat-array runqueue
        #: backends.  Digest-identical by construction; silently falls
        #: back to the instrumented loop whenever tracing, sanitize,
        #: faults or profiling are active (those need the hooks).
        self.fast = _fast_from_env() if fast is None else bool(fast)
        #: the event queue: "heap"/"wheel"/a ready queue object; the
        #: default consults REPRO_EVENTQ and falls back to the timing
        #: wheel.  Either kind produces the identical schedule.
        if event_queue is None or isinstance(event_queue, str):
            self.events = make_event_queue(event_queue)
        else:
            self.events = event_queue
        #: sorted side lane for the recurring tick + resched events
        #: (the engine's highest-frequency traffic).  It shares the
        #: main queue's sequence counter, so :meth:`_pop_next`'s merge
        #: of the two heads replays the exact single-queue pop order;
        #: ``REPRO_TICK_LANE=0`` disables it (the kill-switch, and the
        #: reference leg of the epoch-kernel digest tests).
        self._lane = EventLane(self.events) if _lane_from_env() else None
        #: where the recurring events are (re)scheduled: the lane when
        #: enabled, else the main queue
        self._sink = self._lane if self._lane is not None else self.events
        #: last instant for which the epoch prefold ran (one fused
        #: multi-core pass per distinct tick instant — see _pop_next)
        self._epoch_at = -1
        #: hoisted bound methods for :meth:`_pop_next`, the
        #: hottest-possible path (once per event).  With the lane off
        #: the instance attribute *shadows* the ``_pop_next`` method
        #: with the main queue's own ``pop_before`` — the merge
        #: wrapper disappears entirely instead of testing a flag per
        #: event.
        self._peek_entry = self.events.peek_entry
        self._pop_head = self.events.pop_head
        if self._lane is None:
            self._pop_next = self.events.pop_before
        #: events executed by :meth:`run` (for events/sec reporting)
        self.events_processed = 0
        #: park the periodic tick on quiescent idle cores (NO_HZ)
        self.tickless = TICKLESS_DEFAULT if tickless is None else tickless
        self._nr_stopped_ticks = 0
        self.random = RandomSource(seed)
        self.metrics = MetricRegistry()
        #: lazily bound ``engine.run_delay`` recorder (hot in _switch_to)
        self._run_delay = None
        self.tracer = Tracer()
        self.machine = Machine(self, topology, corun_slowdown=corun_slowdown)
        self.threads: list[SimThread] = []
        self.live_threads = 0
        #: modelled direct + cache cost of one context switch, charged
        #: as lost progress to the incoming thread (drives the paper's
        #: apache/ab preemption effect, §5.3)
        self.ctx_switch_cost_ns = ctx_switch_cost_ns
        self._stopped = False
        self._stop_reason: Optional[str] = None

        #: kept for :meth:`reset` (warm-worker engine reuse)
        self._scheduler_factory = scheduler_factory
        self.scheduler = scheduler_factory(self)
        for core in self.machine.cores:
            core.rq = self.scheduler.init_core(core)
        self._ticks_started = False

        #: fault injector (:mod:`repro.faults`), or None.  An *empty*
        #: ``FaultPlan`` leaves this None so the engine posts no extra
        #: events and takes no extra branches — the event stream (and
        #: therefore the schedule digest) is byte-identical to a
        #: no-faults run.  See docs/fault-injection.md.
        self.faults = None
        if faults is not None and not faults.is_empty():
            # imported lazily: repro.faults imports this engine module
            from ..faults.injector import FaultInjector
            self.faults = FaultInjector(self, faults)

        #: post-event invariant checker; None (the default) costs one
        #: local None test per event in :meth:`run`
        self.sanitizer = None
        if _sanitize_from_env() if sanitize is None else sanitize:
            # imported lazily: repro.analysis.__init__ imports modules
            # that import this engine module
            from ..analysis.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self)

        #: per-subsystem event profiler (``--profile`` /
        #: ``REPRO_PROFILE``); None (the default) costs one local None
        #: test per event in :meth:`run`.  Env-enabled profiling
        #: aggregates into the process-wide profiler so a serial
        #: campaign can report across all its cells.
        self.profiler: Optional[EventProfiler] = None
        if profile_from_env() if profile is None else profile:
            self.profiler = global_profiler()

    # ------------------------------------------------------------------
    # warm reuse (campaign workers)
    # ------------------------------------------------------------------

    def reset(self, seed: int = 0, faults=None) -> None:
        """Restore construction-time state for a fresh run on the same
        (topology, scheduler) pair — the warm-worker fast path of
        campaign execution (docs/distributed-campaigns.md).

        Everything a run mutates is rebuilt or zeroed: clock, event
        queues (including their sequence counters, so the ``(time,
        seq)`` stream replays exactly), RNG, metrics, tracer, cores,
        threads, scheduler state, and the fault injector.  A reset
        engine is digest-identical to a newly constructed one
        (``tests/test_engine_reset.py`` fuzzes reuse-vs-fresh over
        randomized cell sequences); construction-time parameters
        (topology, corun model, ctx-switch cost, tickless/fast flags)
        are deliberately retained — reuse an engine only for cells
        that share them.
        """
        self.now = 0
        self.events.clear()
        if self._lane is not None:
            self._lane.clear()
        self._epoch_at = -1
        self.events_processed = 0
        self._nr_stopped_ticks = 0
        self.random = RandomSource(seed)
        self.metrics = MetricRegistry()
        self._run_delay = None
        self.tracer = Tracer()
        self.machine.nr_offline = 0
        for core in self.machine.cores:
            core.reset()
        self.threads = []
        self.live_threads = 0
        self._stopped = False
        self._stop_reason = None
        self.scheduler = self._scheduler_factory(self)
        for core in self.machine.cores:
            core.rq = self.scheduler.init_core(core)
        self._ticks_started = False
        self.faults = None
        if faults is not None and not faults.is_empty():
            from ..faults.injector import FaultInjector
            self.faults = FaultInjector(self, faults)
        if self.sanitizer is not None:
            from ..analysis.sanitizer import Sanitizer
            self.sanitizer = Sanitizer(self)

    # ------------------------------------------------------------------
    # thread creation
    # ------------------------------------------------------------------

    def spawn(self, spec: act.ThreadSpec, at: Optional[int] = None,
              parent: Optional[SimThread] = None) -> SimThread:
        """Create a thread; it becomes runnable at ``at`` (default: now).

        Returns the thread object immediately even for delayed spawns.
        """
        thread = SimThread(self, spec, parent=parent)
        self.threads.append(thread)
        self.live_threads += 1
        if at is None or at <= self.now:
            self._activate_new(thread)
        else:
            self.events.post(at, self._activate_new, thread,
                             label=f"spawn:{spec.name}")
        return thread

    def _activate_new(self, thread: SimThread) -> None:
        """Make a NEW thread runnable: fork bookkeeping, placement,
        enqueue, and possible preemption of the target CPU."""
        if thread.state is not ThreadState.NEW:
            raise ThreadStateError(f"{thread} already activated")
        thread.created_at = self.now
        self.scheduler.task_fork(thread.parent, thread)
        cpu = self.scheduler.select_task_rq(thread, SelectFlags.FORK,
                                            waker=thread.parent)
        cpu = self._constrain_cpu(thread, cpu)
        self._enqueue(thread, cpu, EnqueueFlags.NEW)

    # ------------------------------------------------------------------
    # wakeups, blocking, migration
    # ------------------------------------------------------------------

    def wake_thread(self, thread: SimThread,
                    waker: Optional[SimThread] = None) -> None:
        """Transition a sleeping/blocked thread to RUNNABLE.

        Safe to call redundantly: waking a runnable or exited thread is
        a no-op (as in both kernels).
        """
        # is_blocked, inlined (per wakeup)
        state = thread.state
        if state is not ThreadState.SLEEPING \
                and state is not ThreadState.BLOCKED:
            return
        if thread.sleep_event is not None:
            thread.sleep_event.cancel()
            thread.sleep_event = None
        slept = 0
        if thread.sleep_start is not None:
            slept = self.now - thread.sleep_start
            thread.total_sleeptime += slept
            thread.sleep_start = None
        self.scheduler.task_waking(thread, slept)
        cpu = self.scheduler.select_task_rq(thread, SelectFlags.WAKEUP,
                                            waker=waker)
        # _constrain_cpu's accept path, inlined (per wakeup)
        affinity = thread.affinity
        if not ((affinity is None or cpu in affinity)
                and self.machine.cores[cpu].online):
            cpu = self._constrain_cpu(thread, cpu)
        self._enqueue(thread, cpu, EnqueueFlags.WAKEUP)
        hooks = self.tracer.on_wake
        if hooks:
            Tracer._fire(hooks, thread, cpu, waker)

    def _constrain_cpu(self, thread: SimThread, cpu: int) -> int:
        """Clamp a placement decision to the thread's affinity mask and
        to online CPUs.  A mask whose every CPU is offline falls back to
        any online core (the kernel's ``select_fallback_rq`` breaks
        affinity the same way)."""
        cores = self.machine.cores
        if thread.allows_cpu(cpu) and cores[cpu].online:
            return cpu
        mask = thread.affinity if thread.affinity is not None \
            else range(len(cores))
        allowed = [c for c in sorted(mask) if cores[c].online]
        if not allowed:
            allowed = self.machine.online_cpus()
        # Prefer an idle allowed CPU, else the first allowed one.
        for candidate in allowed:
            if cores[candidate].is_idle:
                return candidate
        return allowed[0]

    def _enqueue(self, thread: SimThread, cpu: int,
                 flags: EnqueueFlags) -> None:
        core = self.machine.cores[cpu]
        thread.state = ThreadState.RUNNABLE
        thread.rq_cpu = cpu
        thread.wait_start = self.now
        self.scheduler.enqueue_task(core, thread, flags)
        if self._nr_stopped_ticks:
            self._kick_stopped_ticks()
        # identity test: callers pass exactly WAKEUP or NEW (singleton
        # members), so this equals ``flags & (WAKEUP | NEW)`` without
        # the per-call Flag arithmetic
        if flags is _ENQ_WAKEUP or flags is _ENQ_NEW:
            self.scheduler.check_preempt_wakeup(core, thread)
        if core.current is None or core.need_resched:  # is_idle, inlined
            self.request_resched(core)

    def block_current(self, core: Core, state: ThreadState) -> None:
        """Move the core's current thread into SLEEPING/BLOCKED.

        Called by the engine itself (Sleep actions) and by
        synchronization primitives.  The caller is responsible for
        arranging a future wakeup.
        """
        thread = core.current
        if thread is None:
            raise ThreadStateError(f"core {core.index} has no current")
        self._update_curr(core)
        self.scheduler.dequeue_task(core, thread, DequeueFlags.SLEEP)
        thread.state = state
        thread.sleep_start = self.now
        thread.rq_cpu = None
        core.current = None
        core.need_resched = True
        hooks = self.tracer.on_switch
        if hooks:
            Tracer._fire(hooks, core, thread, None)

    def migrate_thread(self, thread: SimThread, dst_cpu: int) -> None:
        """Move a RUNNABLE (not RUNNING) thread to another runqueue.

        Both the paper's ULE port and CFS's load balancer only migrate
        threads that are not currently executing.
        """
        if thread.state is not ThreadState.RUNNABLE:
            raise ThreadStateError(f"cannot migrate {thread}")
        if not thread.allows_cpu(dst_cpu):
            raise ThreadStateError(
                f"{thread} affinity forbids cpu {dst_cpu}")
        if not self.machine.cores[dst_cpu].online:
            raise ThreadStateError(
                f"cannot migrate {thread} to offline cpu {dst_cpu}")
        src_cpu = thread.rq_cpu
        if src_cpu == dst_cpu:
            return
        src = self.machine.cores[src_cpu]
        dst = self.machine.cores[dst_cpu]
        self.scheduler.dequeue_task(src, thread, DequeueFlags.MIGRATE)
        thread.nr_migrations += 1
        thread.rq_cpu = dst_cpu
        self.scheduler.enqueue_task(dst, thread, EnqueueFlags.MIGRATE)
        if self._nr_stopped_ticks:
            self._kick_stopped_ticks()
        self.metrics.incr("engine.migrations")
        hooks = self.tracer.on_migrate
        if hooks:
            Tracer._fire(hooks, thread, src_cpu, dst_cpu)
        if dst.is_idle:
            self.request_resched(dst)

    def set_nice(self, thread: SimThread, nice: int) -> None:
        """Renice a live thread (``setpriority``); the scheduler
        reweighs/requeues it as needed."""
        if not -20 <= nice <= 19:
            raise ValueError(f"nice out of range: {nice}")
        if thread.has_exited:
            raise ThreadStateError(f"{thread} has exited")
        thread.nice = nice
        self.scheduler.task_nice_changed(thread)
        if self._nr_stopped_ticks:
            self._kick_stopped_ticks()
        if thread.cpu is not None:
            core = self.machine.cores[thread.cpu]
            if core.current is thread or core.need_resched:
                self.request_resched(core)

    def set_affinity(self, thread: SimThread,
                     cpus: Optional[Iterable[int]]) -> None:
        """Change a thread's CPU affinity (the ``taskset`` of Fig. 6).

        Widening the mask never moves the thread (load balancing will);
        narrowing it off its current CPU forces an immediate move.
        """
        thread.affinity = None if cpus is None else frozenset(cpus)
        if self._nr_stopped_ticks:
            self._kick_stopped_ticks()
        if thread.has_exited or thread.affinity is None:
            return
        if thread.state is ThreadState.RUNNABLE:
            if not thread.allows_cpu(thread.rq_cpu):
                dst = self._constrain_cpu(thread, thread.rq_cpu)
                self.migrate_thread(thread, dst)
        elif thread.state is ThreadState.RUNNING:
            if not thread.allows_cpu(thread.cpu):
                # Force the thread off its (now forbidden) CPU, like the
                # kernel's migration thread would.
                core = self.machine.cores[thread.cpu]
                self._cancel_completion(core)
                self._update_curr(core)
                self.scheduler.dequeue_task(core, thread,
                                            DequeueFlags.MIGRATE)
                thread.state = ThreadState.RUNNABLE
                thread.wait_start = self.now
                thread.nr_migrations += 1
                core.current = None
                dst = self._constrain_cpu(thread, thread.cpu)
                thread.rq_cpu = dst
                dst_core = self.machine.cores[dst]
                self.scheduler.enqueue_task(dst_core, thread,
                                            EnqueueFlags.MIGRATE)
                Tracer._fire(self.tracer.on_migrate, thread,
                             core.index, dst)
                self._dispatch(core)
                if dst_core.is_idle or dst_core.need_resched:
                    self.request_resched(dst_core)

    # ------------------------------------------------------------------
    # fault-injection primitives (hotplug, stalls)
    # ------------------------------------------------------------------

    def offline_core(self, cpu: int) -> bool:
        """Take a core offline (the "hotplug" fault): stop its tick,
        drop its pending IPI, and drain every thread — the running one
        and the queued ones — onto online cores through the scheduler's
        own placement path (``select_task_rq``/``sched_pickcpu``).

        Returns False (no-op) when the core is already offline; raises
        when it is the last online core — something must keep running.
        """
        core = self.machine.cores[cpu]
        if not core.online:
            return False
        if all(not c.online for c in self.machine.cores if c is not core):
            raise SimulationError(
                f"cannot offline cpu {cpu}: it is the last online core")
        core.online = False
        self.machine.nr_offline += 1
        # Drop the pending resched IPI.  The reusable backing event may
        # still sit (cancelled) in the heap, so it must never be
        # reposted while queued — forget it and let request_resched
        # allocate a fresh one after the core comes back.
        if core.resched_event is not None:
            core.resched_event.cancel()
            core.resched_event = None
            core._resched_reuse = None
        # Stop the tick.  A parked (NO_HZ) tick is off-heap already and
        # only needs the stopped-counter unwound; a live one is
        # cancelled in place.  Either way the event object is dead —
        # online_core() allocates a fresh reusable tick.
        if core.tick_stopped:
            core.tick_stopped = False
            self._nr_stopped_ticks -= 1
        elif core.tick_event is not None:
            core.tick_event.cancel()
        core.tick_event = None
        # Force the running thread off, like the kernel's migration
        # thread during cpu_down().
        curr = core.current
        if curr is not None:
            self._cancel_completion(core)
            self._update_curr(core)
            self.scheduler.dequeue_task(core, curr, DequeueFlags.MIGRATE)
            curr.state = ThreadState.RUNNABLE
            curr.wait_start = self.now
            curr.nr_migrations += 1
            core.current = None
            dst = self._hotplug_target(curr)
            curr.rq_cpu = dst
            dst_core = self.machine.cores[dst]
            self.scheduler.enqueue_task(dst_core, curr,
                                        EnqueueFlags.MIGRATE)
            self.metrics.incr("engine.migrations")
            Tracer._fire(self.tracer.on_switch, core, curr, None)
            Tracer._fire(self.tracer.on_migrate, curr, cpu, dst)
            if dst_core.is_idle or dst_core.need_resched:
                self.request_resched(dst_core)
        core.need_resched = False
        # Drain the queued threads.
        for thread in list(self.scheduler.runnable_threads(core)):
            self.migrate_thread(thread, self._hotplug_target(thread))
        if self._nr_stopped_ticks:
            self._kick_stopped_ticks()
        core.account_to_now()
        self.metrics.incr("engine.hotplug_offlines")
        Tracer._fire(self.tracer.on_fault, "core-offline", cpu)
        return True

    def online_core(self, cpu: int) -> bool:
        """Bring an offlined core back.  The tick is re-armed
        phase-aligned to the core's original stagger and a resched pass
        is requested so the scheduler's idle paths (CFS newidle
        balance, ULE idle steal) pull work over immediately.

        Returns False (no-op) when the core is already online.
        """
        core = self.machine.cores[cpu]
        if core.online:
            return False
        core.online = True
        self.machine.nr_offline -= 1
        core.account_to_now()
        if self._ticks_started:
            period = self.scheduler.tick_ns
            core.tick_event = self._sink.make_reusable(
                self._tick_callback(core), core,
                label=f"tick:cpu{core.index}")
            behind = self.now - core.tick_origin
            if behind < 0:
                next_tick = core.tick_origin
            else:
                rem = behind % period
                next_tick = self.now if rem == 0 \
                    else self.now + period - rem
            core.tick_stopped = False
            self._sink.repost(core.tick_event, next_tick)
        self.request_resched(core)
        self.metrics.incr("engine.hotplug_onlines")
        Tracer._fire(self.tracer.on_fault, "core-online", cpu)
        return True

    def _hotplug_target(self, thread: SimThread) -> int:
        """Pick an online destination for a thread drained off a dead
        core, reusing the scheduler's own wakeup placement.  An affinity
        mask with no online CPU left is broken (cleared), exactly like
        ``select_fallback_rq`` under cpuset pressure."""
        if thread.affinity is not None and not any(
                self.machine.cores[c].online for c in thread.affinity):
            thread.affinity = None
            Tracer._fire(self.tracer.on_fault, "affinity-broken",
                         thread.name)
        cpu = self.scheduler.select_task_rq(thread, SelectFlags.WAKEUP,
                                            waker=None)
        return self._constrain_cpu(thread, cpu)

    def stall_thread(self, thread: SimThread, duration_ns: int) -> bool:
        """Transiently take a RUNNING/RUNNABLE thread off the scheduler
        (a "stall": the analogue of a page-fault storm or an SMI).  The
        thread rejoins through the normal wakeup path after
        ``duration_ns``.  Stall time is tracked separately from sleep
        time so workload accounting (and the requested-work oracle)
        still balances.  Returns False (no-op) for threads that are
        blocked, new, or exited."""
        if duration_ns <= 0 or thread.state not in (
                ThreadState.RUNNING, ThreadState.RUNNABLE):
            return False
        if thread.state is ThreadState.RUNNING:
            core = self.machine.cores[thread.cpu]
            self._cancel_completion(core)
            self._update_curr(core)
            self.scheduler.dequeue_task(core, thread, DequeueFlags.SLEEP)
            thread.state = ThreadState.BLOCKED
            thread.rq_cpu = None
            core.current = None
            core.need_resched = True
            Tracer._fire(self.tracer.on_switch, core, thread, None)
            self.request_resched(core)
        else:
            core = self.machine.cores[thread.rq_cpu]
            self.scheduler.dequeue_task(core, thread, DequeueFlags.SLEEP)
            thread.state = ThreadState.BLOCKED
            thread.rq_cpu = None
        # sleep_start stays None: the wakeup path must not book the
        # stall as voluntary sleep time.
        thread.sleep_event = self.events.post(
            self.now + duration_ns, self._on_stall_end, thread,
            duration_ns, label=f"unstall:{thread.name}")
        self.metrics.incr("engine.stalls")
        Tracer._fire(self.tracer.on_fault, "thread-stall", thread.name)
        return True

    def _on_stall_end(self, thread: SimThread, duration_ns: int) -> None:
        thread.sleep_event = None
        thread.total_stalltime += duration_ns
        self.wake_thread(thread, waker=None)

    # ------------------------------------------------------------------
    # reschedule machinery
    # ------------------------------------------------------------------

    def request_resched(self, core: Core) -> None:
        """Ask for a scheduling pass on ``core`` at the current instant
        (coalesced; the analogue of a resched IPI).

        Fault injection may delay the IPI (or "drop" it, which models
        redelivery after a timeout); an offline core takes no IPIs at
        all — the hotplug drain already moved its work elsewhere.
        """
        if not core.online:
            return
        if core.resched_event is not None:
            return
        at = self.now
        if self.faults is not None:
            at += self.faults.ipi_delay(core)
        reuse = core._resched_reuse
        if reuse is None:
            reuse = core._resched_reuse = self._sink.make_reusable(
                self._resched_event, core,
                label=f"resched:cpu{core.index}")
        core.resched_event = self._sink.repost(reuse, at)

    def _resched_event(self, core: Core) -> None:
        core.resched_event = None
        self._dispatch(core)

    def _dispatch(self, core: Core) -> None:
        """The core scheduling loop: account, pick, switch, arm timers.

        Iterative (never recursive) so long chains of immediately
        blocking threads cannot overflow the stack.
        """
        if not core.online:
            return
        while True:
            completion = core.completion_event
            if completion is not None:  # _cancel_completion, inlined
                completion.cancel()
                core.completion_event = None
            self._update_curr(core)
            core.need_resched = False
            incumbent = core.current
            nxt = self.scheduler.pick_next(core)
            if nxt is not incumbent:
                self._switch_to(core, incumbent, nxt)
            thread = core.current
            if thread is None:
                core.account_to_now()
                return
            if thread.run_remaining is None:
                if not self._advance(core, thread):
                    continue  # thread blocked or exited: pick again
            if core.need_resched:
                continue
            self._arm_completion(core)
            return

    def _switch_to(self, core: Core, prev: Optional[SimThread],
                   nxt: Optional[SimThread]) -> None:
        core.account_to_now()
        counters = self.metrics.counters
        if prev is not None and prev.state is ThreadState.RUNNING:
            prev.state = ThreadState.RUNNABLE
            prev.wait_start = self.now
            prev.nr_preemptions += 1
            counters["engine.preemptions"] += 1.0
            hooks = self.tracer.on_preempt
            if hooks:
                Tracer._fire(hooks, core, prev, nxt)
        core.current = nxt
        core.nr_switches += 1
        counters["engine.switches"] += 1.0
        if nxt is not None and core.tick_stopped:
            # A parked core gained a running thread: NO_HZ exit.
            self._restart_tick(core)
        if nxt is not None:
            if nxt.rq_cpu != core.index:
                raise SimulationError(
                    f"picked {nxt} from rq {nxt.rq_cpu} on core "
                    f"{core.index}")
            nxt.state = ThreadState.RUNNING
            nxt.cpu = core.index
            nxt.nr_switches += 1
            if nxt.wait_start is not None:
                wait = self.now - nxt.wait_start
                nxt.total_waittime += wait
                recorder = self._run_delay
                if recorder is None:
                    recorder = self._run_delay = \
                        self.metrics.latency("engine.run_delay")
                recorder.samples.append(wait)
                nxt.wait_start = None
        core.curr_started_at = self.now
        core._curr_account_start = self.now
        # _speed_of's unit-speed early-out, inlined (per switch)
        core._curr_speed = 1.0 if (nxt is None or
                                   self.machine.corun_slowdown == 1.0) \
            else self._speed_of(core)
        if self.ctx_switch_cost_ns and nxt is not None \
                and prev is not nxt:
            if nxt.run_remaining not in (None, RUN_FOREVER):
                nxt.run_remaining += self.ctx_switch_cost_ns
            core.sched_overhead_ns += self.ctx_switch_cost_ns
        hooks = self.tracer.on_switch
        if hooks:
            Tracer._fire(hooks, core, prev, nxt)

    def _speed_of(self, core: Core) -> float:
        if self.machine.corun_slowdown == 1.0 or core.current is None:
            return 1.0
        apps = {t.app for t in self.scheduler.runnable_threads(core)}
        apps.add(core.current.app)
        return self.machine.speed_factor(core, core.current, len(apps))

    def _update_curr(self, core: Core) -> None:
        """Charge wall time since the last accounting point to the
        running thread and inform the scheduler."""
        thread = core.current
        if thread is None:
            core.account_to_now()
            return
        now = self.now
        delta = now - core._curr_account_start
        core._curr_account_start = now
        if delta <= 0:
            return
        core.account_to_now()
        thread.total_runtime += delta
        thread.last_ran = now
        remaining = thread.run_remaining
        if remaining is not None and remaining is not RUN_FOREVER:
            speed = core._curr_speed
            progress = delta if speed == 1.0 else int(delta * speed)
            remaining -= progress
            thread.run_remaining = remaining if remaining > 0 else 0
        self.scheduler.update_curr(core, thread, delta)

    # -- run-completion timer -------------------------------------------

    def _arm_completion(self, core: Core) -> None:
        thread = core.current
        if thread is None:
            return
        remaining = thread.run_remaining
        if remaining is None or remaining is RUN_FOREVER:
            return
        speed = core._curr_speed
        wall = remaining if speed == 1.0 else math.ceil(remaining / speed)
        core.completion_event = self.events.post(
            self.now + wall, self._on_run_complete, core, thread,
            label=thread._runend_label)

    def _cancel_completion(self, core: Core) -> None:
        if core.completion_event is not None:
            core.completion_event.cancel()
            core.completion_event = None

    def _on_run_complete(self, core: Core, thread: SimThread) -> None:
        core.completion_event = None
        if core.current is not thread:  # stale (raced with a switch)
            return
        self._update_curr(core)
        if thread.run_remaining not in (None, RUN_FOREVER) \
                and thread.run_remaining > 0:
            # The co-run speed factor changed under us; not done yet.
            self._arm_completion(core)
            return
        thread.run_remaining = None
        if self._advance(core, thread):
            if core.need_resched:
                self._dispatch(core)
            else:
                self._arm_completion(core)
        else:
            self._dispatch(core)

    # ------------------------------------------------------------------
    # behaviour interpretation
    # ------------------------------------------------------------------

    def _advance(self, core: Core, thread: SimThread) -> bool:
        """Advance a thread's behaviour until it runs, blocks, or exits.

        Returns True when the thread is still RUNNING on the core with a
        pending Run action, False when it gave up the CPU.
        """
        while True:
            try:
                # thread.next_action() inlined (one generator resume
                # per behaviour step; keep in sync with thread.py)
                if thread._generator is None:
                    action = thread.next_action()  # first schedule
                else:
                    value = thread._wake_value
                    thread._wake_value = None
                    send = thread._send
                    action = send(value) if send is not None \
                        else next(thread._generator)
            except StopIteration:
                self._exit_thread(core, thread)
                return False

            # exact-class test: act.Run is never subclassed, and the
            # identity check is the cheapest dispatch for the dominant
            # action (isinstance still guards the open SyncAction
            # hierarchy below)
            if action.__class__ is act.Run:
                thread.run_remaining = (RUN_FOREVER if action.duration is None
                                        else action.duration)
                if thread.run_remaining == 0:
                    thread.run_remaining = None
                    continue
                return True
            if isinstance(action, act.SyncAction):
                # checked right after Run: sync ops dominate the
                # wakeup-heavy (hackbench-shaped) workloads
                result, value = action.apply(self, thread)
                if result is act.BlockResult.COMPLETED:
                    thread.set_wake_value(value)
                    continue
                return False
            if isinstance(action, act.Sleep):
                if action.duration == 0:
                    continue
                self.block_current(core, ThreadState.SLEEPING)
                wake_at = self.now + action.duration
                if self.faults is not None:
                    wake_at = self.faults.timer_time(wake_at)
                thread.sleep_event = self.events.post(
                    wake_at, self._on_sleep_timer,
                    thread, label=thread._wake_label)
                return False
            if isinstance(action, act.Yield):
                self.scheduler.yield_task(core)
                core.need_resched = True
                thread.run_remaining = None
                # Leave resumption value empty; behaviour continues
                # after it is scheduled again.
                thread.set_wake_value(None)
                return True  # still running until dispatch picks another
            if isinstance(action, act.Fork):
                child = self.spawn(action.spec, parent=thread)
                thread.set_wake_value(child)
                continue
            if isinstance(action, act.Exit):
                self._exit_thread(core, thread)
                return False
            raise SimulationError(f"unknown action {action!r}")

    def _on_sleep_timer(self, thread: SimThread) -> None:
        thread.sleep_event = None
        self.wake_thread(thread, waker=None)

    def _exit_thread(self, core: Core, thread: SimThread) -> None:
        self._update_curr(core)
        self.scheduler.dequeue_task(core, thread, DequeueFlags.DEAD)
        self.scheduler.task_dead(thread)
        thread.state = ThreadState.EXITED
        thread.exited_at = self.now
        thread.rq_cpu = None
        core.current = None
        core.need_resched = True
        self.live_threads -= 1
        self.metrics.incr("engine.exits")
        tracer = self.tracer
        if tracer.on_switch:
            Tracer._fire(tracer.on_switch, core, thread, None)
        if tracer.on_exit:
            Tracer._fire(tracer.on_exit, thread)

    # ------------------------------------------------------------------
    # scheduler services
    # ------------------------------------------------------------------

    def charge_overhead(self, cpu: int, ns: int) -> None:
        """Model CPU cycles burnt inside the scheduler on ``cpu``.

        The charge steals progress from whatever is running there, which
        is how ULE's expensive ``sched_pickcpu`` scans show up as a 13 %
        throughput loss on sysbench in the paper (§6.3).
        """
        if ns <= 0:
            return
        core = self.machine.cores[cpu]
        core.sched_overhead_ns += ns
        self.metrics.incr("sched.overhead_ns", ns)
        thread = core.current
        if thread is not None and thread.run_remaining not in (
                None, RUN_FOREVER):
            thread.run_remaining += ns
            if core.completion_event is not None:
                self._cancel_completion(core)
                self._arm_completion(core)

    def _tick_callback(self, core: Core):
        """The callback backing ``core``'s tick event: the scheduler's
        fused hook when one exists (and no fault injector can bend tick
        times), else the generic :meth:`_tick`.  A fused hook inlines
        the accounting + task_tick chain bit-identically — the event
        stream, labels and schedule are unchanged."""
        if self.faults is None:
            hook = self.scheduler.make_tick_hook(core)
            if hook is not None:
                return hook
        return self._tick

    def start_ticks(self) -> None:
        """Arm the per-core periodic tick at the scheduler's rate."""
        if self._ticks_started:
            return
        self._ticks_started = True
        period = self.scheduler.tick_ns
        for core in self.machine.cores:
            # Stagger ticks across cores like real timer interrupts.
            offset = (core.index * period) // max(1, len(self.machine))
            core.tick_event = self._sink.make_reusable(
                self._tick_callback(core), core,
                label=f"tick:cpu{core.index}")
            core.tick_origin = self.now + period + offset
            core.tick_stopped = False
            self._sink.repost(core.tick_event, core.tick_origin)

    def _tick(self, core: Core) -> None:
        if not core.online:
            # Raced with a same-instant offline; the hotplug path
            # cancelled the tick, so this only fires for stale events.
            return
        if core.current is None and self.tickless \
                and not self.scheduler.needs_tick(core):
            # NO_HZ: the core is idle and the scheduler has no periodic
            # work for it — park the tick instead of re-arming.  Every
            # enqueue/migrate/renice/affinity change (and the core's own
            # next _switch_to) re-checks needs_tick and restarts the
            # tick phase-aligned, so the schedule is unchanged.
            core.tick_stopped = True
            self._nr_stopped_ticks += 1
            self.metrics.incr("engine.tick_stops")
            return
        next_tick = self.now + self.scheduler.tick_ns
        if self.faults is not None:
            next_tick = self.faults.tick_time(core, next_tick)
        self._sink.repost(core.tick_event, next_tick)
        if core.current is not None:
            self._update_curr(core)
            self.scheduler.task_tick(core)
            # The co-run speed factor may have changed; refresh timer.
            if core.need_resched:
                self._dispatch(core)
            elif core.completion_event is not None:
                self._cancel_completion(core)
                self._arm_completion(core)
        else:
            self.scheduler.idle_tick(core)
            if core.need_resched:
                self._dispatch(core)

    def _restart_tick(self, core: Core) -> None:
        """Re-arm a parked core's tick, phase-aligned to its stagger.

        The next tick lands on the same instant it would have in an
        always-tick run: the first ``t >= now`` with
        ``t ≡ tick_origin (mod tick_ns)``.
        """
        period = self.scheduler.tick_ns
        behind = self.now - core.tick_origin
        if behind < 0:
            next_tick = core.tick_origin
        else:
            rem = behind % period
            next_tick = self.now if rem == 0 else self.now + period - rem
        core.tick_stopped = False
        self._nr_stopped_ticks -= 1
        self.metrics.incr("engine.tick_restarts")
        self._sink.repost(core.tick_event, next_tick)

    def _kick_stopped_ticks(self) -> None:
        """Restart parked ticks wherever the scheduler now has periodic
        work (the analogue of the kernel's nohz idle-balance kick).

        Called from every path that changes runqueue composition."""
        needs_tick = self.scheduler.needs_tick
        for core in self.machine.cores:
            if core.tick_stopped and needs_tick(core):
                self._restart_tick(core)
            if not self._nr_stopped_ticks:
                return

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def stop(self, reason: str = "stopped") -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True
        self._stop_reason = reason

    def run(self, until: Optional[int] = None,
            stop_when: Optional[Callable[["Engine"], bool]] = None,
            check_interval: int = 64) -> str:
        """Drive the simulation.

        Stops when simulated time reaches ``until``, when ``stop_when``
        returns True (checked every ``check_interval`` events), when all
        threads have exited, or when :meth:`stop` is called.  Raises
        :class:`DeadlockError` when events drain while threads are still
        blocked.
        """
        self.scheduler.start()
        self.start_ticks()
        if self.faults is not None:
            self.faults.start()
        self._stopped = False
        self._stop_reason = None
        # Loop selection happens once, here — the fast loop carries no
        # per-event observer branches at all, so it is only eligible
        # when nothing needs those hooks.
        if self.fast and self.sanitizer is None and self.profiler is None \
                and self.faults is None and not self._tracing_active():
            return self._run_fast(until, stop_when, check_interval)
        return self._run_instrumented(until, stop_when, check_interval)

    def _tracing_active(self) -> bool:
        """Any tracer hook registered (disqualifies the fast loop)."""
        tracer = self.tracer
        return bool(tracer.on_switch or tracer.on_wake
                    or tracer.on_migrate or tracer.on_exit
                    or tracer.on_preempt or tracer.on_fault)

    def _pop_next(self, until: Optional[int]):
        """Merged pop across the main queue and the tick lane: the
        earlier ``(time, seq)`` head wins, reproducing the global pop
        order of a single queue bit-for-bit (the lane draws its seq
        numbers from the main queue's counter).

        When the winning lane head shares its instant with further
        lane tick events — a tick *epoch*, e.g. unstaggered cores or
        cores whose staggers collide — the scheduler's
        :meth:`~repro.sched.base.SchedClass.epoch_prefold` runs once
        for the whole group before the first tick of the instant
        fires, batching the shared per-instant work (CFS: the PELT
        decay-factor fills) a per-core pass would redo N times.
        """
        lane = self._lane
        entries = lane._entries
        head = lane._head
        n = len(entries)
        while head < n and entries[head][2].cancelled:
            head += 1
        if head >= n:
            if n:
                del entries[:]
                head = 0
            lane._head = head
            return self.events.pop_before(until)
        hentry = entries[head]
        qentry = self._peek_entry()
        if qentry is not None and qentry < hentry:
            lane._head = head
            if until is not None and qentry[0] > until:
                return None
            # peek_entry already drained dead heads: pop its entry
            # directly instead of rescanning via pop_before
            return self._pop_head()
        htime = hentry[0]
        if until is not None and htime > until:
            lane._head = head
            return None
        if head + 1 < n and entries[head + 1][0] == htime \
                and htime != self._epoch_at:
            self._epoch_at = htime
            lane._head = head
            cores = lane.epoch_cores(htime)
            if cores is not None:
                self.scheduler.epoch_prefold(cores, htime)
        head += 1
        if head >= 64:
            # compact the consumed prefix
            del entries[:head]
            head = 0
        lane._head = head
        event = hentry[2]
        event.popped = True
        return event

    def _queue_exhausted(self, until: Optional[int]) -> str:
        """Shared run-loop epilogue: the queue drained, or the next
        live event lies beyond the deadline."""
        if until is not None:
            # Tickless idle can drain the queue entirely (the
            # always-tick engine would spin no-op ticks up to the
            # deadline, with threads possibly still blocked past it);
            # jump straight there.
            self.now = until
            for core in self.machine.cores:
                self._update_curr(core)
            return "deadline"
        if self.live_threads > 0 and any(
                t.is_blocked for t in self.threads):
            raise DeadlockError(
                f"{self.live_threads} live threads but no events")
        return "drained"

    def _run_instrumented(self, until, stop_when, check_interval) -> str:
        """The observable run loop: per-event profiler, sanitizer and
        stop-condition hooks (each one local ``is None`` test when
        off).  The event counter accumulates locally and flushes once
        — the finally block keeps events/sec reporting exact on every
        exit path, including exceptions from callbacks."""
        events_since_check = 0
        profiler = self.profiler
        sanitizer = self.sanitizer
        pop_before = self._pop_next
        processed = 0
        try:
            while True:
                if self._stopped:
                    return self._stop_reason or "stopped"
                if profiler is None:
                    event = pop_before(until)
                else:
                    # queue-drain self-time (heap sift / wheel cascade)
                    # gets its own ``eventq`` bucket: it belongs to no
                    # event callback but is real per-event cost
                    t0 = timestamp()
                    event = pop_before(until)
                    profiler.record("eventq", timestamp() - t0)
                if event is None:
                    return self._queue_exhausted(until)
                self.now = event.time
                processed += 1
                if profiler is None:
                    event.callback(*event.args)
                else:
                    t0 = timestamp()
                    event.callback(*event.args)
                    profiler.record(event.label, timestamp() - t0)
                if sanitizer is not None:
                    sanitizer.after_event(event)
                if stop_when is not None:
                    events_since_check += 1
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        if stop_when(self):
                            return "condition"
                if self.live_threads == 0:
                    return "all-exited"
        finally:
            self.events_processed += processed

    def _run_fast(self, until, stop_when, check_interval) -> str:
        """The specialized fast loop (``fast=True`` / ``REPRO_FAST``):
        identical event order and schedule, but the profiler/sanitizer
        observer branches are *gone*, not just false — :meth:`run`
        only selects this loop when no observer is installed."""
        events_since_check = 0
        pop_before = self._pop_next
        processed = 0
        try:
            while True:
                if self._stopped:
                    return self._stop_reason or "stopped"
                event = pop_before(until)
                if event is None:
                    return self._queue_exhausted(until)
                self.now = event.time
                processed += 1
                event.callback(*event.args)
                if stop_when is not None:
                    events_since_check += 1
                    if events_since_check >= check_interval:
                        events_since_check = 0
                        if stop_when(self):
                            return "condition"
                if self.live_threads == 0:
                    return "all-exited"
        finally:
            self.events_processed += processed

    # ------------------------------------------------------------------
    # canonical schedule state (digest hook)
    # ------------------------------------------------------------------

    def canonical_state(self) -> dict:
        """A canonical, scheduler-independent summary of the schedule.

        This is the engine's digest hook: everything in the returned
        dict is a pure function of (workload, scheduler, seed) — thread
        identity is the per-engine spawn index, never the process-global
        tid, and event counts (which legitimately differ between
        tickless and always-tick runs of the same schedule) are
        excluded.  :func:`repro.tracing.digest.schedule_digest` hashes
        it into the compact digests stored under ``tests/golden/``.
        """
        for core in self.machine.cores:
            self._update_curr(core)
        state = {
            "now": self.now,
            "threads": [
                (index, t.name, t.state.value, t.total_runtime,
                 t.total_sleeptime, t.total_waittime, t.nr_switches,
                 t.nr_migrations, t.nr_preemptions, t.created_at,
                 t.exited_at)
                for index, t in enumerate(self.threads)
            ],
            "cores": [
                (c.index, c.busy_ns, c.idle_ns, c.nr_switches)
                for c in self.machine.cores
            ],
            "counters": {
                name: self.metrics.counter(name)
                for name in ("engine.switches", "engine.migrations",
                             "engine.preemptions", "engine.exits")
            },
        }
        if self.faults is not None:
            # Only present under a non-empty fault plan, so no-fault
            # digests (golden traces) are unaffected.
            state["faults"] = self.faults.canonical()
        return state

    # ------------------------------------------------------------------
    # convenience queries
    # ------------------------------------------------------------------

    def threads_named(self, prefix: str) -> list[SimThread]:
        """All threads whose name starts with ``prefix``."""
        return [t for t in self.threads if t.name.startswith(prefix)]

    def threads_of_app(self, app: str) -> list[SimThread]:
        """All threads belonging to application ``app``."""
        return [t for t in self.threads if t.app == app]

    def nr_runnable_on(self, cpu: int) -> int:
        """Runnable-thread count on ``cpu`` (scheduler's view)."""
        return self.scheduler.nr_runnable(self.machine.cores[cpu])
