"""Crash-safe artifact writes.

Every JSON/text artifact the repo produces — benchmark results,
golden-trace digests, experiment reports, lint reports, campaign
checkpoints — goes through one helper so an interrupted run (SIGKILL,
OOM, power loss) can never leave a half-written file behind.  The
recipe is the standard one: write to a temporary file *in the same
directory* (so the final rename stays on one filesystem), fsync, then
atomically ``os.replace`` over the destination.  Readers see either
the old contents or the new contents, never a torn write.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, "os.PathLike[str]"]


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (tempfile + fsync +
    rename).  Creates parent directories as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(target.parent),
                               prefix=f".{target.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def atomic_write_json(path: PathLike, obj: Any, *, indent: int = 2,
                      sort_keys: bool = True) -> None:
    """Atomically write ``obj`` as JSON (trailing newline included, so
    repeated writes of identical data are byte-identical files)."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, text + "\n")
