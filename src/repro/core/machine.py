"""The machine model: CPUs and per-CPU execution state.

A :class:`Core` is the engine-facing per-CPU record: the running
thread, idle/busy accounting, the pending run-completion timer, and the
reschedule flag.  Scheduler-private per-CPU state (CFS ``cfs_rq``, ULE
``tdq``) is attached by the scheduler at ``rq``.

The machine also models a small amount of micro-architecture that the
paper's explanations rely on:

* ``corun_slowdown``: when a core time-shares threads of *different*
  applications its effective speed for each is reduced (cache pollution;
  this is why fibo finishes slightly faster on ULE in Table 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine
    from .thread import SimThread


class Core:
    """Per-CPU execution state."""

    __slots__ = ("engine", "index", "current", "rq", "need_resched",
                 "completion_event", "resched_event", "_resched_reuse",
                 "tick_event", "tick_origin", "tick_stopped", "online",
                 "busy_ns", "idle_ns", "nr_switches",
                 "sched_overhead_ns", "_last_account",
                 "curr_started_at", "_curr_account_start",
                 "_curr_speed")

    def __init__(self, engine: "Engine", index: int):
        self.engine = engine
        self.index = index
        #: currently running thread (None = idle)
        self.current: Optional["SimThread"] = None
        #: scheduler-private per-CPU state (runqueues)
        self.rq: Any = None
        #: set by schedulers to request a reschedule
        self.need_resched = False
        #: pending run-completion event (cancellable)
        self.completion_event = None
        #: pending immediate-reschedule event, to coalesce requests
        self.resched_event = None
        #: reusable resched event backing :meth:`Engine.request_resched`
        self._resched_reuse = None
        #: reusable periodic-tick event (armed by the engine)
        self.tick_event = None
        #: time of this core's first tick; all later ticks keep the
        #: phase ``tick_origin mod tick_ns`` even across tickless gaps
        self.tick_origin = 0
        #: True while the periodic tick is parked (NO_HZ idle)
        self.tick_stopped = False
        #: False while the core is offlined by fault injection
        #: ("hotplug"); offline cores run nothing, take no ticks, and
        #: are skipped by every placement and balancing path
        self.online = True

        # accounting
        self.busy_ns = 0
        self.idle_ns = 0
        self.nr_switches = 0
        self.sched_overhead_ns = 0
        self._last_account = engine.now
        #: time the current thread was put on the CPU
        self.curr_started_at = engine.now
        #: accounting point for :meth:`Engine._update_curr`; refreshed
        #: at every switch, so the init value only covers the idle
        #: stretch before the core first runs anything
        self._curr_account_start = engine.now
        #: co-run speed factor of the current thread (1.0 = full speed)
        self._curr_speed = 1.0

    def reset(self) -> None:
        """Restore construction-time state (``Engine.reset``).

        The owning engine clears its event queues first, so pending
        event handles here are dropped wholesale rather than
        individually cancelled; ``rq`` is rebuilt by the engine via
        ``scheduler.init_core`` right after.
        """
        self.current = None
        self.rq = None
        self.need_resched = False
        self.completion_event = None
        self.resched_event = None
        self._resched_reuse = None
        self.tick_event = None
        self.tick_origin = 0
        self.tick_stopped = False
        self.online = True
        self.busy_ns = 0
        self.idle_ns = 0
        self.nr_switches = 0
        self.sched_overhead_ns = 0
        self._last_account = 0
        self.curr_started_at = 0
        self._curr_account_start = 0
        self._curr_speed = 1.0

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def account_to_now(self) -> int:
        """Charge elapsed time since the last accounting point to either
        busy or idle time; returns the delta in nanoseconds."""
        now = self.engine.now
        delta = now - self._last_account
        if delta > 0:
            if self.current is None:
                self.idle_ns += delta
            else:
                self.busy_ns += delta
            self._last_account = now
        return delta

    def utilization(self) -> float:
        """Fraction of accounted time this core was busy."""
        total = self.busy_ns + self.idle_ns
        # reporting-only ratio; never feeds back into the schedule
        return self.busy_ns / total if total else 0.0  # schedlint: ignore[float-ns-clock]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self.current.name if self.current else "idle"
        return f"<Core {self.index} running={running}>"


class Machine:
    """A simulated multiprocessor."""

    __slots__ = ("topology", "corun_slowdown", "cores", "nr_offline")

    def __init__(self, engine: "Engine", topology: Topology,
                 corun_slowdown: float = 1.0):
        if corun_slowdown < 1.0:
            raise ValueError("corun_slowdown must be >= 1.0")
        self.topology = topology
        self.corun_slowdown = corun_slowdown
        self.cores = [Core(engine, i) for i in range(topology.ncpus)]
        #: offlined-core count, maintained by the engine's hotplug
        #: paths; placement fast paths branch on ``nr_offline == 0``
        self.nr_offline = 0

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> Core:
        """The core at ``index``."""
        return self.cores[index]

    def idle_cores(self) -> list[Core]:
        """Cores with no running thread."""
        return [c for c in self.cores if c.is_idle]

    def online_cpus(self) -> list[int]:
        """Indices of cores not currently offlined by fault injection
        (ascending, so iteration order is deterministic)."""
        return [c.index for c in self.cores if c.online]

    def busiest_by(self, key) -> Core:
        """The core maximizing ``key(core)`` (ties: lowest index)."""
        return max(self.cores, key=lambda c: (key(c), -c.index))

    def speed_factor(self, core: Core, thread: "SimThread",
                     nr_apps_on_core: int) -> float:
        """Execution speed multiplier for ``thread`` on ``core``.

        When more than one distinct application shares the core the
        speed drops by ``corun_slowdown`` (>= 1.0; 1.0 disables the
        model).  Threads of the same application are assumed to share
        their working set and do not slow each other down.
        """
        if nr_apps_on_core > 1 and self.corun_slowdown > 1.0:
            return 1.0 / self.corun_slowdown
        return 1.0
