"""Machine topology description.

Both schedulers consult the hardware topology: CFS builds a hierarchy of
scheduling domains (SMT siblings, LLC domain, NUMA node, machine) and
ULE walks a CPU-group tree when placing and stealing threads.  Both are
derived from the same :class:`Topology` object.

A topology is a list of :class:`TopologyLevel` objects ordered from the
tightest sharing (e.g. SMT) to the whole machine.  Each level partitions
the CPUs into groups; a level's groups must be a refinement-coarsening
chain: every group at level *k* is contained in exactly one group at
level *k+1*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .errors import TopologyError


@dataclass(frozen=True)
class TopologyLevel:
    """One sharing level: a name and a partition of the CPU set."""

    name: str
    groups: tuple[frozenset[int], ...]

    @staticmethod
    def make(name: str, groups: Sequence[Sequence[int]]) -> "TopologyLevel":
        return TopologyLevel(name, tuple(frozenset(g) for g in groups))


# schedlint: ignore[missing-slots] -- one instance per engine, built once at setup; not on the event hot path
class Topology:
    """A validated multi-level CPU topology."""

    def __init__(self, ncpus: int, levels: Sequence[TopologyLevel]):
        if ncpus <= 0:
            raise TopologyError(f"ncpus must be positive, got {ncpus}")
        self.ncpus = ncpus
        self.levels = tuple(levels)
        self._validate()
        # Pre-compute cpu -> group maps per level for O(1) lookups.
        self._group_of: dict[str, dict[int, frozenset[int]]] = {}
        for level in self.levels:
            mapping: dict[int, frozenset[int]] = {}
            for group in level.groups:
                for cpu in group:
                    mapping[cpu] = group
            self._group_of[level.name] = mapping
        # Memoized per-cpu walks (levels are immutable after __init__,
        # so the walks never change; ULE consults them per wakeup).
        self._levels_above: dict[int, tuple] = {}
        self._levels_above_sorted: dict[int, tuple] = {}

    def _validate(self) -> None:
        all_cpus = frozenset(range(self.ncpus))
        if not self.levels:
            raise TopologyError("topology needs at least one level")
        prev: Optional[TopologyLevel] = None
        for level in self.levels:
            seen: set[int] = set()
            for group in level.groups:
                if not group:
                    raise TopologyError(f"empty group in level {level.name}")
                if seen & group:
                    raise TopologyError(
                        f"overlapping groups in level {level.name}")
                seen |= group
            if seen != all_cpus:
                raise TopologyError(
                    f"level {level.name} does not cover all CPUs")
            if prev is not None:
                for small in prev.groups:
                    containers = [g for g in level.groups if small <= g]
                    if len(containers) != 1:
                        raise TopologyError(
                            f"group {sorted(small)} of level {prev.name} "
                            f"not nested in level {level.name}")
            prev = level
        top = self.levels[-1]
        if len(top.groups) != 1:
            raise TopologyError("topmost level must be a single group")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def level(self, name: str) -> TopologyLevel:
        """The level named ``name`` (raises TopologyError if absent)."""
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise TopologyError(f"no level named {name!r}")

    def has_level(self, name: str) -> bool:
        """True when a level named ``name`` exists."""
        return any(lvl.name == name for lvl in self.levels)

    def group_of(self, name: str, cpu: int) -> frozenset[int]:
        """The group containing ``cpu`` at level ``name``."""
        try:
            return self._group_of[name][cpu]
        except KeyError as exc:
            raise TopologyError(f"no level/cpu {name!r}/{cpu}") from exc

    def siblings(self, name: str, cpu: int) -> frozenset[int]:
        """CPUs sharing ``cpu``'s group at level ``name``, without
        ``cpu`` itself."""
        return self.group_of(name, cpu) - {cpu}

    def llc_of(self, cpu: int) -> frozenset[int]:
        """CPUs sharing a last-level cache with ``cpu`` (falls back to
        the whole machine when no ``llc`` level exists)."""
        if self.has_level("llc"):
            return self.group_of("llc", cpu)
        return frozenset(range(self.ncpus))

    def node_of(self, cpu: int) -> frozenset[int]:
        """CPUs on ``cpu``'s NUMA node (whole machine when no ``numa``
        level exists)."""
        if self.has_level("numa"):
            return self.group_of("numa", cpu)
        return frozenset(range(self.ncpus))

    def shares_llc(self, a: int, b: int) -> bool:
        """True when CPUs ``a`` and ``b`` share a last-level cache."""
        return b in self.llc_of(a)

    def levels_above(self, cpu: int):
        """``(level_name, group)`` pairs from tightest to machine.

        This is the walk ULE performs when widening its steal search;
        it runs per wakeup and per idle poll, so the tuple is memoized.
        """
        try:
            return self._levels_above[cpu]
        except KeyError:
            walk = tuple((level.name, self.group_of(level.name, cpu))
                         for level in self.levels)
            self._levels_above[cpu] = walk
            return walk

    def levels_above_sorted(self, cpu: int):
        """Like :meth:`levels_above` but with each group also given as
        an ascending tuple — the deterministic scan order the steal and
        placement paths need, without re-sorting per call."""
        try:
            return self._levels_above_sorted[cpu]
        except KeyError:
            walk = tuple((name, group, tuple(sorted(group)))
                         for name, group in self.levels_above(cpu))
            self._levels_above_sorted[cpu] = walk
            return walk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(l.name for l in self.levels)
        return f"<Topology ncpus={self.ncpus} levels=[{names}]>"


# ----------------------------------------------------------------------
# Builders for the machines used in the paper
# ----------------------------------------------------------------------

#: interned builder results: Topology objects are immutable after
#: validation, so campaign cells with identical topology share one
#: instance (and its memoized walks / derived per-topology caches)
#: instead of re-validating per engine
_INTERNED: dict = {}


def single_core() -> Topology:
    """A single-CPU machine (Section 5's per-core experiments)."""
    topo = _INTERNED.get("single")
    if topo is None:
        topo = Topology(1, [TopologyLevel.make("machine", [[0]])])
        _INTERNED["single"] = topo
    return topo


def smp(ncpus: int, cpus_per_llc: Optional[int] = None,
        numa_nodes: int = 1) -> Topology:
    """A generic SMP machine.

    ``cpus_per_llc`` defaults to ``ncpus // numa_nodes`` (one cache per
    node).  CPUs are numbered node-major.  Repeated calls with the same
    shape return the same interned (immutable) instance.
    """
    key = ("smp", ncpus, cpus_per_llc, numa_nodes)
    topo = _INTERNED.get(key)
    if topo is not None:
        return topo
    if ncpus % numa_nodes:
        raise TopologyError("ncpus must divide evenly into numa_nodes")
    per_node = ncpus // numa_nodes
    if cpus_per_llc is None:
        cpus_per_llc = per_node
    if per_node % cpus_per_llc:
        raise TopologyError("cpus_per_llc must divide cpus per node")
    levels = []
    llcs = [list(range(i, i + cpus_per_llc))
            for i in range(0, ncpus, cpus_per_llc)]
    levels.append(TopologyLevel.make("llc", llcs))
    if numa_nodes > 1:
        nodes = [list(range(i, i + per_node))
                 for i in range(0, ncpus, per_node)]
        levels.append(TopologyLevel.make("numa", nodes))
    levels.append(TopologyLevel.make("machine", [list(range(ncpus))]))
    topo = Topology(ncpus, levels)
    _INTERNED[key] = topo
    return topo


def opteron_6172() -> Topology:
    """The paper's 32-core AMD Opteron 6172: 4 NUMA nodes of 8 cores,
    each node with its own L3."""
    return smp(32, cpus_per_llc=8, numa_nodes=4)


def i7_3770() -> Topology:
    """The paper's desktop machine: 8 hardware threads, 4 SMT pairs,
    one shared LLC, one node."""
    topo = _INTERNED.get("i7_3770")
    if topo is None:
        pairs = [[i, i + 1] for i in range(0, 8, 2)]
        topo = Topology(8, [
            TopologyLevel.make("smt", pairs),
            TopologyLevel.make("llc", [list(range(8))]),
            TopologyLevel.make("machine", [list(range(8))]),
        ])
        _INTERNED["i7_3770"] = topo
    return topo
