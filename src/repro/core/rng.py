"""Deterministic random number generation for the simulator.

Each consumer (the ULE balancer, a workload generator, ...) gets its own
named stream derived from the experiment seed, so adding a new random
consumer never perturbs the draws seen by existing ones.  This is the
standard trick for reproducible discrete-event simulation.
"""

from __future__ import annotations

import hashlib
import random


class RandomStream:
    """A named, independently seeded pseudo-random stream.

    The stream seed is derived by hashing ``(root_seed, name)`` so streams
    are stable across runs and uncorrelated with each other.
    """

    __slots__ = ("name", "_rng")

    def __init__(self, root_seed: int, name: str):
        self.name = name
        digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi)``."""
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle a mutable sequence in place."""
        self._rng.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def jitter_ns(self, base_ns: int, fraction: float) -> int:
        """Return ``base_ns`` multiplied by a uniform factor in
        ``[1 - fraction, 1 + fraction]``, never below 1 ns.

        Used to add realistic variance to modelled compute phases.
        """
        if fraction <= 0.0:
            return max(1, int(base_ns))
        factor = self._rng.uniform(1.0 - fraction, 1.0 + fraction)
        return max(1, int(base_ns * factor))


class RandomSource:
    """Factory handing out :class:`RandomStream` objects by name.

    A single :class:`RandomSource` is owned by the simulation engine;
    every component asks it for a stream under a stable name.
    """

    __slots__ = ("root_seed", "_streams")

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream registered under ``name``, creating it on
        first use."""
        if name not in self._streams:
            self._streams[name] = RandomStream(self.root_seed, name)
        return self._streams[name]
