"""Time units and conversions for the simulation.

All simulation time is kept as integer nanoseconds.  Integer time makes
event ordering exact and reproducible: there is no floating-point drift,
and two events scheduled for "the same instant" compare equal instead of
landing a few ulps apart.

The constants mirror the two kernels' clocks:

* Linux ticks at ``HZ = 1000`` (1 ms tick) in the configuration used by the
  paper (Linux 4.9 LTS on the test machine).
* FreeBSD's ULE accounts in ``stathz = 127`` ticks (~7.87 ms); the paper's
  "10 ticks (78ms)" default timeslice is expressed in these units.
"""

from __future__ import annotations

NSEC_PER_USEC = 1_000
NSEC_PER_MSEC = 1_000_000
NSEC_PER_SEC = 1_000_000_000

USEC_PER_SEC = 1_000_000
MSEC_PER_SEC = 1_000

#: Linux timer frequency (ticks per second) assumed by the CFS model.
LINUX_HZ = 1000
#: Duration of one Linux tick in nanoseconds.
LINUX_TICK_NSEC = NSEC_PER_SEC // LINUX_HZ

#: FreeBSD statistics clock frequency used by ULE for slice accounting.
FREEBSD_STATHZ = 127
#: Duration of one FreeBSD stathz tick in nanoseconds (~7.874 ms).
FREEBSD_TICK_NSEC = NSEC_PER_SEC // FREEBSD_STATHZ


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(value * NSEC_PER_USEC)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(value * NSEC_PER_MSEC)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(value * NSEC_PER_SEC)


def to_sec(ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return ns / NSEC_PER_SEC


def to_msec(ns: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return ns / NSEC_PER_MSEC


def format_ns(ns: int) -> str:
    """Render a nanosecond duration in a human-friendly unit.

    >>> format_ns(1_500_000)
    '1.500ms'
    >>> format_ns(2_000_000_000)
    '2.000s'
    """
    if ns >= NSEC_PER_SEC:
        return f"{ns / NSEC_PER_SEC:.3f}s"
    if ns >= NSEC_PER_MSEC:
        return f"{ns / NSEC_PER_MSEC:.3f}ms"
    if ns >= NSEC_PER_USEC:
        return f"{ns / NSEC_PER_USEC:.3f}us"
    return f"{ns}ns"
