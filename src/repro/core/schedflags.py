"""Flags passed between the engine and scheduler classes.

These mirror the Linux ``ENQUEUE_*`` / ``DEQUEUE_*`` flags that the
paper's Table 1 discussion hinges on: Linux distinguishes a wakeup
enqueue from a fork enqueue with a flag, which is how the port maps one
Linux entry point onto FreeBSD's two (``sched_add`` vs
``sched_wakeup``).
"""

from __future__ import annotations

import enum


class EnqueueFlags(enum.Flag):
    NONE = 0
    #: the thread is being enqueued because it just woke up
    WAKEUP = enum.auto()
    #: the thread is newly created (fork/spawn)
    NEW = enum.auto()
    #: the thread is arriving from another CPU (load balancing)
    MIGRATE = enum.auto()
    #: re-queue after a yield
    YIELD = enum.auto()


class DequeueFlags(enum.Flag):
    NONE = 0
    #: the thread is going to sleep / blocking
    SLEEP = enum.auto()
    #: the thread is leaving for another CPU
    MIGRATE = enum.auto()
    #: the thread exited
    DEAD = enum.auto()


class SelectFlags(enum.Flag):
    NONE = 0
    #: placement for a newly created thread
    FORK = enum.auto()
    #: placement for a thread waking up
    WAKEUP = enum.auto()
