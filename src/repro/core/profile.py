"""Per-subsystem event profiling (``--profile`` / ``REPRO_PROFILE``).

The perf work in this repo is measured, not asserted: the engine can
classify every event it executes by *subsystem* — the prefix of the
event label before the first ``:`` (``tick``, ``resched``, ``runend``,
``wake``, ``spawn``, ``unstall``, scheduler balance labels, …) — and
attribute the wall-clock **self-time** of the event's callback to that
subsystem.  The report shows where simulated time is actually spent,
which is how the timing-wheel and hot-path changes in
``docs/performance.md`` were validated.

The profiler is strictly off the hot path: when disabled (the
default), :meth:`Engine.run` takes a single ``is None`` branch per
event and allocates nothing.  When enabled it costs two
``perf_counter`` reads per event, so profiled throughput numbers are
*relative* (use ``make bench`` for absolute ones).

Profiled wall-clock use is measurement-only and never feeds back into
the simulation, hence the schedlint suppressions below.

``global_profiler()`` returns a process-wide instance shared by every
engine whose profiling was enabled via the environment — this is what
lets the campaign runner (``python -m repro.experiments run
--profile``, which forces serial execution) aggregate across all the
cells of a campaign.
"""

from __future__ import annotations

import os
from time import perf_counter_ns


def profile_from_env() -> bool:
    """``REPRO_PROFILE`` truthiness (unset/0/false/no/off = off)."""
    value = os.environ.get("REPRO_PROFILE", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class EventProfiler:
    """Accumulates per-subsystem event counts and callback self-time.

    ``record(label, ns)`` is called by the engine's run loop for every
    executed event; the subsystem is the label up to the first ``:``
    (the whole label when there is none, ``"?"`` for unlabelled
    events).
    """

    __slots__ = ("counts", "self_ns")

    def __init__(self):
        self.counts: dict[str, int] = {}
        self.self_ns: dict[str, int] = {}

    def record(self, label: str, ns: int) -> None:
        """Attribute one executed event (``ns`` of callback self-time)
        to the subsystem named by its label prefix."""
        subsystem = label.partition(":")[0] or "?"
        counts = self.counts
        if subsystem in counts:
            counts[subsystem] += 1
            self.self_ns[subsystem] += ns
        else:
            counts[subsystem] = 1
            self.self_ns[subsystem] = ns

    def merge(self, other: "EventProfiler") -> None:
        """Fold another profiler's totals into this one."""
        for subsystem, count in other.counts.items():
            self.counts[subsystem] = self.counts.get(subsystem, 0) + count
            self.self_ns[subsystem] = (self.self_ns.get(subsystem, 0)
                                       + other.self_ns[subsystem])

    def clear(self) -> None:
        """Reset all accumulated counts and self-times."""
        self.counts.clear()
        self.self_ns.clear()

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def report(self) -> str:
        """A fixed-width table, subsystems sorted by self-time
        (descending, name-tiebroken for determinism)."""
        rows = sorted(self.counts,
                      key=lambda s: (-self.self_ns[s], s))
        total_n = self.total_events
        total_ns = sum(self.self_ns.values())
        lines = [f"{'subsystem':<14} {'events':>10} {'self-time':>12} "
                 f"{'%time':>6}  {'ns/event':>9}"]
        for subsystem in rows:
            count = self.counts[subsystem]
            ns = self.self_ns[subsystem]
            # presentation-only ratios; never feed back into the sim
            share = 100.0 * ns / total_ns if total_ns else 0.0  # schedlint: ignore[float-ns-clock]
            per = ns / count if count else 0.0  # schedlint: ignore[float-ns-clock]
            lines.append(f"{subsystem:<14} {count:>10} "
                         f"{ns / 1e6:>10.2f}ms {share:>5.1f}%  {per:>9.0f}")  # schedlint: ignore[float-ns-clock]
        lines.append(f"{'total':<14} {total_n:>10} "
                     f"{total_ns / 1e6:>10.2f}ms {100.0:>5.1f}%")  # schedlint: ignore[float-ns-clock]
        return "\n".join(lines)


#: the process-wide aggregation target for env-enabled profiling
_GLOBAL: EventProfiler | None = None


def global_profiler() -> EventProfiler:
    """The shared process-wide profiler (created on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = EventProfiler()
    return _GLOBAL


def timestamp() -> int:
    """Monotonic wall-clock in ns (measurement only; never feeds back
    into simulated state)."""
    return perf_counter_ns()  # schedlint: ignore[wall-clock]
