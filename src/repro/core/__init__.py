"""Simulation kernel: clock, events, machine/topology model, threads,
behaviour actions, metrics, and the discrete-event engine."""

from . import clock
from .actions import (Action, Exit, Fork, Run, Sleep, SyncAction,
                      ThreadSpec, Yield, run_forever)
from .engine import Engine, Tracer
from .errors import (DeadlockError, ExperimentError, SchedulerError,
                     SimulationError, ThreadStateError, TopologyError,
                     WorkloadError)
from .machine import Core, Machine
from .metrics import LatencyRecorder, MetricRegistry, TimeSeries
from .rng import RandomSource, RandomStream
from .schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .thread import SimThread, ThreadCtx, ThreadState
from .topology import (Topology, TopologyLevel, i7_3770, opteron_6172,
                       single_core, smp)

__all__ = [
    "clock",
    "Engine", "Tracer",
    "Action", "Run", "Sleep", "Yield", "Fork", "Exit", "SyncAction",
    "ThreadSpec", "run_forever",
    "SimThread", "ThreadCtx", "ThreadState",
    "Core", "Machine",
    "Topology", "TopologyLevel", "single_core", "smp", "opteron_6172",
    "i7_3770",
    "MetricRegistry", "LatencyRecorder", "TimeSeries",
    "RandomSource", "RandomStream",
    "EnqueueFlags", "DequeueFlags", "SelectFlags",
    "SimulationError", "SchedulerError", "ThreadStateError",
    "TopologyError", "WorkloadError", "ExperimentError", "DeadlockError",
]
