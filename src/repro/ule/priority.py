"""Priority computation for ULE threads.

Two bands (§2.2):

* interactive threads: a linear interpolation of the score over the
  interactive band — penalty 0 is the best interactive priority,
  penalty == threshold the worst;
* batch threads: priority follows recent CPU usage ("the more a thread
  runs, the lower its priority"), with niceness added linearly.

Lower numbers are better, as in FreeBSD.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interactivity import SleepRunHistory
    from .params import UleTunables


def interactive_priority(tun: "UleTunables", score: int) -> int:
    """Map a score in [0, interact_thresh] onto the interactive band."""
    score = max(0, min(score, tun.interact_thresh))
    return score * tun.interact_prio_max // tun.interact_thresh


def batch_priority(tun: "UleTunables", hist: "SleepRunHistory",
                   nice: int) -> int:
    """Map recent CPU usage plus nice onto the batch band."""
    lo = tun.batch_prio_min
    hi = tun.nqueues - 1
    span = hi - lo
    # Usage claims the first ~60% of the band, nice the rest.
    usage_span = (span * 3) // 5
    usage = int(hist.cpu_share() * usage_span)
    nice_off = (nice + 20) * (span - usage_span) // 40
    return max(lo, min(hi, lo + usage + nice_off))


def compute_priority(tun: "UleTunables", hist: "SleepRunHistory",
                     nice: int) -> tuple[int, bool]:
    """Return ``(priority, is_interactive)`` for a thread."""
    score = hist.score(nice)
    if score <= tun.interact_thresh:
        return interactive_priority(tun, score), True
    return batch_priority(tun, hist, nice), False
