"""FreeBSD's ``runq(9)``: an array of per-priority FIFOs with a bitmap.

Insertion appends to the FIFO indexed by the thread's priority; picking
takes the head of the highest-priority (lowest index) non-empty FIFO.
The occupancy bitmap makes find-first-set O(1), exactly like the
kernel's ``runq_choose``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from ..core.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.thread import SimThread


class RunQueue:
    """Priority-indexed FIFOs with an occupancy bitmap."""

    __slots__ = ("nqueues", "_queues", "_bitmap", "_count")

    def __init__(self, nqueues: int = 64):
        self.nqueues = nqueues
        self._queues: list[deque] = [deque() for _ in range(nqueues)]
        self._bitmap = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def add(self, thread: "SimThread", priority: int,
            at_head: bool = False) -> None:
        """Append ``thread`` to the FIFO of ``priority`` (or push it at
        the head, for preempted threads that should resume first)."""
        if not 0 <= priority < self.nqueues:
            raise SchedulerError(f"priority {priority} out of range")
        queue = self._queues[priority]
        if at_head:
            queue.appendleft(thread)
        else:
            queue.append(thread)
        self._bitmap |= 1 << priority
        self._count += 1

    def remove(self, thread: "SimThread", priority: int) -> None:
        """Remove ``thread`` from the FIFO of ``priority``."""
        queue = self._queues[priority]
        try:
            queue.remove(thread)
        except ValueError:
            raise SchedulerError(
                f"{thread} not queued at priority {priority}") from None
        if not queue:
            self._bitmap &= ~(1 << priority)
        self._count -= 1

    def first_priority(self) -> Optional[int]:
        """Lowest occupied priority index (best), or None when empty."""
        if self._bitmap == 0:
            return None
        return (self._bitmap & -self._bitmap).bit_length() - 1

    def choose(self) -> Optional["SimThread"]:
        """Pop the head of the best non-empty FIFO."""
        pri = self.first_priority()
        if pri is None:
            return None
        queue = self._queues[pri]
        thread = queue.popleft()
        if not queue:
            self._bitmap &= ~(1 << pri)
        self._count -= 1
        return thread

    def peek(self) -> Optional["SimThread"]:
        """Head of the best non-empty FIFO without removing it."""
        pri = self.first_priority()
        if pri is None:
            return None
        return self._queues[pri][0]

    def threads(self) -> Iterator["SimThread"]:
        """All queued threads, best priority first, FIFO order within."""
        bitmap = self._bitmap
        while bitmap:
            pri = (bitmap & -bitmap).bit_length() - 1
            bitmap &= bitmap - 1
            yield from self._queues[pri]

    def first_allowed(self, cpu: int) -> Optional["SimThread"]:
        """First queued thread whose affinity permits ``cpu``, in
        :meth:`threads` order — the balancer's steal scan, without the
        generator machinery (it runs on every idle poll)."""
        bitmap = self._bitmap
        queues = self._queues
        while bitmap:
            pri = (bitmap & -bitmap).bit_length() - 1
            bitmap &= bitmap - 1
            for thread in queues[pri]:
                affinity = thread.affinity
                if affinity is None or cpu in affinity:
                    return thread
        return None

    def check_invariants(self) -> None:
        """Validate bitmap/count consistency (used by tests)."""
        count = 0
        for pri, queue in enumerate(self._queues):
            bit = bool(self._bitmap & (1 << pri))
            assert bit == bool(queue), f"bitmap wrong at {pri}"
            count += len(queue)
        assert count == self._count


class CalendarRunQueue:
    """FreeBSD's *timeshare* calendar queue.

    Batch threads are not queued at their absolute priority: ULE
    spreads them around a circular buffer relative to a rotating
    insertion index (``tdq_idx``), and picks from a rotating removal
    index (``tdq_ridx``) that only advances when its bucket drains.
    The effect is a priority-*weighted* round robin with a hard bound
    on how long any batch thread waits — one lap of the calendar —
    regardless of how bad its priority is.  (This is why batch threads
    cannot starve *each other*, §2.2: "ULE tries to be fair among
    batch threads by minimizing the difference of runtime", while the
    interactive queue can still starve the whole batch class.)
    """

    __slots__ = ("nbuckets", "_buckets", "_count", "insert_idx",
                 "remove_idx", "_bucket_of", "_bitmap", "_mask")

    def __init__(self, nbuckets: int = 64):
        self.nbuckets = nbuckets
        self._buckets: list[deque] = [deque() for _ in range(nbuckets)]
        self._count = 0
        #: rotating insertion origin (advanced by the tick)
        self.insert_idx = 0
        #: rotating removal index
        self.remove_idx = 0
        #: bucket each thread was filed under (for removal)
        self._bucket_of: dict[int, int] = {}
        #: occupancy bitmap — find-first-set from the removal index is
        #: O(1) (a rotate + ffs) instead of walking empty buckets
        self._bitmap = 0
        self._mask = (1 << nbuckets) - 1

    def _first_occupied(self) -> int:
        """Index of the first occupied bucket at or after
        ``remove_idx`` (circularly); caller guarantees ``_count > 0``."""
        r = self.remove_idx
        rotated = ((self._bitmap >> r)
                   | (self._bitmap << (self.nbuckets - r))) & self._mask
        distance = (rotated & -rotated).bit_length() - 1
        return (r + distance) % self.nbuckets

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def add(self, thread: "SimThread", priority: int,
            at_head: bool = False) -> None:
        """File ``thread`` ``priority`` buckets after the insertion
        origin (so worse priorities land further around the circle)."""
        if not 0 <= priority < self.nbuckets:
            raise SchedulerError(f"priority {priority} out of range")
        bucket = (self.insert_idx + priority) % self.nbuckets
        if at_head:
            # preempted threads resume from the removal point
            bucket = self.remove_idx
            self._buckets[bucket].appendleft(thread)
        else:
            self._buckets[bucket].append(thread)
        self._bucket_of[thread.tid] = bucket
        self._bitmap |= 1 << bucket
        self._count += 1

    def remove(self, thread: "SimThread",
               priority: int = -1) -> None:
        """Remove a thread from its calendar bucket."""
        try:
            bucket = self._bucket_of.pop(thread.tid)
        except KeyError:
            raise SchedulerError(f"{thread} not in calendar") from None
        queue = self._buckets[bucket]
        queue.remove(thread)
        if not queue:
            self._bitmap &= ~(1 << bucket)
        self._count -= 1

    def choose(self) -> Optional["SimThread"]:
        """Pop from the removal index, advancing it across empty
        buckets (never past the insertion origin + a full lap).

        The bitmap jump lands on exactly the bucket the one-step walk
        would have stopped at, and leaves ``remove_idx`` there — the
        same state the walk produces."""
        if self._count == 0:
            return None
        idx = self._first_occupied()
        self.remove_idx = idx
        bucket = self._buckets[idx]
        thread = bucket.popleft()
        self._bucket_of.pop(thread.tid, None)
        if not bucket:
            self._bitmap &= ~(1 << idx)
        self._count -= 1
        return thread

    def peek(self) -> Optional["SimThread"]:
        """Next thread the calendar would pop, without removing it."""
        if self._count == 0:
            return None
        return self._buckets[self._first_occupied()][0]

    def first_priority(self) -> Optional[int]:
        """Distance of the first occupied bucket from the removal
        index — the calendar's notion of 'best'."""
        if self._count == 0:
            return None
        return (self._first_occupied()
                - self.remove_idx) % self.nbuckets

    def advance(self) -> None:
        """Advance the insertion origin one bucket (called from the
        stathz tick, like FreeBSD's tdq_idx rotation)."""
        self.insert_idx = (self.insert_idx + 1) % self.nbuckets

    def threads(self) -> Iterator["SimThread"]:
        """All queued threads in pop order around the circle."""
        idx = self.remove_idx
        for _ in range(self.nbuckets):
            yield from self._buckets[idx]
            idx = (idx + 1) % self.nbuckets

    def first_allowed(self, cpu: int) -> Optional["SimThread"]:
        """First queued thread whose affinity permits ``cpu``, in
        :meth:`threads` order (see ``RunQueue.first_allowed``); stops
        once every queued thread has been seen instead of walking all
        the empty buckets."""
        if self._count == 0:
            return None
        r = self.remove_idx
        nbuckets = self.nbuckets
        rotated = ((self._bitmap >> r)
                   | (self._bitmap << (nbuckets - r))) & self._mask
        buckets = self._buckets
        while rotated:
            distance = (rotated & -rotated).bit_length() - 1
            rotated &= rotated - 1
            for thread in buckets[(r + distance) % nbuckets]:
                affinity = thread.affinity
                if affinity is None or cpu in affinity:
                    return thread
        return None

    def check_invariants(self) -> None:
        """Validate bucket/count/bitmap bookkeeping (used by tests)."""
        count = 0
        for i, bucket in enumerate(self._buckets):
            for t in bucket:
                assert self._bucket_of[t.tid] == i
            assert bool(self._bitmap & (1 << i)) == bool(bucket), \
                f"bitmap wrong at {i}"
            count += len(bucket)
        assert count == self._count == len(self._bucket_of)
