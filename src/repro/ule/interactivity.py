"""ULE's interactivity machinery (§2.2 of the paper).

Each thread keeps ~5 seconds of voluntary-sleep and run history.  The
interactivity *penalty* in [0, 100] is::

    m = 50
    penalty(r, s) = m / (s / r)         if s > r
                  = m / (r / s) + m     otherwise

so a thread that sleeps more than it runs lands in [0, 50], a thread
that runs more than it sleeps in [50, 100].  The *score* adds the nice
value; a thread with score <= 30 is interactive.  With nice 0 that
corresponds to sleeping more than ~62 % of the time (50*r/s <= 30 =>
s >= 5r/3).

History is decayed by ``sched_interact_update``: once the sum exceeds
the 5 s window it is scaled back (by 4/5, or halved when it overshot by
more than 20 %), limiting how much past behaviour counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .params import UleTunables


class SleepRunHistory:
    """The (runtime, sleeptime) window behind the interactivity score."""

    __slots__ = ("runtime", "sleeptime", "_tun")

    def __init__(self, tunables: "UleTunables",
                 runtime: int = 0, sleeptime: int = 0):
        self._tun = tunables
        self.runtime = runtime
        self.sleeptime = sleeptime

    def copy(self) -> "SleepRunHistory":
        """Snapshot for fork inheritance ("when a thread is created, it
        inherits the runtime and sleeptime of its parent")."""
        return SleepRunHistory(self._tun, self.runtime, self.sleeptime)

    def add_runtime(self, delta_ns: int) -> None:
        """Record executed time and decay the window."""
        if delta_ns > 0:
            self.runtime += delta_ns
            # _decay's below-limit early-out, hoisted: this runs on
            # every update_curr and the window rarely overflows
            if self.runtime + self.sleeptime >= self._tun.slp_run_max_ns:
                self._decay()

    def add_sleeptime(self, delta_ns: int) -> None:
        """Record voluntary sleep and decay the window."""
        if delta_ns > 0:
            self.sleeptime += delta_ns
            if self.runtime + self.sleeptime >= self._tun.slp_run_max_ns:
                self._decay()

    def absorb(self, other: "SleepRunHistory") -> None:
        """Fold a dying child's runtime back into the parent ("when a
        thread dies, its runtime ... is returned to its parent")."""
        self.runtime += other.runtime
        self._decay()

    def _decay(self) -> None:
        """``sched_interact_update``: keep the window near 5 s."""
        limit = self._tun.slp_run_max_ns
        total = self.runtime + self.sleeptime
        if total < limit:
            return
        if total > (limit // 5) * 6:
            self.runtime //= 2
            self.sleeptime //= 2
            return
        self.runtime = (self.runtime // 5) * 4
        self.sleeptime = (self.sleeptime // 5) * 4

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def penalty(self) -> int:
        """The interactivity penalty in [0, interact_max].

        This follows FreeBSD's ``sched_interact_score`` exactly:
        ``m * r/s`` when sleeping dominates, ``2m - m * s/r`` when
        running dominates (the paper's rendering of the second branch,
        ``m/(r/s) + m``, is a typo — it would *decrease* with more
        runtime, contradicting its own Fig. 2 where a pure hog's
        penalty rises to the maximum).
        """
        m = self._tun.interact_half
        r, s = self.runtime, self.sleeptime
        if r == 0 and s == 0:
            return 0
        if s > r:
            if r == 0:
                return 0
            return int(m * (r / s))
        if s == 0:
            return 2 * m
        return int(2 * m - m * (s / r))

    def score(self, nice: int) -> int:
        """Penalty plus niceness, clamped at zero."""
        return max(0, self.penalty() + nice)

    def is_interactive(self, nice: int) -> bool:
        """True when the score is at or below the threshold."""
        return self.score(nice) <= self._tun.interact_thresh

    def cpu_share(self) -> float:
        """Fraction of the recent window spent running, in [0, 1] —
        the basis for batch-priority ordering."""
        total = self.runtime + self.sleeptime
        if total == 0:
            return 0.0
        return self.runtime / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<hist r={self.runtime} s={self.sleeptime} "
                f"pen={self.penalty()}>")
