"""ULE load balancing (§2.2): thread *counts*, not load averages.

* The **periodic balancer** runs only on core 0, every 0.5–1.5 s
  (uniformly random).  Each invocation pairs the most loaded core (the
  donor) with the least loaded (the receiver) and migrates exactly one
  thread; a core can be donor or receiver only once per invocation, and
  pairing repeats until no useful pair remains.  This is why Fig. 6's
  512-spinner pile drains at roughly one thread per invocation.

* **Idle stealing**: a core whose runqueues are empty steals at most
  one thread from the most loaded core sharing a cache, widening the
  search one topology level at a time.

Per the paper's port (§3), the running thread is never migrated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread
    from .core import UleScheduler


def periodic_balance(sched: "UleScheduler") -> int:
    """One invocation of core 0's balancer; returns threads moved."""
    tun = sched.tunables
    # Offline (hotplugged-away) cores are invisible to the balancer:
    # they hold no threads (the drain moved everything off) and must
    # never be picked as a receiver.
    cpus = sched.machine.online_cpus()
    used: set[int] = set()
    moved = 0
    while True:
        donor = None
        receiver = None
        for cpu in cpus:
            if cpu in used:
                continue
            load = sched.tdq_of(cpu).load
            if donor is None or load > sched.tdq_of(donor).load:
                donor = cpu
        for cpu in cpus:
            if cpu in used or cpu == donor:
                continue
            load = sched.tdq_of(cpu).load
            if receiver is None or load < sched.tdq_of(receiver).load:
                receiver = cpu
        if donor is None or receiver is None:
            break
        if sched.tdq_of(donor).load - sched.tdq_of(receiver).load < 2:
            break
        victim = sched.tdq_of(donor).transferable(receiver)
        if victim is None:
            # Nothing movable on the donor (e.g. only the running
            # thread): exclude it and retry.
            used.add(donor)
            continue
        sched.engine.migrate_thread(victim, receiver)
        sched.engine.metrics.incr("ule.balance_migrations")
        moved += 1
        used.add(donor)
        used.add(receiver)
    sched.engine.metrics.incr("ule.balance_invocations")
    return moved


def idle_steal(sched: "UleScheduler", core: "Core") -> Optional["SimThread"]:
    """Steal one thread for an idle core, nearest victims first."""
    if sched._nr_loaded == 0:
        # No tdq anywhere carries ``steal_thresh`` load, so no scan can
        # find a victim — same outcome as the walk below, O(1).
        return None
    tun = sched.tunables
    steal_thresh = tun.steal_thresh
    tdqs = sched.tdqs()
    index = core.index
    for _, _, cpus in sched.topology.levels_above_sorted(index):
        victim_cpu = None
        victim_load = 0
        for cpu in cpus:
            if cpu == index:
                continue
            tdq = tdqs[cpu]
            load = tdq.load
            if load >= steal_thresh and load > victim_load:
                if tdq.transferable(index) is not None:
                    victim_cpu, victim_load = cpu, load
        if victim_cpu is None:
            continue
        thread = tdqs[victim_cpu].transferable(index)
        if thread is not None:
            sched.engine.migrate_thread(thread, index)
            sched.engine.metrics.incr("ule.idle_steals")
            return thread
    return None
