"""The ULE scheduler, as ported to the Linux-style scheduler API.

Faithful to §2.2 and §3 of the paper:

* two runqueues per core — interactive threads get absolute priority
  over batch threads, which may starve unboundedly;
* the interactivity penalty over ~5 s of sleep/run history classifies
  threads; forked children inherit the parent's history, and a dying
  child's runtime is returned to the parent;
* timeslices of 10 stathz ticks (~78 ms) divided by the core's thread
  count (floor 1 tick, ~7.9 ms), expiring at the same rate regardless
  of priority;
* no full preemption: a wakeup never preempts a running user thread
  (the apache/ab and MySQL effects of §5.3 and §6.4);
* placement via ``sched_pickcpu`` with a modelled per-core scan cost;
* periodic balancing of thread *counts* by core 0 every 0.5–1.5 s,
  one migration per donor/receiver pair; idle cores steal at most one
  thread, walking up the topology.

Port deviations kept from §3: the running thread stays accounted to
its runqueue, and is never migrated.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from ..core.thread import ThreadState
from ..sched.base import SchedClass
from . import balance, placement
from .interactivity import SleepRunHistory
from .params import UleTunables
from .priority import compute_priority
from .tdq import Tdq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core
    from ..core.thread import SimThread


class UleThreadState:
    """Per-thread ULE state (``td_sched``), hangs off ``thread.policy``."""

    __slots__ = ("hist", "priority", "interactive", "queued",
                 "queued_interactive", "queued_priority", "ticks_used")

    def __init__(self, hist: SleepRunHistory):
        self.hist = hist
        self.priority = 0
        self.interactive = True
        self.queued = False
        self.queued_interactive = True
        self.queued_priority = 0
        #: stathz ticks consumed since last picked (slice accounting)
        self.ticks_used = 0


# schedlint: ignore[missing-slots] -- one instance per engine; fault injection patches methods and attributes
class UleScheduler(SchedClass):
    """FreeBSD ULE (11.1-era behaviour, the paper's port)."""

    name = "ule"

    def __init__(self, engine: "Engine",
                 tunables: Optional[UleTunables] = None, **overrides):
        super().__init__(engine)
        self.tunables = tunables or UleTunables(**overrides)
        self.tick_ns = self.tunables.tick_ns
        self._started = False
        self._rng = engine.random.stream("ule.balance")
        #: CPU the in-flight wakeup executes on (waker's CPU, or the
        #: woken thread's old CPU for timer wakeups); consumed by
        #: check_preempt_wakeup to decide local vs remote.
        self._wake_origin = None
        #: number of tdqs at or above ``steal_thresh`` load — O(1)
        #: backing for :meth:`needs_tick`'s steal-poll superset
        self._nr_loaded = 0
        #: per-cpu tdq list (``core.rq`` is bound once at engine init
        #: and never replaced); built lazily on first use
        self._tdqs: Optional[list] = None
        #: whether the timeshare queues are rotating calendars (so the
        #: tick can advance them without a per-tick hasattr probe)
        self._calendar = self.tunables.timeshare_calendar

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def init_core(self, core: "Core") -> Tdq:
        tdq = Tdq(core.index, self.tunables)
        tdq.core = core
        return tdq

    def tdq_of(self, cpu: int) -> Tdq:
        """The per-CPU ULE state of ``cpu``."""
        tdqs = self._tdqs
        if tdqs is None:
            tdqs = self.tdqs()
        return tdqs[cpu]

    def tdqs(self) -> list:
        """All per-CPU tdqs, indexed by cpu (hot paths index this list
        instead of chasing ``machine.cores[cpu].rq`` per lookup)."""
        tdqs = self._tdqs
        if tdqs is None:
            tdqs = self._tdqs = [core.rq for core in self.machine.cores]
        return tdqs

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.tunables.balance_enabled and len(self.machine) > 1:
            self._schedule_balance()

    def _schedule_balance(self) -> None:
        delay = self._rng.randint(self.tunables.balance_min_ns,
                                  self.tunables.balance_max_ns)
        self.engine.events.post(self.engine.now + delay,
                                self._periodic_balance, label="ule-lb")

    def _periodic_balance(self) -> None:
        balance.periodic_balance(self)
        self._schedule_balance()

    # ------------------------------------------------------------------
    # per-thread state
    # ------------------------------------------------------------------

    def state_of(self, thread: "SimThread") -> UleThreadState:
        """The thread's ULE state (``thread.policy``)."""
        return thread.policy

    def interactivity_score(self, thread: "SimThread") -> int:
        """The classifier input: sleep/run penalty plus nice.

        Differential-oracle hook — the cached classification on the
        thread state must agree with this recomputed score at every
        observation point.
        """
        return self.state_of(thread).hist.score(thread.nice)

    def is_interactive(self, thread: "SimThread") -> bool:
        """Recompute the interactivity classification from history."""
        return self.state_of(thread).hist.is_interactive(thread.nice)

    def task_fork(self, parent: Optional["SimThread"],
                  child: "SimThread") -> None:
        if parent is not None and isinstance(parent.policy, UleThreadState):
            # "When a thread is created, it inherits the runtime and
            # sleeptime (and thus the interactivity) of its parent."
            hist = parent.policy.hist.copy()
        else:
            init = child.spec.tags.get("ule_history")
            if init is not None:
                run_ns, sleep_ns = init
            else:
                # Top-level processes spring from an interactive shell:
                # plenty of sleep history, no runtime (like bash).
                run_ns, sleep_ns = 0, self.tunables.slp_run_max_ns // 2
            hist = SleepRunHistory(self.tunables, run_ns, sleep_ns)
        state = UleThreadState(hist)
        child.policy = state
        self._update_priority(child)

    def task_dead(self, thread: "SimThread") -> None:
        # "When a thread dies, its runtime in the last 5 seconds is
        # returned to its parent" — penalizing interactive parents
        # that spawn batch children.
        parent = thread.parent
        if parent is not None and not parent.has_exited \
                and isinstance(parent.policy, UleThreadState):
            parent.policy.hist.absorb(thread.policy.hist)
            self._update_priority_queued(parent)

    def task_waking(self, thread: "SimThread", slept_ns: int) -> None:
        self.state_of(thread).hist.add_sleeptime(slept_ns)

    def task_nice_changed(self, thread: "SimThread") -> None:
        # The score (penalty + nice) may now cross the interactivity
        # threshold; recompute and requeue.
        self._update_priority_queued(thread)

    def _update_priority(self, thread: "SimThread") -> None:
        state = self.state_of(thread)
        state.priority, state.interactive = compute_priority(
            self.tunables, state.hist, thread.nice)

    def _update_priority_queued(self, thread: "SimThread") -> None:
        """Recompute priority, requeueing if the thread sits in a FIFO."""
        state = self.state_of(thread)
        if state.queued and thread.rq_cpu is not None:
            tdq = self.tdq_of(thread.rq_cpu)
            tdq.rem(thread)
            self._update_priority(thread)
            tdq.add(thread)
        else:
            self._update_priority(thread)

    # ------------------------------------------------------------------
    # enqueue / dequeue (sched_add / sched_wakeup / sched_rem)
    # ------------------------------------------------------------------

    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        # _update_priority inlined (every wakeup/migration lands here)
        state = thread.policy
        state.priority, state.interactive = compute_priority(
            self.tunables, state.hist, thread.nice)
        tdq: Tdq = core.rq
        tdq.add(thread)
        tdq.load += 1
        if tdq.load == self.tunables.steal_thresh:
            self._nr_loaded += 1

    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        tdq: Tdq = core.rq
        state = self.state_of(thread)
        if state.queued:
            tdq.rem(thread)
        tdq.load -= 1
        if tdq.load == self.tunables.steal_thresh - 1:
            self._nr_loaded -= 1

    # ------------------------------------------------------------------
    # picking (sched_choose)
    # ------------------------------------------------------------------

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        tdq: Tdq = core.rq
        prev = core.current
        if prev is not None and prev.state is ThreadState.RUNNING:
            # Put the incumbent back at the tail of its FIFO with a
            # freshly computed priority (sched_switch; is_running and
            # _update_priority inlined — this runs on every pick).
            state = prev.policy
            state.priority, state.interactive = compute_priority(
                self.tunables, state.hist, prev.nice)
            tdq.add(prev)
        else:
            prev = None
        nxt = tdq.choose()
        if nxt is None and prev is None:
            stolen = balance.idle_steal(self, core)
            if stolen is not None:
                nxt = tdq.choose()
        if nxt is None:
            return None
        nxt.policy.ticks_used = 0  # state_of, inlined
        return nxt

    def yield_task(self, core: "Core") -> None:
        pass  # requeue-at-tail happens in pick_next (sched_relinquish)

    # ------------------------------------------------------------------
    # ticks and accounting
    # ------------------------------------------------------------------

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        # state_of inlined: runs on every accounting point
        thread.policy.hist.add_runtime(delta_ns)

    def task_tick(self, core: "Core") -> None:
        thread = core.current
        if thread is None:
            return
        state = self.state_of(thread)
        # FreeBSD recomputes the running thread's priority every stathz
        # tick (sched_clock), reclassifying it as its history evolves,
        # and rotates the timeshare calendar's insertion origin.
        self._update_priority(thread)
        tdq: Tdq = core.rq
        if self._calendar:
            tdq.timeshare.advance()
        state.ticks_used += 1
        # sched_clock compares the used ticks against the *current*
        # load-adjusted slice, so the effective slice shrinks the
        # moment more threads become runnable.
        if state.ticks_used < self.tunables.slice_for_load(tdq.load):
            return
        if tdq.nr_queued() > 0:
            core.need_resched = True
        else:
            # Alone on the core: keep running, restart the slice.
            state.ticks_used = 0

    def idle_tick(self, core: "Core") -> None:
        # The FreeBSD idle loop keeps polling for stealable work.
        if self._nr_loaded == 0:
            # No tdq reaches steal_thresh, so the scan below cannot
            # match — same outcome, O(1).
            return
        steal_thresh = self.tunables.steal_thresh
        index = core.index
        for other in self.machine.cores:
            rq = other.rq
            if other is not core and rq.load >= steal_thresh \
                    and rq.transferable(index) is not None:
                core.need_resched = True
                return

    def needs_tick(self, core: "Core") -> bool:
        # idle_tick only ever acts when some tdq carries at least
        # ``steal_thresh`` load, so a machine with no loaded tdq can
        # park every idle core's tick.  The O(1) counter is a
        # conservative superset of idle_tick's condition (it ignores
        # transferability), which the NO_HZ contract permits.
        return not core.is_idle or self._nr_loaded > 0

    def make_tick_hook(self, core: "Core"):
        """Fused ULE stathz tick (see ``SchedClass.make_tick_hook``).

        Inlines ``Engine._tick`` → ``Engine._update_curr`` →
        :meth:`update_curr` → :meth:`task_tick` into one closure over
        per-core state, statement-for-statement identical to the
        generic chain so the schedule is bit-identical.
        """
        from ..core.engine import RUN_FOREVER
        engine = self.engine
        events = engine._sink
        tick_ns = self.tick_ns
        tun = self.tunables
        slice_for_load = tun.slice_for_load
        calendar = self._calendar
        tdq: Tdq = core.rq

        def tick(_core: "Core") -> None:
            if not core.online:
                return
            curr = core.current
            now = engine.now
            if curr is None:
                if engine.tickless and self._nr_loaded == 0:
                    # needs_tick(): an idle core only keeps ticking
                    # while some tdq carries steal_thresh load
                    core.tick_stopped = True
                    engine._nr_stopped_ticks += 1
                    engine.metrics.incr("engine.tick_stops")
                    return
                events.repost(core.tick_event, now + tick_ns)
                self.idle_tick(core)
                if core.need_resched:
                    engine._dispatch(core)
                return
            events.repost(core.tick_event, now + tick_ns)
            state = curr.policy
            # -- Engine._update_curr, inlined --
            delta = now - core._curr_account_start
            core._curr_account_start = now
            if delta > 0:
                core.account_to_now()
                curr.total_runtime += delta
                curr.last_ran = now
                remaining = curr.run_remaining
                if remaining is not None and remaining is not RUN_FOREVER:
                    speed = core._curr_speed
                    progress = delta if speed == 1.0 \
                        else int(delta * speed)
                    remaining -= progress
                    curr.run_remaining = remaining if remaining > 0 else 0
                # -- update_curr, inlined --
                state.hist.add_runtime(delta)
            # -- task_tick, inlined (sched_clock) --
            state.priority, state.interactive = compute_priority(
                tun, state.hist, curr.nice)
            if calendar:
                tdq.timeshare.advance()
            ticks_used = state.ticks_used + 1
            state.ticks_used = ticks_used
            if ticks_used >= slice_for_load(tdq.load):
                if tdq.nr_queued() > 0:
                    core.need_resched = True
                else:
                    # alone on the core: keep running, restart slice
                    state.ticks_used = 0
            if core.need_resched:
                engine._dispatch(core)
            elif core.completion_event is not None:
                engine._cancel_completion(core)
                engine._arm_completion(core)

        return tick

    # ------------------------------------------------------------------
    # wakeup preemption (disabled, per the paper)
    # ------------------------------------------------------------------

    def check_preempt_wakeup(self, core: "Core",
                             thread: "SimThread") -> None:
        curr = core.current
        if curr is None or not curr.is_running:
            core.need_resched = True
            return
        # FreeBSD's sched_shouldpreempt: a *remote* enqueue of an
        # interactive thread onto a core running a batch thread sends a
        # preemption IPI.  "Remote" means the wakeup executed on a
        # different CPU than the one chosen (tdq_notify); a thread
        # woken by a timer fires its callout on the CPU it slept on.
        if not self.tunables.remote_interactive_preempt:
            return
        state = self.state_of(thread)
        if not state.interactive:
            return
        if self.state_of(curr).interactive:
            return
        origin = self._wake_origin
        if origin is not None and origin != core.index:
            core.need_resched = True
            self.engine.metrics.incr("ule.remote_preemptions")

    # ------------------------------------------------------------------
    # placement (sched_pickcpu)
    # ------------------------------------------------------------------

    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        if waker is not None and waker.is_running \
                and waker.cpu is not None:
            self._wake_origin = waker.cpu
        else:
            self._wake_origin = thread.cpu
        return placement.sched_pickcpu(self, thread, waker)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        out = list(core.rq.queued_threads())
        if core.current is not None:
            out.append(core.current)
        return out

    def nr_runnable(self, core: "Core") -> int:
        """``tdq_load``: runnable threads incl. the running one."""
        return core.rq.load
