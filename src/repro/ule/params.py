"""ULE tunables (FreeBSD 11.1 defaults, as the paper describes them).

* interactivity scaling factor ``m = 50``, threshold 30;
* 5 seconds of sleep/run history with the ``sched_interact_update``
  decay;
* timeslice of 10 stathz ticks (~78 ms) divided by the number of
  runnable threads, floored at 1 tick (~7.9 ms);
* full preemption disabled (only "kernel-priority" wakeups preempt);
* periodic balancing by core 0 every 0.5–1.5 s (uniformly random),
  moving at most one thread per donor/receiver pair;
* idle stealing of at most one thread, walking up the topology;
* a modelled per-core scan cost for ``sched_pickcpu`` (§6.3 measures
  it at up to 13 % of CPU cycles for sysbench).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.clock import FREEBSD_TICK_NSEC, msec, sec, usec


@dataclass
class UleTunables:
    """All ULE knobs in one place (ablation benches vary these)."""

    #: interactivity scaling factor (SCHED_INTERACT_HALF)
    interact_half: int = 50
    #: maximum interactivity penalty
    interact_max: int = 100
    #: score at or below which a thread is interactive
    interact_thresh: int = 30
    #: sleep + run history ceiling (SCHED_SLP_RUN_MAX), 5 s
    slp_run_max_ns: int = sec(5)
    #: stathz tick length
    tick_ns: int = FREEBSD_TICK_NSEC
    #: base timeslice in stathz ticks ("10 ticks (78ms)")
    slice_ticks: int = 10
    #: minimum timeslice in ticks
    slice_min_ticks: int = 1
    #: threads sharing a core before the slice divides
    slice_threshold: int = 1
    #: periodic balancer interval bounds (chosen randomly each round)
    balance_min_ns: int = msec(500)
    balance_max_ns: int = msec(1500)
    #: enable the periodic balancer (the FreeBSD bug [1] disabled it;
    #: the authors fixed it, so it defaults to on)
    balance_enabled: bool = True
    #: a victim must have at least this many runnable threads to be
    #: stolen from (steal_thresh)
    steal_thresh: int = 2
    #: how recently a thread must have run on a CPU to be considered
    #: cache-affine to it
    affinity_ns: int = msec(500)
    #: modelled CPU cost of examining one core in sched_pickcpu
    pickcpu_scan_cost_ns: int = usec(0)
    #: replace sched_pickcpu by "previous CPU" (the §6.3 validation
    #: experiment)
    pickcpu_simple: bool = False
    #: FreeBSD's sched_shouldpreempt remote rule: an *interactive*
    #: thread placed on a remote core running a *batch* thread preempts
    #: it (tdq_notify IPI path).  Local wakeups never preempt user
    #: threads — the behaviour the paper describes in §5.3/§6.4.
    remote_interactive_preempt: bool = True
    #: use FreeBSD's rotating calendar queue for the batch
    #: (timeshare) class instead of plain priority FIFOs — bounds how
    #: long any batch thread can wait behind other *batch* threads
    timeshare_calendar: bool = True
    #: number of runq priority levels
    nqueues: int = 64
    #: interactive priorities occupy [0, interact_prio_max]
    interact_prio_max: int = 29
    #: batch priorities occupy [batch_prio_min, nqueues - 1]
    batch_prio_min: int = 30

    @property
    def slice_ns(self) -> int:
        return self.slice_ticks * self.tick_ns

    def slice_for_load(self, load: int) -> int:
        """Timeslice in ticks for a core running ``load`` threads:
        10 ticks for one thread, divided by the count otherwise,
        floored at one tick."""
        if load <= self.slice_threshold:
            return self.slice_ticks
        return max(self.slice_min_ticks, self.slice_ticks // load)
