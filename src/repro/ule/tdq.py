"""The per-CPU ULE queue (``struct tdq``).

Three runqueues per CPU (§2.2): *realtime* holds interactive threads,
*timeshare* holds batch threads, and the idle queue holds only the idle
task (implicit here: an empty tdq means the core idles).  Picking
always searches realtime first — that order is what gives interactive
threads absolute priority and lets batch threads starve.

Following the paper's port (§3), the *running* thread conceptually
stays on the runqueue: it is counted in ``load`` and visible to the
balancer, but kept out of the FIFOs so FIFO order is preserved when it
is put back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .runq import CalendarRunQueue, RunQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread
    from .params import UleTunables


class Tdq:
    """Per-CPU ULE state."""

    __slots__ = ("cpu", "tunables", "realtime", "timeshare", "load",
                 "core")

    def __init__(self, cpu: int, tunables: "UleTunables"):
        self.cpu = cpu
        self.tunables = tunables
        self.realtime = RunQueue(tunables.nqueues)
        if tunables.timeshare_calendar:
            self.timeshare = CalendarRunQueue(tunables.nqueues)
        else:
            self.timeshare = RunQueue(tunables.nqueues)
        #: runnable threads on this CPU including the running one
        self.load = 0
        #: the core this tdq belongs to (set by the scheduler)
        self.core: Optional["Core"] = None

    # ------------------------------------------------------------------
    # queue maintenance (running thread excluded from the FIFOs)
    # ------------------------------------------------------------------

    def add(self, thread: "SimThread", at_head: bool = False) -> None:
        """File a runnable thread into its class's queue at its
        current priority."""
        state = thread.policy
        if state.interactive:
            pri = state.priority
            self.realtime.add(thread, pri, at_head=at_head)
        else:
            # calendar buckets are relative to the batch band
            pri = min(self.tunables.nqueues - 1,
                      max(0, state.priority - self.tunables.batch_prio_min))
            self.timeshare.add(thread, pri, at_head=at_head)
        state.queued = True
        state.queued_interactive = state.interactive
        state.queued_priority = pri

    def rem(self, thread: "SimThread") -> None:
        """Remove a queued thread (from the queue it was filed in)."""
        state = thread.policy
        queue = self.realtime if state.queued_interactive else self.timeshare
        queue.remove(thread, state.queued_priority)
        state.queued = False

    def choose(self) -> Optional["SimThread"]:
        """Pop the best thread: interactive queue first, then batch —
        the search order that starves batch threads (§2.2, §5)."""
        thread = self.realtime.choose()
        if thread is None:
            thread = self.timeshare.choose()
        if thread is not None:
            thread.policy.queued = False
        return thread

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def nr_queued(self) -> int:
        """Threads sitting in the FIFOs (the running one excluded)."""
        return len(self.realtime) + len(self.timeshare)

    def lowest_priority(self) -> int:
        """The best (numerically lowest) priority present, counting the
        running thread; ``nqueues`` when the CPU is idle."""
        best = self.tunables.nqueues
        pri = self.realtime.first_priority()
        if pri is not None:
            best = min(best, pri)
        ts = self.timeshare.first_priority()
        if ts is not None:
            best = min(best, self.tunables.batch_prio_min + ts)
        if self.core is not None and self.core.current is not None:
            best = min(best, self.core.current.policy.priority)
        return best

    def queued_threads(self) -> Iterator["SimThread"]:
        """FIFO-queued threads, best priority first (running thread not
        included)."""
        yield from self.realtime.threads()
        yield from self.timeshare.threads()

    def transferable(self, dst_cpu: int) -> Optional["SimThread"]:
        """The first queued thread the balancer may move to
        ``dst_cpu`` (never the running thread — the port's rule).
        Same order as :meth:`queued_threads`, via the runqueues'
        generator-free scans (this is the idle-poll hot path)."""
        thread = self.realtime.first_allowed(dst_cpu)
        if thread is None:
            thread = self.timeshare.first_allowed(dst_cpu)
        return thread

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Tdq cpu{self.cpu} load={self.load} "
                f"rt={len(self.realtime)} ts={len(self.timeshare)}>")
