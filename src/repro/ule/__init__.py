"""FreeBSD ULE, as described in §2.2 of the paper and ported to the
Linux-style scheduler API per §3: interactive/batch runqueues, the
interactivity penalty, count-based load balancing, and idle stealing."""

from .core import UleScheduler, UleThreadState
from .interactivity import SleepRunHistory
from .params import UleTunables
from .priority import batch_priority, compute_priority, interactive_priority
from .runq import RunQueue
from .tdq import Tdq

__all__ = [
    "UleScheduler",
    "UleThreadState",
    "UleTunables",
    "SleepRunHistory",
    "RunQueue",
    "Tdq",
    "compute_priority",
    "interactive_priority",
    "batch_priority",
]
