"""ULE thread placement: ``sched_pickcpu`` (§2.2).

The paper's description, implemented literally:

1. if the thread is cache-affine to the core it last ran on (it ran
   there recently) and would run promptly there, it is placed there;
2. otherwise ULE finds the highest topology level that is still
   affine, and searches it for a core whose minimum priority is worse
   than the thread's (so the thread would run immediately);
3. failing that, the same search over all cores of the machine;
4. failing that, the core with the lowest number of running threads.

Each core examined costs ``pickcpu_scan_cost_ns`` of CPU time, charged
to the core performing the wakeup — §6.3 measures this cost at 13 % of
all cycles for sysbench ("at worst, may scan all cores three times"),
and validates it by replacing the function with "return the previous
CPU" (``pickcpu_simple``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.thread import SimThread
    from .core import UleScheduler


def sched_pickcpu(sched: "UleScheduler", thread: "SimThread",
                  waker: Optional["SimThread"]) -> int:
    """Choose the CPU for a new or waking thread (see module doc).

    Offline (hotplugged-away) CPUs are excluded throughout — FreeBSD
    masks the scan with the online CPU set; a mask with no online CPU
    falls back to the whole online machine (the engine breaks affinity
    on the drain path the same way).
    """
    tun = sched.tunables
    machine = sched.machine
    ncpus = len(machine)
    if thread.affinity is None and machine.nr_offline == 0:
        # Unrestricted thread on a fully online machine: the filter
        # below would pass every cpu — reuse one shared ascending list.
        allowed = _all_cpus(sched, ncpus)
        unrestricted = True
    else:
        cores = machine.cores
        allowed = [c for c in range(ncpus)
                   if thread.allows_cpu(c) and cores[c].online]
        if not allowed:
            allowed = machine.online_cpus()
        unrestricted = False
    if len(allowed) == 1:
        return allowed[0]
    if tun.pickcpu_simple:
        # The paper's validation experiment: previous CPU, no scan.
        prev = thread.cpu
        return prev if prev is not None and prev in allowed else allowed[0]

    now = sched.engine.now
    last = thread.cpu
    scanned = 0
    pri = thread.policy.priority
    choice = None
    tdqs = sched.tdqs()

    # 1. cache affinity on the last core.
    if last is not None and (unrestricted or last in allowed):
        if now - thread.last_ran < tun.affinity_ns:
            scanned += 1
            if tdqs[last].lowest_priority() > pri:
                choice = last

    if choice is None and last is not None:
        # 2. the highest affine topology level around the last core.
        affine_group = None
        for idx, (_, group, cpus) in enumerate(
                sched.topology.levels_above_sorted(last)):
            window = tun.affinity_ns * (2 ** idx)
            if now - thread.last_ran < window:
                affine_group = (cpus if unrestricted else
                                [c for c in cpus if c in allowed])
                break
        if affine_group:
            found, n = _search_lowpri(sched, affine_group, pri)
            scanned += n
            choice = found

    if choice is None:
        # 3. retry over the whole machine.
        found, n = _search_lowpri(sched, allowed, pri)
        scanned += n
        choice = found

    if choice is None:
        # 4. the least loaded core.
        scanned += len(allowed)
        choice = min(allowed,
                     key=lambda c: (tdqs[c].load, c))

    _charge_scan(sched, thread, waker, scanned)
    return choice


def _all_cpus(sched: "UleScheduler", ncpus: int) -> list:
    """The shared ascending cpu list (never mutated by the scan)."""
    cpus = getattr(sched, "_pickcpu_all", None)
    if cpus is None or len(cpus) != ncpus:
        cpus = sched._pickcpu_all = list(range(ncpus))
    return cpus


def _search_lowpri(sched: "UleScheduler", cpus, pri: int):
    """Find the least-loaded CPU whose best queued priority is worse
    than ``pri`` (i.e. the thread would run immediately)."""
    best = None
    best_load = None
    tdqs = sched.tdqs()
    for cpu in cpus:
        tdq = tdqs[cpu]
        if tdq.lowest_priority() > pri:
            load = tdq.load
            if best is None or load < best_load:
                best, best_load = cpu, load
    return best, len(cpus)


def _charge_scan(sched: "UleScheduler", thread: "SimThread",
                 waker: Optional["SimThread"], scanned: int) -> None:
    """Bill the wakeup-path CPU for the cores it examined."""
    cost = sched.tunables.pickcpu_scan_cost_ns * scanned
    if cost <= 0:
        return
    if waker is not None and waker.is_running and waker.cpu is not None:
        cpu = waker.cpu
    elif thread.cpu is not None:
        cpu = thread.cpu
    else:
        cpu = 0
    sched.engine.metrics.incr("ule.pickcpu_scans", scanned)
    sched.engine.charge_overhead(cpu, cost)
