"""A minimal round-robin scheduler.

Not part of the paper — this is the reference implementation of the
:class:`~repro.sched.base.SchedClass` contract.  It is used by the
engine tests (scheduler-independent behaviour is validated against it)
and by the ``custom_scheduler`` example as a starting point.

Policy: per-core FIFO queues, a fixed timeslice, placement on the CPU
with the fewest runnable threads, and single-thread idle stealing.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Optional

from ..core.clock import msec
from ..core.errors import SchedulerError
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .base import SchedClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread


class FifoRunqueue:
    """Per-core state: a FIFO of runnable threads."""

    def __init__(self):
        self.queue: deque = deque()
        self.slice_used = 0


class FifoScheduler(SchedClass):
    """Round-robin with a fixed timeslice."""

    name = "fifo"

    def __init__(self, engine, timeslice_ns: int = msec(10)):
        super().__init__(engine)
        self.timeslice_ns = timeslice_ns

    def init_core(self, core: "Core") -> FifoRunqueue:
        return FifoRunqueue()

    # -- queue maintenance ------------------------------------------------

    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        core.rq.queue.append(thread)

    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        try:
            core.rq.queue.remove(thread)
        except ValueError:
            raise SchedulerError(
                f"{thread} not on cpu {core.index} runqueue") from None

    def yield_task(self, core: "Core") -> None:
        rq = core.rq
        if core.current in rq.queue:
            rq.queue.remove(core.current)
            rq.queue.append(core.current)
        rq.slice_used = 0

    # -- picking ----------------------------------------------------------

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        rq = core.rq
        prev = core.current if (core.current is not None
                                and core.current.is_running) else None
        if not rq.queue:
            stolen = self._steal_for(core)
            if stolen is None:
                return None
        # Round-robin: pick the head; if the head is the incumbent and
        # others wait with the slice expired, rotate.
        head = rq.queue[0]
        if head is prev and len(rq.queue) > 1 and \
                rq.slice_used >= self.timeslice_ns:
            rq.queue.rotate(-1)
            head = rq.queue[0]
        if head is not prev:
            rq.slice_used = 0
            # move the picked thread to the head position
            rq.queue.remove(head)
            rq.queue.appendleft(head)
        return head

    def _steal_for(self, core: "Core") -> Optional["SimThread"]:
        busiest = None
        for other in self.machine.cores:
            if other is core:
                continue
            candidates = [t for t in other.rq.queue
                          if not t.is_running and t.allows_cpu(core.index)]
            if not candidates:
                continue
            if busiest is None or \
                    len(other.rq.queue) > len(busiest[0].rq.queue):
                busiest = (other, candidates[0])
        if busiest is None:
            return None
        _, victim = busiest
        self.engine.migrate_thread(victim, core.index)
        return victim

    # -- placement ----------------------------------------------------------

    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        candidates = [c for c in self.machine.cores
                      if thread.allows_cpu(c.index)]
        return min(candidates, key=lambda c: (len(c.rq.queue), c.index)).index

    # -- ticks ----------------------------------------------------------------

    def task_tick(self, core: "Core") -> None:
        rq = core.rq
        if len(rq.queue) > 1 and rq.slice_used >= self.timeslice_ns:
            core.need_resched = True

    def idle_tick(self, core: "Core") -> None:
        # Retry stealing while other cores have waiting work.
        for other in self.machine.cores:
            if other is not core and len(other.rq.queue) > 1:
                core.need_resched = True
                return

    def needs_tick(self, core: "Core") -> bool:
        # Mirrors idle_tick's poll exactly: tick while any other core
        # has more than one queued thread.
        return not core.is_idle or any(
            other is not core and len(other.rq.queue) > 1
            for other in self.machine.cores)

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        core.rq.slice_used += delta_ns

    # -- introspection ---------------------------------------------------

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        return list(core.rq.queue)

    def nr_runnable(self, core: "Core") -> int:
        """Queue length (the running thread stays queued)."""
        return len(core.rq.queue)
