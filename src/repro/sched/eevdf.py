"""EEVDF: Earliest Eligible Virtual Deadline First.

The policy that replaced CFS's pure-vruntime pick in Linux 6.6
(Stoica & Abdel-Wahab's 1996 algorithm).  Each thread owns a
*virtual runtime* (executed time scaled by ``1024/weight``, exactly
CFS's :func:`~repro.cfs.weights.calc_delta_fair`) and a *virtual
deadline* one request-slice ahead of it.  The pick rule is two-level:

1. *eligibility* — a thread is eligible when its vruntime is at or
   behind the load-weighted average vruntime of the competing threads
   (it has received no more than its fair share so far);
2. among eligible threads, run the one with the **earliest virtual
   deadline** (falling back to all candidates when nobody is
   eligible, which can happen transiently after wakeups).

Wakeup placement clamps a sleeper's vruntime up to the queue minimum
so history never turns into an unbounded credit, and slice expiry
re-stamps the deadline one slice past the (grown) vruntime, which is
what rotates same-weight threads.

Expressed as a :class:`~repro.sched.policy.SchedPolicy`: ``on_charge``
advances vruntime, ``on_enqueue`` places and stamps deadlines,
``pick`` implements the two-level rule, and the default preemption
predicate (earlier deadline wins) provides wakeup preemption.
"""

from __future__ import annotations

from ..cfs.weights import calc_delta_fair, nice_to_weight
from ..core.clock import msec
from ..core.schedflags import EnqueueFlags
from .policy import PolicyScheduler, SchedPolicy

#: the request slice: how much wall-clock service a thread asks for
#: per deadline period (vruntime-scaled per thread weight)
SLICE_NS = msec(3)


def _init_thread(sched, thread, state):
    state.weight = nice_to_weight(thread.nice)


def _on_charge(sched, thread, state, delta_ns):
    state.vruntime += calc_delta_fair(delta_ns, state.weight)


def _queue_min_vruntime(sched, core):
    """Minimum vruntime among threads already queued on ``core``
    (``None`` for an empty queue)."""
    lo = None
    for t in sched.runnable_threads(core):
        v = t.policy.vruntime
        if lo is None or v < lo:
            lo = v
    return lo


def _on_enqueue(sched, core, thread, state, flags):
    if flags & (EnqueueFlags.WAKEUP | EnqueueFlags.NEW):
        # Placement: a sleeper resumes at least at the queue minimum,
        # so time spent blocked is not banked as unbounded credit.
        floor = _queue_min_vruntime(sched, core)
        if floor is not None and state.vruntime < floor:
            state.vruntime = floor
        state.deadline = state.vruntime \
            + calc_delta_fair(SLICE_NS, state.weight)
    # MIGRATE keeps both vruntime and deadline: load balancing must
    # not reset a thread's fair-share position.


def _on_expire(sched, core, thread, state):
    # The slice is used up: ask for the next one.  vruntime has grown
    # by a full slice, so the fresh deadline lands behind every
    # same-weight thread that has been waiting.
    state.deadline = state.vruntime \
        + calc_delta_fair(SLICE_NS, state.weight)


def _key(sched, thread, state):
    return (state.deadline, state.vruntime)


def _pick(sched, core, candidates):
    # Two-level EEVDF rule over the weighted-average eligibility line.
    total_w = 0
    weighted_v = 0
    for t in candidates:
        st = t.policy
        total_w += st.weight
        weighted_v += st.weight * st.vruntime
    eligible = [t for t in candidates
                if t.policy.vruntime * total_w <= weighted_v]
    pool = eligible if eligible else candidates
    return min(pool, key=sched._key_of)


def _timeslice(sched, core, thread, state):
    return SLICE_NS


EEVDF_POLICY = SchedPolicy(
    name="eevdf",
    key=_key,
    pick=_pick,
    timeslice=_timeslice,
    on_charge=_on_charge,
    on_enqueue=_on_enqueue,
    on_expire=_on_expire,
    init_thread=_init_thread,
)


class EevdfScheduler(PolicyScheduler):
    """Earliest-eligible-virtual-deadline-first over per-core queues."""

    name = "eevdf"

    def __init__(self, engine):
        super().__init__(engine, EEVDF_POLICY)

    # -- oracle/test accessors -------------------------------------------

    def vruntime_of(self, thread) -> int:
        """The thread's weighted virtual runtime (ns)."""
        return thread.policy.vruntime

    def deadline_of(self, thread) -> int:
        """The thread's current virtual deadline (ns)."""
        return thread.policy.deadline
