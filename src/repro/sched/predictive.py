"""A table-based predictive scheduler trained on exported traces.

The KernelOracle idea at toy scale: treat scheduling decisions as
data.  :mod:`repro.tracing.decisions` exports every ``pick_next`` as
a (candidate features, chosen) record; :class:`PickTable` counts, for
each candidate feature tuple, how often a real scheduler (CFS, in the
shipped experiment) picked a candidate with those features when it
was on offer.  At pick time the learned scheduler runs the candidate
whose features score the highest empirical pick rate — Laplace
smoothed, with wholly unseen candidates at the neutral prior — and
breaks score ties by enqueue order, so an empty table degrades to
plain deterministic FIFO.

The model is measured, not just used: the ``predict`` experiment
(``python -m repro.experiments`` / ``repro.experiments.predict_fidelity``)
trains on CFS traces from one set of fuzz seeds and reports
**next-pick fidelity** — how often the table's argmax matches real
CFS — on held-out seeds, against incumbent-sticky and
longest-waiting baselines.

A fresh (untrained) instance is what the registry builds for
``--sched predictive``; it is deterministic and passes the same
conformance battery as every other zoo member.  Trained instances are
built with ``scheduler_factory("predictive", table=...)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..tracing.decisions import DecisionRecord, decision_features
from .policy import DEFAULT_SLICE_NS, PolicyScheduler, SchedPolicy


class PickTable:
    """Empirical pick rates per candidate feature tuple."""

    __slots__ = ("counts",)

    def __init__(self):
        #: feature tuple -> (times picked, times on offer)
        self.counts: Dict[Tuple, Tuple[int, int]] = {}

    def observe(self, record: DecisionRecord) -> None:
        """Fold one contested decision into the table."""
        if not record.contested():
            return
        chosen_pos = record.candidates.index(record.chosen)
        for pos, features in enumerate(record.features):
            picked, seen = self.counts.get(features, (0, 0))
            self.counts[features] = (picked + (1 if pos == chosen_pos
                                               else 0), seen + 1)

    def train(self, records) -> "PickTable":
        """Fold every record in; returns self for chaining."""
        for record in records:
            self.observe(record)
        return self

    def score(self, features: Tuple) -> float:
        """Laplace-smoothed pick rate; 0.5 for unseen features."""
        picked, seen = self.counts.get(features, (0, 0))
        return (picked + 1) / (seen + 2)

    def predict(self, feature_rows) -> int:
        """Index of the candidate the table would pick (ties go to
        the earliest row, matching the scheduler's seq tie-break)."""
        best, best_score = 0, None
        for idx, features in enumerate(feature_rows):
            s = self.score(features)
            if best_score is None or s > best_score:
                best, best_score = idx, s
        return best

    def to_json(self) -> dict:
        """JSON-serialisable view (feature repr -> [picked, seen])."""
        return {repr(k): list(v) for k, v in self.counts.items()}

    def __len__(self) -> int:
        return len(self.counts)


def _key(sched, thread, state):
    # Fallback ordering (used for steal candidates and the empty
    # table): plain enqueue order — seq is appended by the layer.
    return ()


def _make_pick(table: Optional[PickTable]):
    def _pick(sched, core, candidates):
        if table is None or len(candidates) == 1:
            return sched._pick_min(candidates)
        rows = decision_features(sched.engine, core, candidates)
        best = None
        best_rank = None
        for t, features in zip(candidates, rows):
            # highest score wins; seq breaks ties deterministically
            rank = (-table.score(features), t.policy.seq)
            if best_rank is None or rank < best_rank:
                best, best_rank = t, rank
        return best
    return _pick


def _timeslice(sched, core, thread, state):
    return DEFAULT_SLICE_NS


def make_predictive_policy(table: Optional[PickTable]) -> SchedPolicy:
    """The zoo policy scheduling by ``table``'s argmax (FIFO if None)."""
    return SchedPolicy(
        name="predictive",
        key=_key,
        pick=_make_pick(table),
        timeslice=_timeslice,
    )


class PredictiveScheduler(PolicyScheduler):
    """Argmax over learned pick rates; FIFO when untrained."""

    name = "predictive"

    def __init__(self, engine, table: Optional[PickTable] = None):
        super().__init__(engine, make_predictive_policy(table))
        self.table = table
