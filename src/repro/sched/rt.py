"""SCHED_FIFO / SCHED_RR — the Linux realtime scheduling class.

The paper invokes it in §5.1: to reproduce ULE's absolute
prioritization of a latency-sensitive application on Linux, "the
latency-sensitive application would have to be executed by the
realtime scheduler, which gets absolute priority over CFS."

This class implements the POSIX semantics Linux provides:

* 99 realtime priority levels, higher wins, strictly above every
  normal thread;
* SCHED_FIFO: run until block/yield/preemption by higher RT priority;
* SCHED_RR: like FIFO plus a 100 ms round-robin slice among equals;
* waking RT threads preempt lower-priority ones immediately.

Combine it with CFS through
:class:`repro.sched.classes.ClassStackScheduler`, which dispatches to
the highest populated class exactly like the kernel's scheduling-class
list (stop > rt > fair > idle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..core.clock import msec
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .base import SchedClass
from ..ule.runq import RunQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread

#: number of realtime priority levels (POSIX 1..99; we index 0..98
#: with 0 the *highest* to reuse the bitmap runq)
NR_RT_PRIORITIES = 99

#: default SCHED_RR quantum (Linux: 100 ms)
RR_TIMESLICE_NS = msec(100)


def rt_priority_of(thread: "SimThread") -> Optional[int]:
    """The thread's realtime priority from its spec tags.

    Threads tagged ``{"rt_priority": p}`` (1..99, higher = more
    important) belong to the realtime class; ``{"rt_policy": "rr"}``
    selects round-robin instead of FIFO.
    """
    prio = thread.tags.get("rt_priority")
    if prio is None:
        return None
    if not 1 <= prio <= NR_RT_PRIORITIES:
        raise ValueError(f"rt_priority out of range: {prio}")
    return prio


class RtState:
    """Per-thread RT state."""

    __slots__ = ("priority", "round_robin", "slice_used")

    def __init__(self, priority: int, round_robin: bool):
        self.priority = priority
        self.round_robin = round_robin
        self.slice_used = 0


class RtRunqueue:
    """Per-CPU RT queue: priority-indexed FIFOs."""

    def __init__(self):
        self.queue = RunQueue(NR_RT_PRIORITIES)


class RtScheduler(SchedClass):
    """The realtime class.  Usable standalone (every thread needs an
    ``rt_priority`` tag then) or stacked above CFS."""

    name = "rt"

    def init_core(self, core: "Core") -> RtRunqueue:
        return RtRunqueue()

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _index(priority: int) -> int:
        """Map POSIX priority (higher wins) onto the bitmap runq
        (lower index wins)."""
        return NR_RT_PRIORITIES - priority

    def _rq(self, core: "Core") -> RunQueue:
        rq = core.rq
        if isinstance(rq, RtRunqueue):
            return rq.queue
        return rq.rt.queue  # stacked under ClassStackScheduler

    def state_of(self, thread: "SimThread") -> RtState:
        """The thread's RT state (``thread.policy``)."""
        return thread.policy

    # -- lifecycle ------------------------------------------------------

    def task_fork(self, parent, child: "SimThread") -> None:
        prio = rt_priority_of(child)
        if prio is None:
            raise ValueError(
                f"{child} has no rt_priority tag; use the 'classes' "
                f"scheduler to mix RT and normal threads")
        child.policy = RtState(
            prio, child.tags.get("rt_policy") == "rr")

    # -- queueing ---------------------------------------------------------

    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        state = self.state_of(thread)
        self._rq(core).add(thread, self._index(state.priority))

    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        state = self.state_of(thread)
        if thread is not core.current or self._queued(core, thread):
            self._rq(core).remove(thread, self._index(state.priority))

    def _queued(self, core: "Core", thread: "SimThread") -> bool:
        return any(t is thread for t in self._rq(core).threads())

    # -- picking ----------------------------------------------------------

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        rq = self._rq(core)
        prev = core.current if (core.current is not None
                                and core.current.is_running
                                and isinstance(core.current.policy,
                                               RtState)) else None
        if prev is not None:
            state = self.state_of(prev)
            # FIFO threads keep the CPU against equals: requeue at the
            # head unless the RR slice expired.
            expired = (state.round_robin
                       and state.slice_used >= RR_TIMESLICE_NS)
            rq.add(prev, self._index(state.priority),
                   at_head=not expired)
        nxt = rq.choose()
        if nxt is not None:
            self.state_of(nxt).slice_used = 0
        return nxt

    # -- preemption ---------------------------------------------------------

    def check_preempt_wakeup(self, core: "Core",
                             thread: "SimThread") -> None:
        curr = core.current
        if curr is None or not curr.is_running:
            core.need_resched = True
            return
        if not isinstance(curr.policy, RtState):
            core.need_resched = True  # RT always beats normal threads
            return
        if self.state_of(thread).priority > \
                self.state_of(curr).priority:
            core.need_resched = True

    def task_tick(self, core: "Core") -> None:
        curr = core.current
        if curr is None or not isinstance(curr.policy, RtState):
            return
        state = self.state_of(curr)
        if not state.round_robin:
            return
        if state.slice_used >= RR_TIMESLICE_NS \
                and len(self._rq(core)) > 0:
            core.need_resched = True

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        self.state_of(thread).slice_used += delta_ns

    # -- placement ------------------------------------------------------------

    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        """Linux RT placement: prefer the previous CPU if it is not
        running a higher-priority RT thread, else the lowest-priority
        CPU (the cpupri search)."""
        prio = (self.state_of(thread).priority
                if isinstance(thread.policy, RtState)
                else rt_priority_of(thread) or 1)
        candidates = [c for c in range(len(self.machine))
                      if thread.allows_cpu(c)]
        prev = thread.cpu
        if prev in candidates and self._cpu_prio(prev) < prio:
            return prev
        return min(candidates, key=lambda c: (self._cpu_prio(c), c))

    def _cpu_prio(self, cpu: int) -> int:
        """Highest RT priority currently on a CPU (0 = none)."""
        core = self.machine.cores[cpu]
        best = 0
        curr = core.current
        if curr is not None and isinstance(curr.policy, RtState):
            best = curr.policy.priority
        head = self._rq(core).first_priority()
        if head is not None:
            best = max(best, NR_RT_PRIORITIES - head)
        return best

    # -- introspection --------------------------------------------------------

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        out = list(self._rq(core).threads())
        if core.current is not None \
                and isinstance(core.current.policy, RtState):
            out.append(core.current)
        return out
