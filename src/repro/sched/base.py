"""The scheduler class interface (the paper's Table 1, Linux side).

Every scheduler plugs into the engine through this interface, which
mirrors the Linux ``sched_class`` operations listed in Table 1 of the
paper:

=================  =========================================
Linux              Usage
=================  =========================================
enqueue_task       Enqueue a thread in a runqueue
dequeue_task       Remove a thread from a runqueue
yield_task         Yield the CPU back to the scheduler
pick_next_task     Select the next task to be scheduled
put_prev_task      Update statistics about the task that just ran
select_task_rq     Choose the CPU for a new/waking thread
=================  =========================================

plus the lifecycle hooks (``task_fork``, ``task_dead``, ``task_tick``,
``task_waking``, ``check_preempt_wakeup``) both CFS and the ULE port
need.  :mod:`repro.sched.freebsd_api` exposes the FreeBSD-side names
(``sched_add``, ``sched_rem``, ...) on top of this interface exactly
the way the paper's port maps them.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Optional

from ..core.clock import LINUX_TICK_NSEC
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core
    from ..core.thread import SimThread


class SchedClass(abc.ABC):
    """Base class for pluggable schedulers."""

    #: scheduler name used in registries and reports
    name: str = "base"
    #: period of the per-core scheduler tick
    tick_ns: int = LINUX_TICK_NSEC

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.machine = engine.machine
        self.topology = engine.machine.topology

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Called once when the simulation starts; register periodic
        work (load balancers) here."""

    @abc.abstractmethod
    def init_core(self, core: "Core"):
        """Create and return the per-core runqueue state (``core.rq``)."""

    # -- Table 1 operations ----------------------------------------------

    @abc.abstractmethod
    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        """Add ``thread`` to ``core``'s runqueue."""

    @abc.abstractmethod
    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        """Remove ``thread`` from ``core``'s runqueue."""

    def yield_task(self, core: "Core") -> None:
        """The current thread yields the CPU but stays runnable."""

    @abc.abstractmethod
    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        """Select the next thread to run on ``core``.

        ``core.current`` (when RUNNING) is still the incumbent; the
        scheduler must handle its internal put-prev bookkeeping and may
        return the incumbent to keep it running.  Returning ``None``
        idles the core (idle stealing may happen inside).
        """

    @abc.abstractmethod
    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        """Choose the CPU for a newly created or waking thread."""

    # -- optional hooks ---------------------------------------------------

    def check_preempt_wakeup(self, core: "Core",
                             thread: "SimThread") -> None:
        """Decide whether the newly enqueued ``thread`` should preempt
        ``core.current`` (sets ``core.need_resched``)."""

    def task_tick(self, core: "Core") -> None:
        """Periodic tick while ``core`` is running a thread."""

    def idle_tick(self, core: "Core") -> None:
        """Periodic tick while ``core`` is idle; may set
        ``need_resched`` to trigger a pick (and an idle steal)."""

    def needs_tick(self, core: "Core") -> bool:
        """Does the *idle* ``core`` still need its periodic tick?

        The NO_HZ contract: returning False promises that
        :meth:`idle_tick` on ``core`` is a no-op *and will stay one*
        until the next runqueue-composition change anywhere on the
        machine (enqueue, migrate, renice, affinity change) — the
        engine re-checks this hook at every such change and restarts
        the tick, phase-aligned, the moment it returns True (or the
        core gains a running thread).  A conservative superset (keep
        ticking) is always safe; an over-eager False diverges from the
        always-tick schedule.
        """
        return not core.is_idle

    def task_fork(self, parent: Optional["SimThread"],
                  child: "SimThread") -> None:
        """Initialize scheduler state for a new thread (``parent`` is
        ``None`` for top-level spawns)."""

    def task_dead(self, thread: "SimThread") -> None:
        """The thread exited; release scheduler state."""

    def task_waking(self, thread: "SimThread", slept_ns: int) -> None:
        """Called as a blocked thread wakes, before placement."""

    def task_nice_changed(self, thread: "SimThread") -> None:
        """The thread's nice value changed; reweigh/requeue it."""

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        """Charge ``delta_ns`` of execution to the running thread."""

    def make_tick_hook(self, core: "Core"):
        """Optionally return a fused per-core tick callback.

        The engine installs the returned callable (signature
        ``hook(core)``, like :meth:`Engine._tick`) as the core's tick
        event callback when no fault injector is active.  A hook MUST
        replicate the generic tick bit-identically — NO_HZ parking,
        accounting, ``task_tick``/``idle_tick`` and the
        dispatch-or-rearm epilogue — it exists purely to collapse the
        engine→scheduler call chain on the hottest periodic path.
        Returning None (the default) keeps the generic tick.
        """
        return None

    def epoch_prefold(self, cores: list, now: int) -> None:
        """Shared prework for a *tick epoch*: two or more cores whose
        tick events fire at the same instant ``now``.  The engine's
        merged pop (``Engine._pop_next``) calls this once, before the
        first tick of the group fires; the per-core ticks then run
        unchanged.  Implementations may therefore only do work whose
        omission is unobservable — warming caches whose later fills
        would be bit-identical (CFS prefills PELT decay factors) — so
        skipping the hook never changes a schedule.  Default: no-op.
        """

    # -- introspection -----------------------------------------------------

    @abc.abstractmethod
    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        """All runnable threads on ``core`` (including the running one)."""

    def nr_runnable(self, core: "Core") -> int:
        """Number of runnable threads on ``core`` (incl. running)."""
        return sum(1 for _ in self.runnable_threads(core))

    def total_runnable(self) -> int:
        """Runnable threads across the whole machine."""
        return sum(self.nr_runnable(c) for c in self.machine.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
