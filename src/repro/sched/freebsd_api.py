"""The FreeBSD scheduler entry points, mapped onto the Linux API.

This module is the executable form of the paper's Table 1: FreeBSD does
not have a pluggable scheduler interface, it declares a fixed set of
``sched_*`` functions.  The paper's port implements each Linux
``sched_class`` operation by calling the corresponding ULE function;
here we expose the inverse adapter so code written against the FreeBSD
names drives any :class:`~repro.sched.base.SchedClass`.

===================  =====================  ================================
Linux                FreeBSD                Usage
===================  =====================  ================================
enqueue_task         sched_add (new) /      Enqueue a thread in a runqueue
                     sched_wakeup (woken)
dequeue_task         sched_rem              Remove a thread from a runqueue
yield_task           sched_relinquish       Yield the CPU
pick_next_task       sched_choose           Select the next task
put_prev_task        sched_switch           Update stats of the prev task
select_task_rq       sched_pickcpu          Choose the CPU for a thread
===================  =====================  ================================

Note the 2-to-1 mapping the paper calls out: Linux distinguishes a new
thread from a woken one with an ``ENQUEUE_WAKEUP`` flag, FreeBSD with
two distinct functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread
    from .base import SchedClass


@dataclass(frozen=True)
class ApiMapping:
    """One row of Table 1."""

    linux: str
    freebsd: str
    usage: str


#: The rows of the paper's Table 1, kept as data so the experiment
#: driver can print the table.
TABLE1_MAPPINGS: tuple[ApiMapping, ...] = (
    ApiMapping("enqueue_task", "sched_add / sched_wakeup",
               "Enqueue a thread in a runqueue"),
    ApiMapping("dequeue_task", "sched_rem",
               "Remove a thread from a runqueue"),
    ApiMapping("yield_task", "sched_relinquish",
               "Yield the CPU back to the scheduler"),
    ApiMapping("pick_next_task", "sched_choose",
               "Select the next task to be scheduled"),
    ApiMapping("put_prev_task", "sched_switch",
               "Update statistics about the task that just ran"),
    ApiMapping("select_task_rq", "sched_pickcpu",
               "Choose the CPU on which a new (or waking up) thread "
               "should be placed"),
)


class FreeBSDSchedAdapter:
    """Expose FreeBSD ``sched_*`` names over a Linux-style scheduler.

    Every call is forwarded to the wrapped :class:`SchedClass` with the
    flag translation the paper's port performs.
    """

    def __init__(self, sched: "SchedClass"):
        self._sched = sched

    # -- enqueue: FreeBSD's two entry points -> one Linux op + flag ----

    def sched_add(self, core: "Core", thread: "SimThread") -> None:
        """Enqueue a newly created thread."""
        self._sched.enqueue_task(core, thread, EnqueueFlags.NEW)

    def sched_wakeup(self, core: "Core", thread: "SimThread") -> None:
        """Enqueue a thread that just woke up."""
        self._sched.enqueue_task(core, thread, EnqueueFlags.WAKEUP)

    # -- the 1-to-1 rows ------------------------------------------------

    def sched_rem(self, core: "Core", thread: "SimThread") -> None:
        """Remove a thread from its runqueue."""
        self._sched.dequeue_task(core, thread, DequeueFlags.NONE)

    def sched_relinquish(self, core: "Core") -> None:
        """Yield the CPU back to the scheduler."""
        self._sched.yield_task(core)

    def sched_choose(self, core: "Core") -> Optional["SimThread"]:
        """Select the next task to be scheduled on ``core``."""
        return self._sched.pick_next(core)

    def sched_switch(self, core: "Core", thread: "SimThread",
                     delta_ns: int = 0) -> None:
        """Update statistics about the task that just ran."""
        if delta_ns:
            self._sched.update_curr(core, thread, delta_ns)

    def sched_pickcpu(self, thread: "SimThread",
                      waking: bool = True,
                      waker: Optional["SimThread"] = None) -> int:
        """Choose the CPU for a new (or waking up) thread."""
        flags = SelectFlags.WAKEUP if waking else SelectFlags.FORK
        return self._sched.select_task_rq(thread, flags, waker=waker)
