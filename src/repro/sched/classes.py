"""Linux's scheduling-class stack: realtime above fair.

Linux walks a fixed list of scheduling classes (stop > deadline > rt >
fair > idle) and runs the first one with work.  §3 of the paper relies
on this structure (the ULE port registers as a class), and §5.1 points
at it: CFS alone cannot give a latency-sensitive application absolute
priority — that requires putting it in the realtime class, "which gets
absolute priority over CFS".

:class:`ClassStackScheduler` composes an :class:`~repro.sched.rt.
RtScheduler` above a :class:`~repro.cfs.core.CfsScheduler`.  A thread
whose spec carries an ``rt_priority`` tag belongs to the RT class;
everything else is fair.  Registered as scheduler ``"linux"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..cfs.core import CfsScheduler
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .base import SchedClass
from .rt import RtRunqueue, RtScheduler, RtState, rt_priority_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core
    from ..core.thread import SimThread


class StackRq:
    """Per-CPU container holding each class's runqueue."""

    __slots__ = ("rt", "fair")

    def __init__(self, rt: RtRunqueue, fair):
        self.rt = rt
        self.fair = fair


class ClassStackScheduler(SchedClass):
    """rt + fair, dispatched like the kernel's class list."""

    name = "linux"

    def __init__(self, engine: "Engine", **cfs_options):
        super().__init__(engine)
        self.rt = RtScheduler(engine)
        self.fair = CfsScheduler(engine, **cfs_options)
        self.tick_ns = self.fair.tick_ns

    # -- dispatch helpers -------------------------------------------------

    @staticmethod
    def _is_rt(thread: "SimThread") -> bool:
        if isinstance(thread.policy, RtState):
            return True
        if thread.policy is None:
            return rt_priority_of(thread) is not None
        return False

    def _class_of(self, thread: "SimThread") -> SchedClass:
        return self.rt if self._is_rt(thread) else self.fair

    # -- lifecycle ---------------------------------------------------------

    def init_core(self, core: "Core") -> StackRq:
        return StackRq(self.rt.init_core(core),
                       self.fair.init_core(core))

    def start(self) -> None:
        self.rt.start()
        self.fair.start()

    # -- delegated operations -----------------------------------------------

    def enqueue_task(self, core, thread, flags: EnqueueFlags) -> None:
        self._class_of(thread).enqueue_task(core, thread, flags)

    def dequeue_task(self, core, thread, flags: DequeueFlags) -> None:
        self._class_of(thread).dequeue_task(core, thread, flags)

    def yield_task(self, core: "Core") -> None:
        if core.current is not None:
            self._class_of(core.current).yield_task(core)

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        nxt = self.rt.pick_next(core)
        if nxt is not None:
            # The fair class's incumbent (if any) must be put back
            # into its timeline before the RT thread takes the CPU.
            prev = core.current
            if prev is not None and prev.is_running \
                    and not self._is_rt(prev):
                self.fair.put_prev(core)
            return nxt
        return self.fair.pick_next(core)

    def select_task_rq(self, thread, flags: SelectFlags,
                       waker=None) -> int:
        return self._class_of(thread).select_task_rq(thread, flags,
                                                     waker=waker)

    def check_preempt_wakeup(self, core, thread) -> None:
        curr = core.current
        if curr is None or not curr.is_running:
            core.need_resched = True
            return
        woken_rt = self._is_rt(thread)
        curr_rt = self._is_rt(curr)
        if woken_rt:
            self.rt.check_preempt_wakeup(core, thread)
        elif curr_rt:
            return  # a fair thread never preempts a realtime one
        else:
            self.fair.check_preempt_wakeup(core, thread)

    def task_tick(self, core: "Core") -> None:
        if core.current is not None:
            self._class_of(core.current).task_tick(core)

    def idle_tick(self, core: "Core") -> None:
        self.fair.idle_tick(core)

    def needs_tick(self, core: "Core") -> bool:
        # idle_tick delegates to fair only, but keep ticking while
        # either class says so — a conservative superset is safe.
        return self.rt.needs_tick(core) or self.fair.needs_tick(core)

    def task_fork(self, parent, child) -> None:
        self._class_of(child).task_fork(parent, child)

    def task_dead(self, thread) -> None:
        self._class_of(thread).task_dead(thread)

    def task_waking(self, thread, slept_ns: int) -> None:
        self._class_of(thread).task_waking(thread, slept_ns)

    def update_curr(self, core, thread, delta_ns: int) -> None:
        self._class_of(thread).update_curr(core, thread, delta_ns)

    # -- introspection --------------------------------------------------------

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        out = list(self.rt.runnable_threads(core))
        seen = {t.tid for t in out}
        for t in self.fair.runnable_threads(core):
            if t.tid not in seen:
                out.append(t)
        return out

    def nr_runnable(self, core: "Core") -> int:
        """Runnable threads across both classes."""
        return len(list(self.rt.runnable_threads(core))) \
            + self.fair.nr_runnable(core)
