"""Static priority with aging: the classic textbook policy.

Each thread has a fixed base priority derived from nice
(``nice + 20``: 0 is the strongest, 39 the weakest) and the scheduler
always runs the strongest runnable thread — the policy ULE applies
*within* its timeshare range, without the interactivity scoring.
Pure static priority starves: a steady stream of strong threads keeps
weak ones queued forever.  The classic fix is **aging** — a waiting
thread's effective priority strengthens by one level per
:data:`AGING_NS` queued, with the floor at 0, so every thread
eventually outranks any fixed-priority stream and starvation is
bounded by ``39 * AGING_NS``.

Expressed as a :class:`~repro.sched.policy.SchedPolicy`, the entire
scheduler is the ``key`` function: effective priority is *computed
fresh from the enqueue timestamp at every pick*, so there is no
periodic re-queue sweep to schedule and nothing to keep consistent —
aging falls out of the policy layer re-evaluating keys.  Equal
effective priorities round-robin via the layer's default slice-expiry
rotation; wakeup preemption is the default strictly-stronger-key
rule.
"""

from __future__ import annotations

from ..core.clock import msec
from .policy import PolicyScheduler, SchedPolicy

#: a queued thread strengthens by one priority level per this long
AGING_NS = msec(100)

#: round-robin quantum among equal effective priorities
QUANTUM_NS = msec(10)


def _init_thread(sched, thread, state):
    state.priority = max(-20, min(19, thread.nice)) + 20


def _effective_priority(sched, state) -> int:
    waited = sched.engine.now - state.enqueued_at
    return max(0, state.priority - waited // AGING_NS)


def _key(sched, thread, state):
    return (_effective_priority(sched, state),)


def _timeslice(sched, core, thread, state):
    return QUANTUM_NS


def _on_expire(sched, core, thread, state):
    # The thread consumed a full quantum: its aging credit resets
    # (otherwise the incumbent's old enqueue stamp would outrank every
    # equal-base waiter forever) and it loses seq ties until requeued.
    state.enqueued_at = sched.engine.now
    state.seq = sched.next_seq()


STATICPRIO_POLICY = SchedPolicy(
    name="staticprio",
    key=_key,
    timeslice=_timeslice,
    on_expire=_on_expire,
    init_thread=_init_thread,
)


class StaticPrioScheduler(PolicyScheduler):
    """Strongest-priority-first with linear aging, per-core queues."""

    name = "staticprio"

    def __init__(self, engine):
        super().__init__(engine, STATICPRIO_POLICY)

    # -- oracle/test accessors -------------------------------------------

    def base_priority_of(self, thread) -> int:
        """The thread's static priority (nice + 20; lower wins)."""
        return thread.policy.priority

    def effective_priority_of(self, thread) -> int:
        """The aged priority used for picking, as of ``now``."""
        return _effective_priority(self, thread.policy)
