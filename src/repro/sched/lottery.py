"""Lottery scheduling: probabilistic proportional share.

Waldspurger & Weihl's OSDI'94 policy: each thread holds *tickets*
proportional to its share (here: its CFS nice weight, so nice maps to
share the same way it does under CFS/EEVDF), and every pick draws a
winning ticket uniformly at random.  Expected CPU time is
proportional to tickets; there are no deadlines, no vruntime, and —
in the classic formulation — no wakeup preemption: a waking thread
waits for the next drawing.

The draw uses ``engine.random.stream("sched.lottery")``, the engine's
seeded, named RNG stream — the same scenario under the same seed
replays the exact drawing sequence, so golden digests, differential
oracles, and the tickless metamorphic relation all hold bit-exactly
(picks happen at identical times with identical candidate sets in
both tick modes, so the stream is consumed identically).  Drawings
with a single candidate skip the RNG entirely, keeping the stream
position independent of uncontended picks.

Expressed as a :class:`~repro.sched.policy.SchedPolicy`: a custom
``pick`` holds the drawing, ``preempts`` is constantly False, and the
queue-order walk resolves the winning ticket deterministically.
"""

from __future__ import annotations

from ..cfs.weights import nice_to_weight
from ..core.clock import msec
from .policy import PolicyScheduler, SchedPolicy

#: drawing cadence: how long a winner runs before the next lottery
QUANTUM_NS = msec(5)


def _init_thread(sched, thread, state):
    state.tickets = nice_to_weight(thread.nice)


def _key(sched, thread, state):
    # Only used for steal-candidate ordering fallbacks; the real pick
    # is the drawing below.  More tickets = stronger claim.
    return (-state.tickets,)


def _pick(sched, core, candidates):
    if len(candidates) == 1:
        return candidates[0]
    # Walk in enqueue order (stable, deterministic) accumulating
    # tickets; the drawn ticket picks the winner.
    ordered = sorted(candidates, key=lambda t: t.policy.seq)
    total = 0
    for t in ordered:
        total += t.policy.tickets
    winner = sched.lottery_rng.randint(1, total)
    acc = 0
    for t in ordered:
        acc += t.policy.tickets
        if winner <= acc:
            return t
    return ordered[-1]  # unreachable: winner <= total


def _preempts(sched, core, curr, new):
    # Classic lottery: no wakeup preemption — the waking thread joins
    # the next drawing (slice expiry or the incumbent blocking).
    return False


def _timeslice(sched, core, thread, state):
    return QUANTUM_NS


LOTTERY_POLICY = SchedPolicy(
    name="lottery",
    key=_key,
    pick=_pick,
    timeslice=_timeslice,
    preempts=_preempts,
    init_thread=_init_thread,
)


class LotteryScheduler(PolicyScheduler):
    """Seeded proportional-share lottery over per-core queues."""

    name = "lottery"

    def __init__(self, engine):
        super().__init__(engine, LOTTERY_POLICY)
        #: the drawing stream: seeded and named, replayed exactly on
        #: identical runs
        self.lottery_rng = engine.random.stream("sched.lottery")

    # -- oracle/test accessors -------------------------------------------

    def tickets_of(self, thread) -> int:
        """The thread's ticket count (its CFS nice weight)."""
        return thread.policy.tickets
