"""Declarative scheduling-policy layer over :class:`SchedClass`.

The paper's Table 1 interface is wide enough to express whole
schedulers but narrow enough that most of a scheduler is boilerplate:
queue bookkeeping, incumbent handling, idle stealing, the NO_HZ
mirror, preemption plumbing.  This module implements that boilerplate
**once** in :class:`PolicyScheduler` and reduces a concrete scheduler
to a :class:`SchedPolicy` — a frozen bundle of small *pure* components:

================  ====================================================
component         decides
================  ====================================================
``key``           queue discipline: total order over runnable threads
                  (lower wins; recomputed fresh at every pick, so
                  time-dependent keys like aging just work)
``pick``          pick rule: choose among the candidate threads
                  (default: minimum ``(key, seq)``)
``timeslice``     timeslice rule: how long a pick keeps the CPU
``place``         placement rule: CPU for a new/waking thread
                  (default: least-loaded, prefer idle, lowest index)
``preempts``      preemption predicate: does a waking thread preempt
                  the incumbent? (default: strictly smaller key)
``on_charge``     accounting: fold executed nanoseconds into the
                  thread's policy state (vruntime, ...)
``on_enqueue``    enqueue adjustment (deadline stamps, wake credits)
``on_expire``     slice expiry: re-key the incumbent so round-robin
                  rotation falls out of the ordinary pick
``init_thread``   per-thread state initialisation (weights, tickets)
================  ====================================================

Every component receives the :class:`PolicyScheduler` instance first,
so it can reach the engine clock, topology, and seeded RNG streams —
but holds no mutable state of its own.  The zoo schedulers
(:mod:`repro.sched.eevdf`, :mod:`repro.sched.bfs`,
:mod:`repro.sched.lottery`, :mod:`repro.sched.staticprio`,
:mod:`repro.sched.predictive`) are each one policy in one small file;
docs/scheduler-zoo.md is the authoring guide.

Engine contracts the layer guarantees on behalf of every policy:

* the running thread stays in its runqueue (the Linux convention);
* ``needs_tick`` mirrors the idle-steal poll exactly and depends only
  on runqueue *composition* (never on running state, which changes
  without a :meth:`~repro.core.engine.Engine._kick_stopped_ticks`
  call), so NO_HZ parking is digest-identical to always-tick;
* idle cores steal work (per-core queues) or pull from the shared
  queue (``global_queue=True``), so no core idles while eligible work
  waits;
* all tie-breaks go through a per-engine enqueue sequence number —
  never a process-global id — so schedules replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..core.clock import LINUX_TICK_NSEC, msec
from ..core.errors import SchedulerError
from ..core.schedflags import DequeueFlags, EnqueueFlags, SelectFlags
from .base import SchedClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.machine import Core
    from ..core.thread import SimThread

#: default timeslice when a policy does not supply its own rule
DEFAULT_SLICE_NS = msec(10)


class PolicyThreadState:
    """Per-thread scheduler state shared by every policy.

    One flat slotted object instead of per-policy classes: the fields
    are a union of what the zoo needs (EEVDF uses ``vruntime`` and
    ``deadline``, lottery uses ``tickets``, static priority uses
    ``priority``...); unused fields stay at their zero values.
    """

    __slots__ = ("seq", "weight", "vruntime", "deadline", "tickets",
                 "priority", "slice_used", "enqueued_at")

    def __init__(self):
        self.seq = 0            # enqueue order, the universal tie-break
        self.weight = 1024      # load weight (nice-derived)
        self.vruntime = 0       # weighted executed time (EEVDF)
        self.deadline = 0       # virtual deadline (EEVDF, BFS)
        self.tickets = 1        # lottery tickets
        self.priority = 0       # static priority (lower wins)
        self.slice_used = 0     # ns executed since the last (re)pick
        self.enqueued_at = 0    # engine time of the last enqueue


@dataclass(frozen=True)
class SchedPolicy:
    """A scheduler as data: small pure components over the shared
    :class:`PolicyScheduler` machinery.  Only ``name`` and ``key`` are
    mandatory; every other component has a sensible default."""

    #: registry/report name of the scheduler this policy defines
    name: str
    #: queue discipline: (sched, thread, state) -> ordering key tuple
    key: Callable
    #: pick rule: (sched, core, candidates) -> thread | None
    pick: Optional[Callable] = None
    #: timeslice rule: (sched, core, thread, state) -> ns
    timeslice: Optional[Callable] = None
    #: placement rule: (sched, thread, flags, waker) -> cpu index
    place: Optional[Callable] = None
    #: preemption predicate: (sched, core, curr, new) -> bool
    preempts: Optional[Callable] = None
    #: accounting fold: (sched, thread, state, delta_ns) -> None
    on_charge: Optional[Callable] = None
    #: enqueue adjustment: (sched, core, thread, state, flags) -> None
    on_enqueue: Optional[Callable] = None
    #: slice expiry re-key: (sched, core, thread, state) -> None
    on_expire: Optional[Callable] = None
    #: per-thread init: (sched, thread, state) -> None
    init_thread: Optional[Callable] = None
    #: one shared queue instead of per-core queues (BFS/MuQSS shape)
    global_queue: bool = False
    #: per-core periodic tick period
    tick_ns: int = LINUX_TICK_NSEC


class PolicyRunqueue:
    """Per-core queue state: the list of queued threads (the running
    thread stays listed, per the Linux convention the engine models).
    In ``global_queue`` mode every core shares one list and this
    object only marks membership."""

    __slots__ = ("threads",)

    def __init__(self, shared: Optional[list] = None):
        self.threads: list = [] if shared is None else shared


class PolicyScheduler(SchedClass):
    """Generic engine adapter executing a :class:`SchedPolicy`.

    Subclass it with a class-level ``name`` and pass the policy to the
    constructor; everything else — Table 1 hooks, idle stealing, the
    NO_HZ mirror, slice expiry, tie-breaking — is shared machinery.
    """

    name = "policy"

    def __init__(self, engine, policy: SchedPolicy):
        super().__init__(engine)
        self.policy = policy
        self.tick_ns = policy.tick_ns
        self._seq = 0
        #: the shared queue in global_queue mode (None otherwise)
        self._shared: Optional[list] = [] if policy.global_queue \
            else None

    # -- lifecycle ------------------------------------------------------

    def init_core(self, core: "Core") -> PolicyRunqueue:
        return PolicyRunqueue(shared=self._shared)

    def task_fork(self, parent: Optional["SimThread"],
                  child: "SimThread") -> None:
        state = PolicyThreadState()
        child.policy = state
        init = self.policy.init_thread
        if init is not None:
            init(self, child, state)

    def task_nice_changed(self, thread: "SimThread") -> None:
        init = self.policy.init_thread
        if init is not None:
            init(self, thread, thread.policy)

    def state_of(self, thread: "SimThread") -> PolicyThreadState:
        """The thread's policy state (oracle/test accessor)."""
        return thread.policy

    def next_seq(self) -> int:
        """The monotonic enqueue sequence number: the universal
        deterministic tie-break (never a process-global id)."""
        self._seq += 1
        return self._seq

    # -- queue maintenance ----------------------------------------------

    def _queue_of(self, core: "Core") -> list:
        return self._shared if self._shared is not None \
            else core.rq.threads

    def enqueue_task(self, core: "Core", thread: "SimThread",
                     flags: EnqueueFlags) -> None:
        state = thread.policy
        state.seq = self.next_seq()
        state.enqueued_at = self.engine.now
        if not flags & EnqueueFlags.MIGRATE:
            state.slice_used = 0
        self._queue_of(core).append(thread)
        hook = self.policy.on_enqueue
        if hook is not None:
            hook(self, core, thread, state, flags)

    def dequeue_task(self, core: "Core", thread: "SimThread",
                     flags: DequeueFlags) -> None:
        try:
            self._queue_of(core).remove(thread)
        except ValueError:
            raise SchedulerError(
                f"{thread} not on cpu {core.index} runqueue") from None

    def yield_task(self, core: "Core") -> None:
        curr = core.current
        if curr is None:
            return
        state = curr.policy
        state.seq = self.next_seq()   # lose all ties until requeued
        state.slice_used = 0
        expire = self.policy.on_expire
        if expire is not None:
            expire(self, core, curr, state)

    # -- picking ----------------------------------------------------------

    def _key_of(self, thread: "SimThread") -> tuple:
        state = thread.policy
        return self.policy.key(self, thread, state) + (state.seq,)

    def _pick_min(self, candidates) -> Optional["SimThread"]:
        best = None
        best_key = None
        for thread in candidates:
            key = self._key_of(thread)
            if best_key is None or key < best_key:
                best, best_key = thread, key
        return best

    def _candidates(self, core: "Core") -> list:
        """Threads ``core`` may run right now: its own queued threads
        (including the incumbent), plus — in global-queue mode — every
        waiting thread homed elsewhere whose affinity allows this
        core."""
        if self._shared is None:
            return list(core.rq.threads)
        index = core.index
        return [t for t in self._shared
                if t.rq_cpu == index
                or (not t.is_running and t.allows_cpu(index))]

    def pick_next(self, core: "Core") -> Optional["SimThread"]:
        candidates = self._candidates(core)
        if not candidates and self._shared is None:
            stolen = self._steal(core)
            if stolen is None:
                return None
            candidates = [stolen]
        if not candidates:
            return None
        picker = self.policy.pick
        chosen = picker(self, core, candidates) if picker is not None \
            else self._pick_min(candidates)
        if chosen is None:
            return None
        if chosen.rq_cpu != core.index:
            # global-queue pull: adopt the thread onto this core
            self.engine.migrate_thread(chosen, core.index)
        if chosen is not core.current:
            chosen.policy.slice_used = 0
        return chosen

    def _steal(self, core: "Core") -> Optional["SimThread"]:
        """Idle stealing for per-core queues: adopt the best waiting
        thread from any other runqueue (policy order decides *which*,
        exactly like a regular pick)."""
        candidates = []
        index = core.index
        for other in self.machine.cores:
            if other is core:
                continue
            for t in other.rq.threads:
                if not t.is_running and t.allows_cpu(index):
                    candidates.append(t)
        if not candidates:
            return None
        picker = self.policy.pick
        victim = picker(self, core, candidates) if picker is not None \
            else self._pick_min(candidates)
        if victim is None:
            return None
        self.engine.migrate_thread(victim, core.index)
        return victim

    # -- placement ----------------------------------------------------------

    def select_task_rq(self, thread: "SimThread", flags: SelectFlags,
                       waker: Optional["SimThread"] = None) -> int:
        place = self.policy.place
        if place is not None:
            return place(self, thread, flags, waker)
        return self._least_loaded_cpu(thread)

    def _least_loaded_cpu(self, thread: "SimThread") -> int:
        """Default placement: fewest homed threads, prefer idle cores,
        lowest index (composition-only, so it is deterministic)."""
        best = None
        best_rank = None
        counts = self._home_counts()
        for core in self.machine.cores:
            if not core.online or not thread.allows_cpu(core.index):
                continue
            rank = (counts[core.index], 0 if core.is_idle else 1,
                    core.index)
            if best_rank is None or rank < best_rank:
                best, best_rank = core.index, rank
        if best is None:
            return thread.rq_cpu if thread.rq_cpu is not None else 0
        return best

    def _home_counts(self) -> list[int]:
        """Queued-thread count per home CPU (``rq_cpu``), valid for
        both queue modes."""
        counts = [0] * len(self.machine.cores)
        if self._shared is not None:
            for t in self._shared:
                counts[t.rq_cpu] += 1
        else:
            for core in self.machine.cores:
                counts[core.index] = len(core.rq.threads)
        return counts

    # -- preemption / ticks ------------------------------------------------

    def check_preempt_wakeup(self, core: "Core",
                             thread: "SimThread") -> None:
        curr = core.current
        if curr is None or not curr.is_running:
            core.need_resched = True
            return
        pred = self.policy.preempts
        if pred is not None:
            if pred(self, core, curr, thread):
                core.need_resched = True
        elif self._key_of(thread) < self._key_of(curr):
            core.need_resched = True

    def _slice_ns(self, core: "Core", thread: "SimThread") -> int:
        rule = self.policy.timeslice
        if rule is None:
            return DEFAULT_SLICE_NS
        return rule(self, core, thread, thread.policy)

    def task_tick(self, core: "Core") -> None:
        curr = core.current
        if curr is None:
            return
        state = curr.policy
        if state.slice_used < self._slice_ns(core, curr):
            return
        if len(self._candidates(core)) <= 1:
            state.slice_used = 0    # alone: fresh slice, no dispatch
            return
        expire = self.policy.on_expire
        if expire is not None:
            expire(self, core, curr, state)
        else:
            state.seq = self.next_seq()   # rotate among key-ties
        state.slice_used = 0
        core.need_resched = True

    def idle_tick(self, core: "Core") -> None:
        if self._idle_work(core):
            core.need_resched = True

    def needs_tick(self, core: "Core") -> bool:
        # The NO_HZ contract: mirror idle_tick's poll *exactly*, and
        # keep it a function of queue composition only — every
        # composition change re-checks this hook, running-state
        # changes do not (see the module docstring).
        return not core.is_idle or self._idle_work(core)

    def make_tick_hook(self, core: "Core"):
        """Fused policy tick (see ``SchedClass.make_tick_hook``).

        Inlines ``Engine._tick`` → ``Engine._update_curr`` →
        :meth:`update_curr` → :meth:`task_tick` into one closure over
        per-core state, statement-for-statement identical to the
        generic chain so every zoo scheduler's schedule is
        bit-identical (the conformance battery and decision traces pin
        this down).
        """
        from ..core.engine import RUN_FOREVER
        engine = self.engine
        events = engine._sink
        tick_ns = self.tick_ns
        timeslice = self.policy.timeslice
        on_charge = self.policy.on_charge
        on_expire = self.policy.on_expire

        def tick(_core: "Core") -> None:
            if not core.online:
                return
            curr = core.current
            now = engine.now
            if curr is None:
                if engine.tickless and not self._idle_work(core):
                    # needs_tick(): an idle core only keeps ticking
                    # while some queue holds stealable work
                    core.tick_stopped = True
                    engine._nr_stopped_ticks += 1
                    engine.metrics.incr("engine.tick_stops")
                    return
                events.repost(core.tick_event, now + tick_ns)
                # -- idle_tick, inlined --
                if self._idle_work(core):
                    core.need_resched = True
                if core.need_resched:
                    engine._dispatch(core)
                return
            events.repost(core.tick_event, now + tick_ns)
            state = curr.policy
            # -- Engine._update_curr, inlined --
            delta = now - core._curr_account_start
            core._curr_account_start = now
            if delta > 0:
                core.account_to_now()
                curr.total_runtime += delta
                curr.last_ran = now
                remaining = curr.run_remaining
                if remaining is not None and remaining is not RUN_FOREVER:
                    speed = core._curr_speed
                    progress = delta if speed == 1.0 \
                        else int(delta * speed)
                    remaining -= progress
                    curr.run_remaining = remaining if remaining > 0 else 0
                # -- update_curr, inlined --
                state.slice_used += delta
                if on_charge is not None:
                    on_charge(self, curr, state, delta)
            # -- task_tick, inlined --
            slice_ns = DEFAULT_SLICE_NS if timeslice is None \
                else timeslice(self, core, curr, state)
            if state.slice_used >= slice_ns:
                if len(self._candidates(core)) <= 1:
                    state.slice_used = 0   # alone: fresh slice
                else:
                    if on_expire is not None:
                        on_expire(self, core, curr, state)
                    else:
                        state.seq = self.next_seq()  # rotate key-ties
                    state.slice_used = 0
                    core.need_resched = True
            if core.need_resched:
                engine._dispatch(core)
            elif core.completion_event is not None:
                engine._cancel_completion(core)
                engine._arm_completion(core)

        return tick

    def _idle_work(self, core: "Core") -> bool:
        """Would an idle ``core`` find work to steal or pull?  A
        composition-only over-approximation: some home CPU holds two
        or more threads, at least one of which this core may run (two
        queued guarantees at least one waiter, since at most one of
        them can be running)."""
        index = core.index
        if self._shared is not None:
            counts = self._home_counts()
            for t in self._shared:
                if counts[t.rq_cpu] > 1 and t.rq_cpu != index \
                        and t.allows_cpu(index):
                    return True
            return False
        for other in self.machine.cores:
            if other is core or len(other.rq.threads) <= 1:
                continue
            for t in other.rq.threads:
                if t.allows_cpu(index):
                    return True
        return False

    # -- accounting ---------------------------------------------------------

    def update_curr(self, core: "Core", thread: "SimThread",
                    delta_ns: int) -> None:
        state = thread.policy
        state.slice_used += delta_ns
        hook = self.policy.on_charge
        if hook is not None:
            hook(self, thread, state, delta_ns)

    # -- introspection ------------------------------------------------------

    def runnable_threads(self, core: "Core") -> Iterable["SimThread"]:
        if self._shared is None:
            return list(core.rq.threads)
        index = core.index
        return [t for t in self._shared if t.rq_cpu == index]

    def nr_runnable(self, core: "Core") -> int:
        if self._shared is None:
            return len(core.rq.threads)
        index = core.index
        count = 0
        for t in self._shared:
            if t.rq_cpu == index:
                count += 1
        return count

    def total_runnable(self) -> int:
        if self._shared is not None:
            return len(self._shared)
        total = 0
        for core in self.machine.cores:
            total += len(core.rq.threads)
        return total
