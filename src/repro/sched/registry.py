"""Registry of available scheduler implementations.

Experiments refer to schedulers by name ("cfs", "ule", "fifo", ...); the
registry turns a name plus keyword options into a factory suitable for
:class:`~repro.core.engine.Engine`.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.errors import SchedulerError

_FACTORIES: Dict[str, Callable] = {}


def register_scheduler(name: str, factory: Callable) -> None:
    """Register ``factory(engine, **options) -> SchedClass`` under
    ``name``; re-registering a name overwrites it."""
    _FACTORIES[name] = factory


def scheduler_factory(name: str, **options) -> Callable:
    """Return an ``engine -> SchedClass`` callable for ``name``.

    Options are forwarded to the scheduler constructor, e.g.
    ``scheduler_factory("ule", pickcpu_scan_cost_ns=120)``.
    """
    _ensure_builtin()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise SchedulerError(
            f"unknown scheduler {name!r} (known: {known})") from None
    return lambda engine: factory(engine, **options)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    _ensure_builtin()
    return sorted(_FACTORIES)


def _ensure_builtin() -> None:
    """Register the built-in schedulers lazily to avoid import cycles."""
    if "fifo" not in _FACTORIES:
        from .fifo import FifoScheduler
        register_scheduler(
            "fifo", lambda engine, **kw: FifoScheduler(engine, **kw))
    if "cfs" not in _FACTORIES:
        try:
            from ..cfs.core import CfsScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "cfs", lambda engine, **kw: CfsScheduler(engine, **kw))
    if "ule" not in _FACTORIES:
        try:
            from ..ule.core import UleScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "ule", lambda engine, **kw: UleScheduler(engine, **kw))
    if "rt" not in _FACTORIES:
        from .rt import RtScheduler
        register_scheduler(
            "rt", lambda engine, **kw: RtScheduler(engine, **kw))
    if "linux" not in _FACTORIES:
        try:
            from .classes import ClassStackScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "linux",
                lambda engine, **kw: ClassStackScheduler(engine, **kw))
