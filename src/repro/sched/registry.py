"""Registry of available scheduler implementations.

Experiments refer to schedulers by name ("cfs", "ule", "fifo", ...); the
registry turns a name plus keyword options into a factory suitable for
:class:`~repro.core.engine.Engine`.

Registration is the zoo's single enrollment point: a name registered
here is automatically selectable from ``repro-sched run --sched``,
pulled through the differential oracles and the seeded fuzzer
(``repro.testing``), covered by the conformance battery
(``tests/test_sched_conformance.py``), and eligible for golden-trace
cells — see docs/scheduler-zoo.md.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict

from ..core.errors import SchedulerError

_FACTORIES: Dict[str, Callable] = {}

#: environment switch turning re-registration warnings into errors
STRICT_ENV = "REPRO_SCHED_STRICT"


def register_scheduler(name: str, factory: Callable, *,
                       strict: bool | None = None) -> None:
    """Register ``factory(engine, **options) -> SchedClass`` under
    ``name``.

    Re-registering an existing name replaces the factory but is almost
    always an accident (two zoo modules colliding, a test leaking a
    stub into the process-wide registry), so it emits a
    ``RuntimeWarning`` — and raises :class:`SchedulerError` when
    ``strict=True`` or the ``REPRO_SCHED_STRICT`` environment variable
    is set.  Intentional replacement: ``unregister_scheduler`` first.
    """
    if name in _FACTORIES:
        if strict is None:
            strict = bool(os.environ.get(STRICT_ENV))
        message = (f"scheduler {name!r} is already registered; "
                   f"re-registration replaces the existing factory")
        if strict:
            raise SchedulerError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    _FACTORIES[name] = factory


def unregister_scheduler(name: str) -> None:
    """Remove ``name`` from the registry (intentional replacement and
    test cleanup); unknown names are a no-op."""
    _FACTORIES.pop(name, None)


def scheduler_factory(name: str, **options) -> Callable:
    """Return an ``engine -> SchedClass`` callable for ``name``.

    Options are forwarded to the scheduler constructor, e.g.
    ``scheduler_factory("ule", pickcpu_scan_cost_ns=120)``.
    """
    _ensure_builtin()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise SchedulerError(
            f"unknown scheduler {name!r} (known: {known})") from None
    return lambda engine: factory(engine, **options)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    _ensure_builtin()
    return sorted(_FACTORIES)


def _ensure_builtin() -> None:
    """Register the built-in schedulers lazily to avoid import cycles."""
    if "fifo" not in _FACTORIES:
        from .fifo import FifoScheduler
        register_scheduler(
            "fifo", lambda engine, **kw: FifoScheduler(engine, **kw))
    if "cfs" not in _FACTORIES:
        try:
            from ..cfs.core import CfsScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "cfs", lambda engine, **kw: CfsScheduler(engine, **kw))
    if "ule" not in _FACTORIES:
        try:
            from ..ule.core import UleScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "ule", lambda engine, **kw: UleScheduler(engine, **kw))
    if "rt" not in _FACTORIES:
        from .rt import RtScheduler
        register_scheduler(
            "rt", lambda engine, **kw: RtScheduler(engine, **kw))
    if "linux" not in _FACTORIES:
        try:
            from .classes import ClassStackScheduler
        except ImportError:  # pragma: no cover - during bootstrap
            pass
        else:
            register_scheduler(
                "linux",
                lambda engine, **kw: ClassStackScheduler(engine, **kw))
    # -- the scheduler zoo (policy-DSL schedulers; docs/scheduler-zoo.md)
    if "eevdf" not in _FACTORIES:
        from .eevdf import EevdfScheduler
        register_scheduler(
            "eevdf", lambda engine, **kw: EevdfScheduler(engine, **kw))
    if "bfs" not in _FACTORIES:
        from .bfs import BfsScheduler
        register_scheduler(
            "bfs", lambda engine, **kw: BfsScheduler(engine, **kw))
    if "lottery" not in _FACTORIES:
        from .lottery import LotteryScheduler
        register_scheduler(
            "lottery",
            lambda engine, **kw: LotteryScheduler(engine, **kw))
    if "staticprio" not in _FACTORIES:
        from .staticprio import StaticPrioScheduler
        register_scheduler(
            "staticprio",
            lambda engine, **kw: StaticPrioScheduler(engine, **kw))
    if "predictive" not in _FACTORIES:
        from .predictive import PredictiveScheduler
        register_scheduler(
            "predictive",
            lambda engine, **kw: PredictiveScheduler(engine, **kw))
