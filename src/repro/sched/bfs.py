"""BFS/MuQSS-style scheduler: one global queue, virtual deadlines.

Con Kolivas's BFS (later MuQSS) deliberately inverts the Linux/ULE
design point the paper studies: instead of per-core runqueues plus a
load balancer, there is **one shared queue** and every core picks the
globally best thread — perfect work conservation and no balancing
machinery, at the cost of lock contention the simulator does not
model (which is exactly why it is an interesting zoo member: it
isolates the *policy* difference from the *structure* difference).

Policy: every enqueue stamps a **virtual deadline**

    ``deadline = now + rr_interval * prio_ratio(nice) / 128``

where ``prio_ratio`` grows ~10% per nice level, so nicer threads get
proportionally later deadlines (BFS's actual formula).  Cores always
run the earliest-deadline runnable thread; slice expiry re-stamps the
deadline, which is what makes the queue round-robin at equal nice.

Expressed as a :class:`~repro.sched.policy.SchedPolicy` with
``global_queue=True``: the shared machinery keeps one queue, filters
per-core candidates by affinity, and pulls cross-core picks over with
a migration, so per-core invariants (``rq_cpu``, membership) still
hold exactly.
"""

from __future__ import annotations

from ..core.clock import msec
from ..core.schedflags import EnqueueFlags
from .policy import PolicyScheduler, SchedPolicy

#: BFS's rr_interval: the full-deadline quantum at nice 0
RR_NS = msec(6)

#: prio_ratios table: 128 at nice -20, growing ~10% per nice level
#: (BFS computes prio_ratios[i] = prio_ratios[i-1] * 11 / 10)
PRIO_RATIOS = [128]
for _ in range(39):
    PRIO_RATIOS.append(PRIO_RATIOS[-1] * 11 // 10)


def prio_ratio(nice: int) -> int:
    """The deadline-scaling ratio for ``nice`` (128 = fastest)."""
    return PRIO_RATIOS[max(-20, min(19, nice)) + 20]


def _stamp_deadline(sched, state, nice: int) -> None:
    state.deadline = sched.engine.now + RR_NS * prio_ratio(nice) // 128


def _on_enqueue(sched, core, thread, state, flags):
    if not flags & EnqueueFlags.MIGRATE:
        # A migration (idle pull) keeps the stamped deadline; anything
        # else — wakeup, fork, requeue — earns a fresh one.
        _stamp_deadline(sched, state, thread.nice)


def _on_expire(sched, core, thread, state):
    _stamp_deadline(sched, state, thread.nice)


def _key(sched, thread, state):
    return (state.deadline,)


def _timeslice(sched, core, thread, state):
    return RR_NS


BFS_POLICY = SchedPolicy(
    name="bfs",
    key=_key,
    timeslice=_timeslice,
    on_enqueue=_on_enqueue,
    on_expire=_on_expire,
    global_queue=True,
)


class BfsScheduler(PolicyScheduler):
    """Single global queue, earliest-virtual-deadline pick."""

    name = "bfs"

    def __init__(self, engine):
        super().__init__(engine, BFS_POLICY)

    # -- oracle/test accessors -------------------------------------------

    def deadline_of(self, thread) -> int:
        """The thread's stamped wall-clock deadline (ns)."""
        return thread.policy.deadline
