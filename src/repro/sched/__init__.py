"""Scheduler framework: the Linux-style scheduler class interface
(Table 1), the FreeBSD name adapter, a reference FIFO scheduler, and
the scheduler registry."""

from .base import SchedClass
from .classes import ClassStackScheduler
from .fifo import FifoScheduler
from .freebsd_api import TABLE1_MAPPINGS, ApiMapping, FreeBSDSchedAdapter
from .registry import (available_schedulers, register_scheduler,
                       scheduler_factory)
from .rt import RtScheduler

__all__ = [
    "SchedClass",
    "FreeBSDSchedAdapter",
    "ApiMapping",
    "TABLE1_MAPPINGS",
    "FifoScheduler",
    "RtScheduler",
    "ClassStackScheduler",
    "scheduler_factory",
    "register_scheduler",
    "available_schedulers",
]
