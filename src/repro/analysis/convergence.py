"""Load-balance convergence analysis (Fig. 6's question: how long
until the machine is balanced, and how balanced does it get?)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.metrics import MetricRegistry


def is_balanced(counts: list[int], tolerance: int = 1) -> bool:
    """All cores within ``tolerance`` threads of each other."""
    return bool(counts) and max(counts) - min(counts) <= tolerance


def current_counts(engine: "Engine") -> list[int]:
    """Runnable-thread count per core, right now."""
    return [engine.scheduler.nr_runnable(core)
            for core in engine.machine.cores]


def balance_predicate(tolerance: int = 1):
    """A ``stop_when`` for :meth:`Engine.run`: stop once balanced."""
    def predicate(engine: "Engine") -> bool:
        return is_balanced(current_counts(engine), tolerance)
    return predicate


def time_to_balance(metrics: "MetricRegistry", ncores: int,
                    start_ns: int, tolerance: int = 1) -> Optional[int]:
    """From recorded threads-per-core series: first time after
    ``start_ns`` the spread stayed within ``tolerance`` (None if
    never)."""
    from ..tracing.timeline import imbalance_over_time
    for t, spread in imbalance_over_time(metrics, ncores):
        if t >= start_ns and spread <= tolerance:
            return t - start_ns
    return None


def final_spread(metrics: "MetricRegistry", ncores: int) -> Optional[int]:
    """max-min threads per core at the last sample (CFS's residual
    NUMA imbalance in Fig. 6: 18 vs 15)."""
    from ..tracing.timeline import imbalance_over_time
    series = imbalance_over_time(metrics, ncores)
    if not series:
        return None
    return int(series[-1][1])
