"""Distribution views over latency samples: histograms and percentile
tables, rendered for terminals."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.metrics import LatencyRecorder


def log_histogram(samples: Sequence[int], base: float = 2.0,
                  min_exp: Optional[int] = None,
                  max_exp: Optional[int] = None) -> list[tuple]:
    """Bucket samples logarithmically; returns ``(lo, hi, count)``
    rows.  Log buckets suit scheduling latencies, which span ns to
    hundreds of ms."""
    values = [s for s in samples if s > 0]
    if not values:
        return []
    if min_exp is None:
        min_exp = int(math.floor(math.log(min(values), base)))
    if max_exp is None:
        max_exp = int(math.ceil(math.log(max(values), base)))
    buckets = [0] * (max_exp - min_exp + 1)
    for v in values:
        exp = int(math.floor(math.log(v, base)))
        exp = max(min_exp, min(max_exp, exp))
        buckets[exp - min_exp] += 1
    rows = []
    for i, count in enumerate(buckets):
        lo = base ** (min_exp + i)
        hi = base ** (min_exp + i + 1)
        rows.append((lo, hi, count))
    return rows


def render_histogram(samples: Sequence[int], width: int = 40,
                     title: Optional[str] = None,
                     unit_div: float = 1e6, unit: str = "ms") -> str:
    """ASCII log-histogram of duration samples (default unit: ms)."""
    lines = []
    if title:
        lines.append(title)
    rows = log_histogram(samples)
    if not rows:
        return "\n".join(lines + ["(no samples)"])
    peak = max(count for _, _, count in rows) or 1
    for lo, hi, count in rows:
        if count == 0:
            continue
        bar = "#" * max(1, int(count / peak * width))
        lines.append(f"{lo / unit_div:10.3f}-{hi / unit_div:<10.3f}{unit} "
                     f"|{bar:<{width}}| {count}")
    return "\n".join(lines)


def percentile_row(recorder: "LatencyRecorder",
                   unit_div: float = 1e6) -> dict:
    """p50/p95/p99/max summary of a latency recorder (default ms)."""
    return {
        "count": recorder.count,
        "mean": recorder.mean / unit_div,
        "p50": recorder.p50 / unit_div,
        "p95": recorder.p95 / unit_div,
        "p99": recorder.p99 / unit_div,
        "max": recorder.max / unit_div,
    }
