"""Side-by-side scheduler comparison: the library's headline use-case
as a one-call API.

>>> from repro.analysis.compare import compare_schedulers
>>> from repro.workloads.nas import mg
>>> outcome = compare_schedulers(mg, ncpus=32, noise=True)
>>> outcome.winner, outcome.diff_pct
('ule', 13.7)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.clock import sec, usec
from ..core.engine import Engine
from .stats import percent_diff


@dataclass
class SchedulerRun:
    """One scheduler's result on the workload."""

    sched: str
    performance: float
    simulated_ns: int
    switches: int
    migrations: int
    preemptions: int
    overhead_pct: float


@dataclass
class ComparisonOutcome:
    """The result of :func:`compare_schedulers`."""

    runs: dict[str, SchedulerRun] = field(default_factory=dict)

    @property
    def winner(self) -> str:
        """The scheduler with the highest performance."""
        return max(self.runs.values(),
                   key=lambda r: r.performance).sched

    @property
    def diff_pct(self) -> float:
        """ULE's performance relative to CFS, percent (positive = ULE
        faster); only defined when both were compared."""
        return percent_diff(self.runs["ule"].performance,
                            self.runs["cfs"].performance)

    def summary(self) -> str:
        """One line per scheduler plus the verdict."""
        lines = []
        for run in self.runs.values():
            lines.append(
                f"{run.sched:<6} perf={run.performance:10.4f} ops/s  "
                f"switches={run.switches:<8.0f} "
                f"migrations={run.migrations:<6.0f} "
                f"overhead={run.overhead_pct:.2f}%")
        if {"cfs", "ule"} <= set(self.runs):
            lines.append(f"ULE is {self.diff_pct:+.1f}% vs CFS")
        return "\n".join(lines)


def compare_schedulers(workload_factory: Callable,
                       schedulers: Sequence[str] = ("cfs", "ule"),
                       ncpus: int = 32, seed: int = 1,
                       noise: bool = False,
                       ctx_switch_cost_ns: int = usec(15),
                       timeout_ns: int = sec(600),
                       scheduler_options: Optional[dict] = None,
                       ) -> ComparisonOutcome:
    """Run the same workload under each scheduler and compare.

    ``workload_factory`` is called once per scheduler (workloads are
    single-use).  ``scheduler_options`` maps scheduler name to extra
    constructor keywords, e.g. ``{"ule": {"pickcpu_scan_cost_ns":
    2000}}``.
    """
    from ..experiments.base import make_engine, run_workload

    options = scheduler_options or {}
    outcome = ComparisonOutcome()
    for sched in schedulers:
        engine = make_engine(sched, ncpus=ncpus, seed=seed,
                             ctx_switch_cost_ns=ctx_switch_cost_ns,
                             **options.get(sched, {}))
        if noise:
            from ..workloads.noise import KernelNoiseWorkload
            KernelNoiseWorkload().launch(engine, at=0)
        workload = workload_factory()
        run_workload(engine, workload, timeout_ns)
        busy = sum(c.busy_ns for c in engine.machine.cores)
        outcome.runs[sched] = SchedulerRun(
            sched=sched,
            performance=workload.performance(engine),
            simulated_ns=engine.now,
            switches=int(engine.metrics.counter("engine.switches")),
            migrations=int(engine.metrics.counter("engine.migrations")),
            preemptions=int(
                engine.metrics.counter("engine.preemptions")),
            overhead_pct=100.0 *
            engine.metrics.counter("sched.overhead_ns") / max(1, busy),
        )
    return outcome
