"""Runtime invariant sanitizer (the dynamic half of schedlint).

Enabled with ``REPRO_SANITIZE=1`` (or ``Engine(..., sanitize=True)`` /
``--sanitize`` on the CLI), the sanitizer re-validates cross-layer
scheduler invariants after *every* dispatched event:

* **thread/queue consistency** — each core's ``nr_runnable`` matches
  the actual runqueue contents and ``total_runnable`` matches the
  global sum; no thread sits on two runqueues or is double-enqueued on
  one; every queued thread is runnable and points back at its core.
* **tickless contract** — the engine's stopped-tick counter matches
  the per-core ``tick_stopped`` flags, and a parked core has no
  running thread and (absent a pending resched) no runnable work and
  ``needs_tick() == False``.
* **CFS** — rbtree ordering and leftmost cache, ``nr_running`` /
  ``load_weight`` / hierarchical ``h_nr_running`` bookkeeping, curr
  kept out of the tree, cached ``min_vruntime`` never moving
  backwards, and PELT averages staying in range with weights in sync.
* **ULE** — ``tdq.load`` equal to queued threads plus the running one,
  never negative; the ``_nr_loaded`` steal-threshold counter exact;
  the running thread never also marked queued; per-queue bitmap
  invariants; interactivity history never negative.

A violation raises :class:`~repro.core.errors.SanitizerError` with the
event/time/core context and the last N trace records.  The sanitizer
costs nothing when disabled: the engine's run loop checks one local
``None`` per event.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..core.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.machine import Core

#: absolute slack for float PELT range checks
_EPS = 1e-9


class Sanitizer:
    """Post-event invariant checker attached to one engine."""

    def __init__(self, engine: "Engine", trace_depth: int = 32):
        self.engine = engine
        self.trace_depth = trace_depth
        self.trace: deque = deque(maxlen=trace_depth)
        #: number of post-event validations performed
        self.checks_run = 0
        self._event_label = ""
        self._install_trace_hooks()
        # scheduler-specific checkers resolved once, up front
        self._check_cfs = None
        self._check_ule = None
        #: last observed min_vruntime per rq (rqs are slotted, so the
        #: monotonicity watermark lives here, keyed by id; rqs live for
        #: the whole run so ids are stable)
        self._min_vrun_seen: dict = {}
        self._resolve_scheduler()

    # ------------------------------------------------------------------
    # trace capture
    # ------------------------------------------------------------------

    def _install_trace_hooks(self) -> None:
        tracer = self.engine.tracer
        tracer.on_switch.append(self._trace_switch)
        tracer.on_wake.append(self._trace_wake)
        tracer.on_migrate.append(self._trace_migrate)
        tracer.on_exit.append(self._trace_exit)
        tracer.on_preempt.append(self._trace_preempt)
        tracer.on_fault.append(self._trace_fault)

    def _record(self, text: str) -> None:
        self.trace.append(f"t={self.engine.now}ns {text}")

    def _trace_switch(self, core, prev, nxt) -> None:
        prev_name = prev.name if prev else "idle"
        nxt_name = nxt.name if nxt else "idle"
        self._record(f"cpu{core.index} switch {prev_name} -> {nxt_name}")

    def _trace_wake(self, thread, cpu, waker) -> None:
        by = f" by {waker.name}" if waker else ""
        self._record(f"wake {thread.name} -> cpu{cpu}{by}")

    def _trace_migrate(self, thread, src, dst) -> None:
        self._record(f"migrate {thread.name} cpu{src} -> cpu{dst}")

    def _trace_exit(self, thread) -> None:
        self._record(f"exit {thread.name}")

    def _trace_preempt(self, core, preempted, by) -> None:
        self._record(f"cpu{core.index} preempt {preempted.name} "
                     f"by {by.name}")

    def _trace_fault(self, kind, detail) -> None:
        self._record(f"fault {kind} {detail}")

    # ------------------------------------------------------------------
    # failure reporting
    # ------------------------------------------------------------------

    def _fail(self, invariant: str, message: str,
              cpu: Optional[int] = None) -> None:
        raise SanitizerError(invariant, message,
                             time_ns=self.engine.now, cpu=cpu,
                             event=self._event_label,
                             trace=tuple(self.trace))

    # ------------------------------------------------------------------
    # scheduler resolution
    # ------------------------------------------------------------------

    def _resolve_scheduler(self) -> None:
        """Bind the CFS/ULE deep checks that apply to this engine."""
        from ..cfs.core import CfsScheduler
        from ..sched.classes import ClassStackScheduler
        from ..ule.core import UleScheduler

        sched = self.engine.scheduler
        if isinstance(sched, CfsScheduler):
            self._cfs = sched
            self._check_cfs = self._cfs_invariants
        elif isinstance(sched, ClassStackScheduler):
            self._cfs = sched.fair
            self._check_cfs = self._cfs_invariants
        if isinstance(sched, UleScheduler):
            self._ule = sched
            self._check_ule = self._ule_invariants

    # ------------------------------------------------------------------
    # the post-event hook
    # ------------------------------------------------------------------

    def after_event(self, event) -> None:
        """Validate every invariant; called by the engine run loop."""
        self._event_label = getattr(event, "label", "") or \
            getattr(event.callback, "__qualname__", "?")
        self.checks_run += 1
        self._thread_queue_invariants()
        self._tickless_invariants()
        self._offline_invariants()
        if self._check_cfs is not None:
            self._check_cfs()
        if self._check_ule is not None:
            self._check_ule()

    # ------------------------------------------------------------------
    # generic thread/queue invariants
    # ------------------------------------------------------------------

    def _thread_queue_invariants(self) -> None:
        engine = self.engine
        sched = engine.scheduler
        owner: dict = {}
        total = 0
        for core in engine.machine.cores:
            listed = list(sched.runnable_threads(core))
            tids = [t.tid for t in listed]
            if len(tids) != len(set(tids)):
                dup = sorted({t for t in tids if tids.count(t) > 1})
                self._fail("double-enqueue",
                           f"thread(s) tid={dup} appear more than once "
                           f"in cpu{core.index}'s runqueue",
                           cpu=core.index)
            for thread in listed:
                if thread.tid in owner:
                    self._fail("two-runqueues",
                               f"{thread.name} (tid={thread.tid}) is on "
                               f"cpu{owner[thread.tid]} and "
                               f"cpu{core.index} runqueues at once",
                               cpu=core.index)
                owner[thread.tid] = core.index
                if not thread.is_runnable:
                    self._fail("queued-not-runnable",
                               f"{thread.name} is queued on "
                               f"cpu{core.index} but in state "
                               f"{thread.state.value}", cpu=core.index)
                if thread.rq_cpu != core.index:
                    self._fail("rq-cpu-mismatch",
                               f"{thread.name} queued on "
                               f"cpu{core.index} but rq_cpu="
                               f"{thread.rq_cpu}", cpu=core.index)
            nr = sched.nr_runnable(core)
            if nr != len(listed):
                self._fail("nr-runnable",
                           f"cpu{core.index}: nr_runnable()={nr} but "
                           f"the runqueue holds {len(listed)} "
                           f"thread(s)", cpu=core.index)
            current = core.current
            if current is not None:
                if not current.is_running:
                    self._fail("current-state",
                               f"cpu{core.index}.current={current.name} "
                               f"in state {current.state.value}, "
                               f"expected running", cpu=core.index)
                if current.cpu != core.index:
                    self._fail("current-cpu",
                               f"cpu{core.index}.current={current.name} "
                               f"says thread.cpu={current.cpu}",
                               cpu=core.index)
            total += len(listed)
        grand = sched.total_runnable()
        if grand != total:
            self._fail("total-runnable",
                       f"total_runnable()={grand} but per-core "
                       f"runqueues hold {total} thread(s)")

    # ------------------------------------------------------------------
    # tickless contract
    # ------------------------------------------------------------------

    def _tickless_invariants(self) -> None:
        engine = self.engine
        sched = engine.scheduler
        stopped = [c for c in engine.machine.cores if c.tick_stopped]
        if engine._nr_stopped_ticks != len(stopped):
            self._fail("tick-counter",
                       f"engine._nr_stopped_ticks="
                       f"{engine._nr_stopped_ticks} but "
                       f"{len(stopped)} core(s) have tick_stopped set")
        for core in stopped:
            if core.current is not None:
                self._fail("parked-running",
                           f"cpu{core.index} has its tick parked while "
                           f"running {core.current.name}",
                           cpu=core.index)
            # An enqueue onto a parked core legitimately leaves work
            # (and possibly needs_tick()==True) visible until its
            # same-instant resched dispatches; only a parked core with
            # NO pending resched must be quiescent.
            if core.resched_event is not None:
                continue
            if sched.needs_tick(core):
                self._fail("parked-needs-tick",
                           f"cpu{core.index} is parked but "
                           f"needs_tick() is True with no resched "
                           f"pending", cpu=core.index)
            nr = sched.nr_runnable(core)
            if nr:
                self._fail("parked-runnable",
                           f"cpu{core.index} is parked with {nr} "
                           f"runnable thread(s) and no resched "
                           f"pending", cpu=core.index)

    # ------------------------------------------------------------------
    # hotplug (fault-injection) contract
    # ------------------------------------------------------------------

    def _offline_invariants(self) -> None:
        """No thread may ever be left on a dead core: an offlined core
        runs nothing, queues nothing, and is never tick-parked (its
        tick is cancelled outright, not NO_HZ-stopped).  Work
        conservation therefore holds modulo the declared faults — the
        drained threads are queued (and counted) on online cores."""
        engine = self.engine
        sched = engine.scheduler
        for core in engine.machine.cores:
            if core.online:
                continue
            if core.current is not None:
                self._fail("offline-running",
                           f"cpu{core.index} is offline but runs "
                           f"{core.current.name}", cpu=core.index)
            nr = sched.nr_runnable(core)
            if nr:
                self._fail("offline-runnable",
                           f"cpu{core.index} is offline with {nr} "
                           f"runnable thread(s) left on its runqueue",
                           cpu=core.index)
            if core.tick_stopped:
                self._fail("offline-tick-parked",
                           f"cpu{core.index} is offline but counted "
                           f"as NO_HZ-parked", cpu=core.index)
            if core.resched_event is not None:
                self._fail("offline-resched",
                           f"cpu{core.index} is offline with a "
                           f"pending resched IPI", cpu=core.index)

    # ------------------------------------------------------------------
    # CFS invariants
    # ------------------------------------------------------------------

    def _cfs_invariants(self) -> None:
        fair = self._cfs
        for core in self.engine.machine.cores:
            stack = [fair.cpurq(core).root]
            while stack:
                rq = stack.pop()
                self._cfs_rq_invariants(rq, core)
                entities = [se for _, se in rq.tree.items()]
                if rq.curr is not None:
                    entities.append(rq.curr)
                for se in entities:
                    if not se.is_task and se.my_rq is not None:
                        stack.append(se.my_rq)

    def _cfs_rq_invariants(self, rq, core: "Core") -> None:
        cpu = core.index
        tree = rq.tree
        # explicit ordering walk: keys strictly increasing, leftmost
        # cache correct, node count consistent
        keys = [key for key, _ in tree.items()]
        if len(keys) != len(tree):
            self._fail("rbtree-count",
                       f"cpu{cpu} rq walk yields {len(keys)} nodes, "
                       f"len(tree)={len(tree)}", cpu=cpu)
        if any(a >= b for a, b in zip(keys, keys[1:])):
            self._fail("rbtree-order",
                       f"cpu{cpu} rq timeline keys are not strictly "
                       f"increasing: {keys}", cpu=cpu)
        if keys and tree.min_key() != keys[0]:
            self._fail("rbtree-leftmost",
                       f"cpu{cpu} rq cached leftmost {tree.min_key()} "
                       f"!= smallest key {keys[0]}", cpu=cpu)
        try:
            tree.check_invariants()
        except AssertionError as exc:
            self._fail("rbtree-structure",
                       f"cpu{cpu} rq red-black structure violated: "
                       f"{exc}", cpu=cpu)
        nr_curr = 1 if rq.curr is not None else 0
        if rq.nr_running != len(tree) + nr_curr:
            self._fail("cfs-nr-running",
                       f"cpu{cpu} rq nr_running={rq.nr_running} but "
                       f"tree holds {len(tree)} + curr {nr_curr}",
                       cpu=cpu)
        if rq.curr is not None and rq.curr.key in tree:
            self._fail("cfs-curr-queued",
                       f"cpu{cpu} rq curr {rq.curr} is also in the "
                       f"timeline tree", cpu=cpu)
        entities = [se for _, se in tree.items()]
        if rq.curr is not None:
            entities.append(rq.curr)
        weight = sum(se.weight for se in entities)
        if rq.load_weight != weight:
            self._fail("cfs-load-weight",
                       f"cpu{cpu} rq load_weight={rq.load_weight} but "
                       f"entities sum to {weight}", cpu=cpu)
        h_nr = sum(1 if se.is_task else se.my_rq.h_nr_running
                   for se in entities)
        if rq.h_nr_running != h_nr:
            self._fail("cfs-h-nr-running",
                       f"cpu{cpu} rq h_nr_running={rq.h_nr_running} "
                       f"but children sum to {h_nr}", cpu=cpu)
        prev_min = self._min_vrun_seen.get(id(rq))
        if prev_min is not None and rq.min_vruntime < prev_min:
            self._fail("cfs-min-vruntime",
                       f"cpu{cpu} rq min_vruntime moved backwards: "
                       f"{prev_min} -> {rq.min_vruntime}", cpu=cpu)
        self._min_vrun_seen[id(rq)] = rq.min_vruntime
        for se in entities:
            if se.weight <= 0:
                self._fail("pelt-weight",
                           f"cpu{cpu} entity {se} has non-positive "
                           f"weight {se.weight}", cpu=cpu)
            if se.avg.weight != se.weight:
                self._fail("pelt-weight",
                           f"cpu{cpu} entity {se} weight {se.weight} "
                           f"out of sync with avg.weight "
                           f"{se.avg.weight}", cpu=cpu)
            if not (-_EPS <= se.avg.util_avg <= 1.0 + _EPS):
                self._fail("pelt-range",
                           f"cpu{cpu} entity {se} util_avg="
                           f"{se.avg.util_avg} outside [0, 1]",
                           cpu=cpu)

    # ------------------------------------------------------------------
    # ULE invariants
    # ------------------------------------------------------------------

    def _ule_invariants(self) -> None:
        ule = self._ule
        loaded = 0
        for core in self.engine.machine.cores:
            tdq = core.rq
            cpu = core.index
            if tdq.load < 0:
                self._fail("ule-load",
                           f"cpu{cpu} tdq.load={tdq.load} is negative",
                           cpu=cpu)
            expected = tdq.nr_queued() + \
                (1 if core.current is not None else 0)
            if tdq.load != expected:
                self._fail("ule-load",
                           f"cpu{cpu} tdq.load={tdq.load} but "
                           f"{tdq.nr_queued()} queued + "
                           f"{1 if core.current else 0} running = "
                           f"{expected}", cpu=cpu)
            if tdq.load >= ule.tunables.steal_thresh:
                loaded += 1
            current = core.current
            if current is not None and ule.state_of(current).queued:
                self._fail("ule-running-queued",
                           f"cpu{cpu} running thread {current.name} "
                           f"still has queued=True", cpu=cpu)
            for thread in tdq.queued_threads():
                state = ule.state_of(thread)
                if not state.queued:
                    self._fail("ule-queued-flag",
                               f"cpu{cpu} {thread.name} is in the tdq "
                               f"but queued=False", cpu=cpu)
                hist = state.hist
                if hist.runtime < 0 or hist.sleeptime < 0:
                    self._fail("ule-history",
                               f"cpu{cpu} {thread.name} interactivity "
                               f"history negative (r={hist.runtime}, "
                               f"s={hist.sleeptime})", cpu=cpu)
            try:
                tdq.realtime.check_invariants()
                tdq.timeshare.check_invariants()
            except AssertionError as exc:
                self._fail("ule-runq-structure",
                           f"cpu{cpu} runqueue bitmap/deque invariant "
                           f"violated: {exc}", cpu=cpu)
        if loaded != ule._nr_loaded:
            self._fail("ule-nr-loaded",
                       f"_nr_loaded={ule._nr_loaded} but {loaded} "
                       f"tdq(s) are at/above steal_thresh="
                       f"{ule.tunables.steal_thresh}")
