"""Result analysis: statistics, fairness metrics, convergence
detection, and text reporting."""

from .compare import (ComparisonOutcome, SchedulerRun,
                      compare_schedulers)
from .convergence import (balance_predicate, current_counts, final_spread,
                          is_balanced, time_to_balance)
from .fairness import (jain_index, max_min_ratio, runtime_fairness,
                       starvation_count)
from .distributions import (log_histogram, percentile_row,
                            render_histogram)
from .report import render_bar_chart, render_table
from .stats import (confidence_interval95, geomean, mean, percent_diff,
                    stdev)

__all__ = [
    "mean", "stdev", "geomean", "confidence_interval95", "percent_diff",
    "jain_index", "runtime_fairness", "starvation_count", "max_min_ratio",
    "is_balanced", "current_counts", "balance_predicate",
    "time_to_balance", "final_spread",
    "render_table", "render_bar_chart",
    "log_histogram", "render_histogram", "percentile_row",
    "compare_schedulers", "ComparisonOutcome", "SchedulerRun",
]
