"""Small statistics helpers for experiment results."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def confidence_interval95(values: Sequence[float]) -> tuple[float, float]:
    """Normal-approximation 95 % CI of the mean."""
    mu = mean(values)
    if len(values) < 2:
        return (mu, mu)
    half = 1.96 * stdev(values) / math.sqrt(len(values))
    return (mu - half, mu + half)


def percent_diff(new: float, base: float) -> float:
    """The paper's bar metric: % performance difference w.r.t. CFS
    (positive = ULE faster)."""
    if base == 0:
        raise ValueError("baseline performance is zero")
    return (new - base) / base * 100.0
