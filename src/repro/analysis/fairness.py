"""Fairness metrics over thread runtimes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.thread import SimThread


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one thread
    gets everything."""
    if not values:
        raise ValueError("jain index of empty sequence")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def runtime_fairness(threads: Sequence["SimThread"]) -> float:
    """Jain index over total runtimes of a thread set."""
    return jain_index([t.total_runtime for t in threads])


def starvation_count(threads: Sequence["SimThread"],
                     threshold_ns: int = 0) -> int:
    """How many threads accumulated <= ``threshold_ns`` of runtime."""
    return sum(1 for t in threads if t.total_runtime <= threshold_ns)


def max_min_ratio(values: Sequence[float]) -> float:
    """max/min runtime ratio (inf when something fully starved)."""
    if not values:
        raise ValueError("ratio of empty sequence")
    lo = min(values)
    hi = max(values)
    if lo == 0:
        return float("inf") if hi > 0 else 1.0
    return hi / lo
