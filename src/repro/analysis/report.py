"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table.

    Numbers are right-aligned and formatted compactly; everything else
    is left-aligned.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000 or abs(cell) < 0.01:
                return f"{cell:.3g}"
            return f"{cell:.2f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells, original=None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            raw = original[i] if original is not None else None
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for original, row in zip(rows, str_rows):
        lines.append(render_row(row, original))
    return "\n".join(lines)


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     width: int = 40, title: Optional[str] = None,
                     unit: str = "%") -> str:
    """Horizontal bar chart with a zero axis (the Fig. 5/8 style)."""
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    span = max(1e-9, max(abs(v) for v in values))
    half = width // 2
    label_w = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        length = int(abs(value) / span * half)
        if value >= 0:
            bar = " " * half + "|" + "#" * length
        else:
            bar = " " * (half - length) + "#" * length + "|"
        lines.append(f"{label:<{label_w}} {bar:<{width + 1}} "
                     f"{value:+7.1f}{unit}")
    return "\n".join(lines)
