"""schedlint: determinism & contract static analysis for the simulator.

Run it over the tree::

    python -m repro.analysis.lint            # lints src/repro/
    python -m repro.analysis.lint PATH...    # lints specific trees
    make lint                                # repo shortcut

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage or
internal error.  ``--json FILE`` additionally writes the machine-
readable report.  Suppress a finding in place with
``# schedlint: ignore[rule] -- reason``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .contract import (CONTRACT_HOOKS, LINUX_TO_METHOD, REQUIRED_HOOKS,
                       check_contracts, check_freebsd_api,
                       check_sched_class, registered_sched_classes)
from .findings import (Finding, is_suppressed, report_dict,
                       suppressions_in, write_report)
from .rules import (DEFAULT_ALLOWLIST, RULES, WALL_CLOCK_CALLS,
                    iter_python_files, lint_paths, lint_source)

__all__ = [
    "CONTRACT_HOOKS", "DEFAULT_ALLOWLIST", "Finding",
    "LINUX_TO_METHOD", "REQUIRED_HOOKS", "RULES", "WALL_CLOCK_CALLS",
    "check_contracts", "check_freebsd_api", "check_sched_class",
    "is_suppressed", "iter_python_files", "lint_paths", "lint_source",
    "main", "registered_sched_classes", "report_dict",
    "suppressions_in", "write_report",
]

#: contract rules are not per-line AST rules but appear in reports
CONTRACT_RULES = {
    "contract-missing-hook":
        "a registered SchedClass subclass does not override a "
        "required Table 1 hook",
    "contract-signature":
        "an overridden hook's parameters diverge from sched/base.py",
    "contract-name":
        "a registered SchedClass subclass does not set 'name'",
    "freebsd-api-missing":
        "a Table 1 FreeBSD entry point is missing from the adapter",
    "freebsd-api-unmapped":
        "an adapter sched_* method has no Table 1 row",
    "freebsd-api-mapping":
        "a FreeBSD entry point forwards to the wrong (or more than "
        "one) Linux hook",
}


def _default_target() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def main(argv: Optional[List[str]] = None) -> int:
    """schedlint CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="determinism/contract static analysis for the "
                    "scheduler simulator")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or trees to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write a machine-readable report")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids")
    parser.add_argument("--no-contract", action="store_true",
                        help="skip SchedClass/FreeBSD-API contract "
                             "checks (pure AST lint only)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in sorted({**RULES, **CONTRACT_RULES}.items()):
            print(f"{rule:<22} {doc}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules
                   if r not in RULES and r not in CONTRACT_RULES]
        if unknown:
            print(f"schedlint: unknown rule(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = args.paths or [_default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"schedlint: no such path: {path}", file=sys.stderr)
            return 2

    try:
        ast_rules = None if rules is None else \
            [r for r in rules if r in RULES]
        findings = lint_paths(paths, rules=ast_rules)
        if not args.no_contract:
            contract = check_contracts() + check_freebsd_api()
            if rules is not None:
                contract = [f for f in contract if f.rule in rules]
            findings = sorted(findings + contract)
    except Exception as exc:  # noqa: BLE001 - report, exit 2
        print(f"schedlint: internal error: {exc!r}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.format())
    if args.json:
        enabled = rules if rules is not None else \
            sorted({**RULES, **CONTRACT_RULES})
        write_report(args.json,
                     report_dict(findings, paths, enabled))
    if findings:
        print(f"schedlint: {len(findings)} finding(s) in "
              f"{len(paths)} path(s)", file=sys.stderr)
        return 1
    print(f"schedlint: clean "
          f"({len(iter_python_files(paths))} files checked)")
    return 0
