"""schedlint: determinism & contract static analysis for the simulator.

Run it over the tree::

    python -m repro.analysis.lint            # lints src/repro/
    python -m repro.analysis.lint PATH...    # lints specific trees
    make lint                                # repo shortcut

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage or
internal error.  ``--json FILE`` additionally writes the machine-
readable report; ``--sarif FILE`` writes a SARIF 2.1.0 log.  Suppress
a finding in place with ``# schedlint: ignore[rule] -- reason``.

``--dataflow`` enables the flow-aware tier (interprocedural
determinism taint, fast-path parity, cross-process atomicity) in
place of the three syntactic rules it subsumes.  ``--baseline FILE``
accepts the findings recorded in the baseline and fails only on new
ones; ``--update-baseline`` rewrites the baseline to the current
findings instead of failing.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .contract import (CONTRACT_HOOKS, LINUX_TO_METHOD, REQUIRED_HOOKS,
                       check_contracts, check_freebsd_api,
                       check_sched_class, registered_sched_classes)
from .findings import (Finding, is_suppressed, report_dict,
                       suppressions_in, write_report)
from .rules import (DATAFLOW_RULES, DEFAULT_ALLOWLIST, RULES,
                    WALL_CLOCK_CALLS, effective_rules,
                    iter_python_files, lint_paths, lint_source)

__all__ = [
    "CONTRACT_HOOKS", "DATAFLOW_RULES", "DEFAULT_ALLOWLIST", "Finding",
    "LINUX_TO_METHOD", "REQUIRED_HOOKS", "RULES", "WALL_CLOCK_CALLS",
    "check_contracts", "check_freebsd_api", "check_sched_class",
    "effective_rules", "is_suppressed", "iter_python_files",
    "lint_paths", "lint_source", "main", "registered_sched_classes",
    "report_dict", "suppressions_in", "write_report",
]

#: contract rules are not per-line AST rules but appear in reports
CONTRACT_RULES = {
    "contract-missing-hook":
        "a registered SchedClass subclass does not override a "
        "required Table 1 hook",
    "contract-signature":
        "an overridden hook's parameters diverge from sched/base.py",
    "contract-name":
        "a registered SchedClass subclass does not set 'name'",
    "freebsd-api-missing":
        "a Table 1 FreeBSD entry point is missing from the adapter",
    "freebsd-api-unmapped":
        "an adapter sched_* method has no Table 1 row",
    "freebsd-api-mapping":
        "a FreeBSD entry point forwards to the wrong (or more than "
        "one) Linux hook",
}


def _default_target() -> str:
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def main(argv: Optional[List[str]] = None) -> int:
    """schedlint CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="determinism/contract static analysis for the "
                    "scheduler simulator")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or trees to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write a machine-readable report")
    parser.add_argument("--sarif", metavar="FILE", default=None,
                        help="also write a SARIF 2.1.0 log")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rule ids")
    parser.add_argument("--dataflow", action="store_true",
                        help="enable the flow-aware tier (taint, "
                             "parity, atomicity rules)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accept findings recorded in this "
                             "baseline; fail only on new ones")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline to the current "
                             "findings instead of failing")
    parser.add_argument("--no-contract", action="store_true",
                        help="skip SchedClass/FreeBSD-API contract "
                             "checks (pure AST lint only)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    catalog = {**RULES, **DATAFLOW_RULES, **CONTRACT_RULES}
    if args.list_rules:
        for rule, doc in sorted(catalog.items()):
            print(f"{rule:<22} {doc}")
        return 0
    if args.update_baseline and args.baseline is None:
        print("schedlint: --update-baseline requires --baseline",
              file=sys.stderr)
        return 2

    rules = None
    if args.rules is not None:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in catalog]
        if unknown:
            print(f"schedlint: unknown rule(s): "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = args.paths or [_default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"schedlint: no such path: {path}", file=sys.stderr)
            return 2

    try:
        ast_rules = None if rules is None else \
            [r for r in rules if r not in CONTRACT_RULES]
        findings = lint_paths(paths, rules=ast_rules,
                              dataflow=args.dataflow)
        if not args.no_contract:
            contract = check_contracts() + check_freebsd_api()
            if rules is not None:
                contract = [f for f in contract if f.rule in rules]
            findings = sorted(findings + contract)
    except Exception as exc:  # noqa: BLE001 - report, exit 2
        print(f"schedlint: internal error: {exc!r}", file=sys.stderr)
        return 2

    stale = []
    if args.baseline is not None:
        from .dataflow.baseline import (apply_baseline, load_baseline,
                                        write_baseline)
        if args.update_baseline:
            count = write_baseline(args.baseline, findings)
            print(f"schedlint: baseline updated "
                  f"({count} entries in {args.baseline})")
            return 0
        findings, stale = apply_baseline(findings,
                                         load_baseline(args.baseline))

    enabled = sorted(rules) if rules is not None else sorted(
        set(effective_rules(None, args.dataflow)) | set(CONTRACT_RULES))
    for finding in findings:
        print(finding.format())
    for path, rule, message in stale:
        print(f"schedlint: stale baseline entry: "
              f"{path}: {rule}: {message}", file=sys.stderr)
    if args.json:
        write_report(args.json, report_dict(findings, paths, enabled))
    if args.sarif:
        from .dataflow.sarif import write_sarif
        write_sarif(args.sarif, findings,
                    {r: catalog[r] for r in enabled if r in catalog})
    if findings:
        print(f"schedlint: {len(findings)} finding(s) in "
              f"{len(paths)} path(s)", file=sys.stderr)
        return 1
    print(f"schedlint: clean "
          f"({len(iter_python_files(paths))} files checked)")
    return 0
