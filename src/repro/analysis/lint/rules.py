"""The schedlint determinism rules (stdlib ``ast`` only).

Every rule guards the simulator's central fidelity claim: a run is a
pure function of (workload, scheduler, seed).  Wall-clock reads,
process-global RNG state, ``id()``-keyed ordering and bare-``set``
iteration all leak host nondeterminism into the schedule; float
arithmetic on the integer-nanosecond clock trades exactness for
rounding that differs across platforms.

Rules
-----
``wall-clock``
    Call to ``time.time()`` / ``time.monotonic()`` /
    ``datetime.datetime.now()`` and friends.  Simulation code must use
    ``engine.now`` (virtual time).
``unseeded-random``
    Call into the process-global ``random`` module.  Use
    ``repro.core.rng.RandomSource`` streams (or an explicit
    ``random.Random(seed)`` instance, which is allowed).
``id-ordering``
    ``id()`` used as a sort/min/max key or as a set/dict-comprehension
    element: CPython ``id``s are allocation addresses and vary run to
    run, so any ordering or dedup built on them is nondeterministic.
``set-iteration``
    Iterating directly over a ``set`` literal / comprehension /
    ``set(...)`` call: set iteration order depends on insertion and
    hash randomization for str keys.  Sort first, or use a list/dict.
``float-ns-clock``
    Division involving an integer-nanosecond quantity (name matching
    ``*_ns``/``*nsec``/``now``), or ``float()`` applied to one.  Clock
    arithmetic must stay integral; convert to seconds only at the
    presentation layer.
``missing-slots``
    A class defined in a hot-path package (``repro/core``,
    ``repro/cfs``, ``repro/ule``, ``repro/sync``) without a
    ``__slots__`` declaration: every instance then carries a
    ``__dict__`` the engine loop allocates and hashes through
    millions of times per simulated second.  Exception/enum/Protocol
    subclasses and ``@dataclass``-decorated classes are exempt; a
    deliberately dict-backed class takes the usual
    ``# schedlint: ignore[missing-slots] -- reason`` marker or an
    allowlist entry.
``hot-loop-attr``
    A per-iteration ``self.<field>`` / ``engine.<field>`` load inside
    a loop in a ``run``-named function, where the field is one the
    engine binds once at construction (``events``, ``profiler``,
    ``scheduler``, ...).  Attribute lookup costs a dict probe per
    event; the run loops hoist these to locals before the loop, and
    this rule keeps new loop code from regressing that.  Loads in a
    ``for`` statement's iterable are evaluated once and exempt; a
    deliberate re-read (e.g. a field rebound mid-loop) takes the
    usual suppression marker.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import (Finding, UNUSED_SUPPRESSION, apply_markers,
                       is_suppressed, markers_in, suppressions_in)

#: rule id -> one-line description (the ``--list-rules`` catalog)
RULES: Dict[str, str] = {
    "wall-clock":
        "wall-clock read (time.time/monotonic/perf_counter, "
        "datetime.now) in simulation code; use engine.now",
    "unseeded-random":
        "process-global random.* call; use repro.core.rng streams "
        "or an explicit random.Random(seed)",
    "id-ordering":
        "id() used as an ordering key or set/dict element; ids are "
        "allocation addresses and vary run to run",
    "set-iteration":
        "iteration over a bare set; order depends on hash "
        "randomization — sort first or use a list/dict",
    "float-ns-clock":
        "float arithmetic on the integer-ns clock; keep clock math "
        "integral, convert to seconds only for presentation",
    "missing-slots":
        "hot-path class without __slots__; per-instance dicts cost "
        "the engine loop allocation and lookup time",
    "hot-loop-attr":
        "per-event lookup of a construction-bound engine field "
        "inside a run() loop; hoist it to a local before the loop",
}

#: the ``--dataflow`` tier rules (CFG + fixed-point analysis; see
#: the ``dataflow`` package).  The taint rules are the flow-aware
#: replacements for the three syntactic rules in
#: :data:`REPLACED_BY_DATAFLOW`.
DATAFLOW_RULES: Dict[str, str] = {
    "taint-wall-clock":
        "a host-clock read flows into an event timestamp, sort key, "
        "digest input, or RNG seed (tracked through locals, "
        "containers, and helper functions)",
    "taint-random":
        "a process-global random value flows into a "
        "schedule-affecting sink",
    "taint-env":
        "an environment read (os.environ, pid, hostname) flows into "
        "a schedule-affecting sink",
    "taint-id-order":
        "an id() value flows into an ordering sink; ids are "
        "allocation addresses and vary run to run",
    "taint-set-order":
        "set-iteration or directory-listing order flows into a "
        "schedule-affecting sink (sorted() sanitizes it)",
    "fastpath-parity":
        "_run_fast and _run_instrumented diverge after normalization; "
        "the loops must stay behaviorally identical",
    "tickhook-parity":
        "a fused make_tick_hook closure is missing an accounting/"
        "parking statement from the generic Engine tick chain",
    "nonatomic-write":
        "a file write in experiments/ bypasses the tmp-write+rename "
        "idiom in repro.core.artifacts",
    "cache-rmw":
        "read-modify-write of a shared cache path without a "
        "generation/fingerprint check",
    UNUSED_SUPPRESSION:
        "a schedlint suppression marker that suppressed nothing "
        "(all rules it names were enabled in this run)",
}

#: syntactic rules the dataflow tier replaces with flow-aware versions
REPLACED_BY_DATAFLOW: Tuple[str, ...] = (
    "wall-clock", "unseeded-random", "id-ordering",
)

#: dataflow rules reported per-file by lint_source
_TAINT_RULES = ("taint-wall-clock", "taint-random", "taint-env",
                "taint-id-order", "taint-set-order")
_ATOMICITY_RULES = ("nonatomic-write", "cache-rmw")
#: dataflow rules computed across the whole file set by lint_paths
_PARITY_RULES = ("fastpath-parity", "tickhook-parity")


def effective_rules(rules: Optional[Sequence[str]],
                    dataflow: bool) -> Tuple[str, ...]:
    """The rule set a run enables.

    With ``--dataflow`` and no explicit ``--rules``, the three
    syntactic rules that have flow-aware replacements are dropped and
    the dataflow rules added; their existing per-line suppressions
    (which name the *disabled* rules) are deliberately not flagged as
    unused, so one tree stays clean under both tiers.
    """
    if rules is not None:
        return tuple(rules)
    if not dataflow:
        return tuple(RULES)
    return tuple(r for r in RULES if r not in REPLACED_BY_DATAFLOW) \
        + tuple(DATAFLOW_RULES)

#: packages whose classes live on the engine's per-event hot path —
#: the only places the missing-slots rule applies
HOT_PATH_DIRS: Tuple[str, ...] = (
    "repro/core/", "repro/cfs/", "repro/ule/", "repro/sync/",
)

#: base-class names that make __slots__ pointless or harmful:
#: exceptions carry traceback state, enums are class-level singletons,
#: Protocol/ABC are never instantiated on the hot path
_SLOTS_EXEMPT_BASES = frozenset({
    "Exception", "BaseException", "Warning", "Enum", "IntEnum",
    "Flag", "IntFlag", "StrEnum", "Protocol", "NamedTuple", "ABC",
    "TypedDict",
})

#: wall-clock entry points, fully qualified
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: paths (posix-suffix matched) where a rule is expected and allowed
DEFAULT_ALLOWLIST: Dict[str, Tuple[str, ...]] = {
    # clock.py IS the presentation-layer ns->seconds converter
    "float-ns-clock": ("repro/core/clock.py",),
    # rng.py wraps random.Random behind seeded named streams;
    # faults/plan.py derives fault plans from an explicit
    # random.Random(f"repro.faults.plan:{seed}") stream — the fault
    # RNG is seeded and private, never the process-global state
    "unseeded-random": ("repro/core/rng.py", "repro/faults/plan.py"),
    # the checkpoint journal appends one flushed line per finished
    # cell ON PURPOSE (O(1) put); a torn tail is recovered — each
    # line carries a sha256 and load() skips+compacts corrupt lines
    "nonatomic-write": ("repro/experiments/checkpoint.py",),
    # host-side process orchestration, not simulation: lease
    # heartbeat deadlines and SIGKILL/waitpid loops time *real*
    # processes — there is no engine.now to use
    "wall-clock": ("repro/experiments/shard.py",
                   "repro/faults/__main__.py"),
}

_CLOCKISH_RE = re.compile(r"(^|_)(ns|nsec)$", re.IGNORECASE)
_CLOCKISH_NAMES = frozenset({"now", "time_ns"})

#: engine fields bound once at construction and never rebound — a
#: per-iteration ``self.X``/``engine.X`` read of one of these inside
#: a run loop is a dict probe the loop pays per event for nothing.
#: Mutable per-event state (``now``, ``live_threads``, ``_stopped``,
#: ``events_processed``) is deliberately NOT here.
_HOISTABLE_FIELDS = frozenset({
    "events", "profiler", "sanitizer", "scheduler", "machine",
    "tracer", "faults", "tunables", "topology",
})

#: receiver names the hot-loop-attr rule watches
_HOISTABLE_BASES = frozenset({"self", "engine"})


def _is_run_name(name: str) -> bool:
    """Does ``name`` denote a run-loop function (``run``, ``run_*``,
    ``_run*``)?"""
    return name == "run" or name.startswith("run_") \
        or name.startswith("_run")


def _identifier(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_clockish(node: ast.AST) -> bool:
    """Heuristic: does this expression denote an integer-ns time?"""
    name = _identifier(node)
    if name is None:
        return False
    return bool(_CLOCKISH_RE.search(name)) or name in _CLOCKISH_NAMES


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting findings for all enabled rules."""

    def __init__(self, path: str, rules: Sequence[str]):
        self.path = path
        self.rules = frozenset(rules)
        self.findings: List[Finding] = []
        #: local name -> fully qualified module/attr it refers to
        self.imports: Dict[str, str] = {}
        #: per-enclosing-function state for hot-loop-attr: is the
        #: function run-named, and how many loops deep are we in it
        self._run_func: List[bool] = []
        self._loop_depth: List[int] = []

    # -- helpers -------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.rules:
            return
        self.findings.append(Finding(
            path=self.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), rule=rule,
            message=message))

    def _qualified(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the import table.

        Only resolves when the base name was imported — attribute
        access on local objects (``self.time`` etc.) never matches.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    # -- import table --------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            qualified = alias.asname and alias.name or \
                alias.name.split(".")[0]
            self.imports[local] = qualified
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.imports[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- missing-slots -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._on_hot_path() and not _has_slots(node) \
                and not _slots_exempt(node):
            self._emit(node, "missing-slots",
                       f"class {node.name} has no __slots__; "
                       f"hot-path instances should not carry a "
                       f"__dict__ (add __slots__, or suppress with "
                       f"a reason if dict-backed on purpose)")
        self.generic_visit(node)

    def _on_hot_path(self) -> bool:
        posix = self.path.replace(os.sep, "/")
        return any(f"/{d}" in posix or posix.startswith(d)
                   for d in HOT_PATH_DIRS)

    # -- wall-clock / unseeded-random ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_float_cast(node)
        qualified = self._qualified(node.func)
        if qualified is not None:
            if qualified in WALL_CLOCK_CALLS:
                self._emit(node, "wall-clock",
                           f"call to {qualified}(); simulation code "
                           f"must use engine.now")
            elif (qualified.startswith("random.")
                    and qualified != "random.Random"):
                self._emit(node, "unseeded-random",
                           f"call to {qualified}() uses process-global "
                           f"RNG state; use repro.core.rng streams")
        # id() as an explicit key= argument to sorted/min/max
        func_name = node.func.id if isinstance(node.func, ast.Name) \
            else None
        if func_name in ("sorted", "min", "max"):
            for kw in node.keywords:
                if kw.arg == "key" and self._is_id_key(kw.value):
                    self._emit(kw.value, "id-ordering",
                               f"id() used as {func_name}() key; ids "
                               f"vary run to run — key on a stable "
                               f"field (e.g. .tid)")
        # set(...)/frozenset(...) handled at iteration sites
        self.generic_visit(node)

    @staticmethod
    def _is_id_key(node: ast.AST) -> bool:
        """``key=id`` or ``key=lambda t: id(t)`` (possibly in a tuple)."""
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            return _contains_id_call(node.body)
        return False

    # -- id-ordering in set/dict construction --------------------------

    def visit_Set(self, node: ast.Set) -> None:
        for elt in node.elts:
            if _contains_id_call(elt):
                self._emit(elt, "id-ordering",
                           "id() as a set element; dedup by a stable "
                           "field (e.g. .tid) instead")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        if _contains_id_call(node.elt):
            self._emit(node.elt, "id-ordering",
                       "id() as a set-comprehension element; dedup by "
                       "a stable field (e.g. .tid) instead")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if _contains_id_call(node.key):
            self._emit(node.key, "id-ordering",
                       "id() as a dict-comprehension key; key on a "
                       "stable field (e.g. .tid) instead")
        self.generic_visit(node)

    # -- set-iteration -------------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self._emit(iter_node, "set-iteration",
                       "iterating over a set literal/comprehension; "
                       "order is hash-dependent — sort first")
        elif (isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in ("set", "frozenset")):
            self._emit(iter_node, "set-iteration",
                       f"iterating over {iter_node.func.id}(...); "
                       f"order is hash-dependent — sort first")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        # the iterable is evaluated once, before the first iteration —
        # visit it (and the target) outside the loop-depth window
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_loop_body(node.body + node.orelse)

    # async drain loops pay the same per-iteration probes; without
    # this alias their bodies were visited at loop depth 0 and
    # hot-loop-attr never fired inside them
    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- hot-loop-attr -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._run_func.append(_is_run_name(node.name))
        self._loop_depth.append(0)
        self.generic_visit(node)
        self._run_func.pop()
        self._loop_depth.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_While(self, node: ast.While) -> None:
        # the condition re-evaluates every iteration: include it
        self._visit_loop_body([node.test] + node.body + node.orelse)

    def _visit_loop_body(self, nodes: Sequence[ast.AST]) -> None:
        if self._loop_depth:
            self._loop_depth[-1] += 1
        for child in nodes:
            self.visit(child)
        if self._loop_depth:
            self._loop_depth[-1] -= 1

    @staticmethod
    def _hoistable_receiver(node: ast.AST) -> Optional[str]:
        """``self`` / ``engine`` / ``self.engine`` receivers — the
        chained form reads two dict probes per iteration, not one."""
        if isinstance(node, ast.Name) and node.id in _HOISTABLE_BASES:
            return node.id
        if (isinstance(node, ast.Attribute)
                and node.attr == "engine"
                and isinstance(node.value, ast.Name)
                and node.value.id in _HOISTABLE_BASES):
            return f"{node.value.id}.engine"
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        receiver = self._hoistable_receiver(node.value)
        if (self._run_func and self._run_func[-1]
                and self._loop_depth[-1] > 0
                and isinstance(node.ctx, ast.Load)
                and receiver is not None
                and node.attr in _HOISTABLE_FIELDS):
            self._emit(node, "hot-loop-attr",
                       f"{receiver}.{node.attr} read per "
                       f"iteration inside a run() loop; the field is "
                       f"bound once at construction — hoist it to a "
                       f"local before the loop")
        self.generic_visit(node)

    # -- float-ns-clock ------------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            for side in (node.left, node.right):
                if _is_clockish(side):
                    self._emit(node, "float-ns-clock",
                               f"true division on "
                               f"'{_identifier(side)}'; use // (or "
                               f"convert at the presentation layer)")
                    break
        self.generic_visit(node)

    def _check_float_cast(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "float"
                and node.args and _is_clockish(node.args[0])):
            self._emit(node, "float-ns-clock",
                       f"float() applied to "
                       f"'{_identifier(node.args[0])}'; keep clock "
                       f"values integral")


def _has_slots(node: ast.ClassDef) -> bool:
    """Does the class body assign ``__slots__``?"""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == "__slots__":
                return True
    return False


def _slots_exempt(node: ast.ClassDef) -> bool:
    """Exception / enum / Protocol / NamedTuple subclasses and
    ``@dataclass`` classes are out of the rule's scope."""
    for base in node.bases:
        name = _identifier(base)
        if name is None:
            continue
        if name in _SLOTS_EXEMPT_BASES or name.endswith("Error") \
                or name.endswith("Exception") or name.endswith("Warning"):
            return True
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if _identifier(target) == "dataclass":
            return True
    return False


def _contains_id_call(node: ast.AST) -> bool:
    """Does any sub-expression call the builtin ``id``?"""
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"):
            return True
    return False


def _allowlisted(path: str, rule: str,
                 allowlist: Dict[str, Tuple[str, ...]]) -> bool:
    posix = path.replace(os.sep, "/")
    return any(posix.endswith(suffix)
               for suffix in allowlist.get(rule, ()))


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[str]] = None,
                allowlist: Optional[Dict[str, Tuple[str, ...]]] = None,
                dataflow: bool = False,
                extra_findings: Sequence[Finding] = (),
                ) -> List[Finding]:
    """Lint one source string; returns surviving findings, sorted.

    This is the single choke point every finding flows through:
    syntactic visitor rules, the per-file dataflow families (taint,
    atomicity), and any project-level ``extra_findings`` the caller
    computed for this file (parity, contract) — so suppression
    markers, usage tracking, and the allowlist apply uniformly.
    """
    enabled = effective_rules(rules, dataflow)
    if allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 0,
                        col=exc.offset or 0, rule="parse-error",
                        message=f"cannot parse: {exc.msg}")]
    visitor = _RuleVisitor(path, enabled)
    visitor.visit(tree)
    findings: List[Finding] = list(visitor.findings)
    if dataflow:
        if any(r in enabled for r in _TAINT_RULES):
            from .dataflow.taint import analyze_module
            findings.extend(f for f in analyze_module(tree, path)
                            if f.rule in enabled)
        if any(r in enabled for r in _ATOMICITY_RULES):
            from .dataflow.atomicity import check_module
            findings.extend(f for f in check_module(tree, path)
                            if f.rule in enabled)
    findings.extend(f for f in extra_findings if f.rule in enabled)
    markers = markers_in(source)
    flag_unused = dataflow and UNUSED_SUPPRESSION in enabled
    filtered = apply_markers(findings, markers, frozenset(enabled),
                             path, flag_unused)
    return sorted(
        f for f in filtered
        if not _allowlisted(path, f.rule, allowlist))


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d != "__pycache__"]
                out.extend(os.path.join(dirpath, name)
                           for name in sorted(filenames)
                           if name.endswith(".py"))
        else:
            out.append(path)
    return sorted(set(out))


def lint_paths(paths: Iterable[str],
               rules: Optional[Sequence[str]] = None,
               allowlist: Optional[Dict[str, Tuple[str, ...]]] = None,
               dataflow: bool = False,
               ) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``.

    In the dataflow tier the parity family runs here (it needs the
    whole file set: the engine's run loops define the contract the
    scheduler hooks are checked against); its findings are handed to
    ``lint_source`` per file so suppressions apply normally.
    """
    files: Dict[str, str] = {}
    for filename in iter_python_files(paths):
        with open(filename, "r") as fh:
            files[filename] = fh.read()
    enabled = effective_rules(rules, dataflow)
    parity_by_path: Dict[str, List[Finding]] = {}
    if dataflow and any(r in enabled for r in _PARITY_RULES):
        from .dataflow.parity import check_parity
        for finding in check_parity(files):
            parity_by_path.setdefault(finding.path, []).append(finding)
    findings: List[Finding] = []
    for filename, source in files.items():
        findings.extend(lint_source(
            source, path=filename, rules=rules, allowlist=allowlist,
            dataflow=dataflow,
            extra_findings=parity_by_path.get(filename, ())))
    return sorted(findings)
