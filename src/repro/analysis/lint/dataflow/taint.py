"""Determinism taint analysis.

Flow-sensitive, interprocedural (per-function summaries) taint
propagation from nondeterminism *sources* to schedule/digest *sinks*.
This replaces the syntactic ``wall-clock`` / ``unseeded-random`` /
``id-ordering`` rules in the ``--dataflow`` tier: instead of flagging
``time.time()`` wherever it appears, it flags it only when the value
*reaches* something that can change a run — an event timestamp, a
sort key, a digest input, an RNG seed — including through locals,
containers, and helper functions.

Sources (``Src.kind``):

``wall-clock``  ``time.*`` / ``datetime.now`` host-clock reads
``random``      process-global ``random.*``, ``os.urandom``, ``uuid``,
                ``secrets``
``id``          ``id()`` — allocation addresses
``env``         ``os.environ`` / ``os.getenv`` / pids / hostnames
``set-order``   iteration order of a set (or an unsorted directory
                listing) — attaches at the point of iteration
``setlike``     carrier tag: the value *is* a set (turns into
                ``set-order`` when iterated/materialized); never
                reported itself
``digestobj``   carrier tag: a ``hashlib`` object, enables the
                ``.update(x)`` sink; never reported itself

Sinks: event timestamps (``events.post(t)`` / ``events.repost(e, t)``),
sort keys (``sorted``/``min``/``max``/``list.sort`` ``key=``, or
sorting an ``id``-tainted iterable), digest inputs (``hashlib.X(d)``,
``h.update(d)``), RNG seeds (``random.Random(s)``, ``RandomSource(s)``,
``.seed(s)``).

Sanitizers: ``sorted``/``min``/``max``/``len``/``sum``/``any``/``all``
kill order taint (their result no longer depends on input order);
``len``/``sum``/``any``/``all``/``abs``/``bool`` additionally kill
value taint (the result is a pure function of the values).
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, List, NamedTuple, Optional, Set,
                    Tuple)

from ..findings import Finding
from .cfg import (ITER, STMT, TEST, WITHITEM, Block, CFG, FuncInfo,
                  build_cfg, module_functions)
from .solver import Env, solve_forward

# -- tags ---------------------------------------------------------------


class Src(NamedTuple):
    """A nondeterminism source (or carrier tag)."""

    kind: str
    line: int
    detail: str


class Par(NamedTuple):
    """'Taints whatever flowed into parameter #index' (summary tag)."""

    index: int


#: kinds whose flow into a sink is reported (carrier tags are not)
VALUE_KINDS = frozenset({"wall-clock", "random", "env", "id"})
ORDER_KIND = "set-order"
REPORTABLE_KINDS = VALUE_KINDS | {ORDER_KIND}

#: lint rule id per source kind
KIND_RULE = {
    "wall-clock": "taint-wall-clock",
    "random": "taint-random",
    "env": "taint-env",
    "id": "taint-id-order",
    "set-order": "taint-set-order",
}

# -- source tables ------------------------------------------------------

from ..rules import WALL_CLOCK_CALLS  # noqa: E402  (no import cycle)

#: fully qualified call -> source kind
VALUE_SOURCE_CALLS: Dict[str, str] = {
    **{name: "wall-clock" for name in WALL_CLOCK_CALLS},
    "os.urandom": "random",
    "uuid.uuid1": "random",
    "uuid.uuid4": "random",
    "secrets.token_bytes": "random",
    "secrets.token_hex": "random",
    "secrets.token_urlsafe": "random",
    "secrets.randbits": "random",
    "secrets.randbelow": "random",
    "os.getenv": "env",
    "os.getpid": "env",
    "os.getppid": "env",
    "os.cpu_count": "env",
    "socket.gethostname": "env",
    "platform.node": "env",
}

#: calls returning sequences in host-filesystem order
ORDER_SOURCE_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
ORDER_SOURCE_METHODS = frozenset({"glob", "rglob", "iterdir"})

#: builtins whose result depends on values but not their order
ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "len", "sum",
                              "any", "all", "frozenset", "set"})
#: builtins whose result carries no taint at all
FULL_SANITIZERS = frozenset({"len", "sum", "any", "all", "abs", "bool",
                             "isinstance", "issubclass", "callable"})
#: casts: value taint flows through, order taint does not
CAST_BUILTINS = frozenset({"int", "float", "str", "bytes", "round",
                           "format"})

#: receiver-chain name parts that make ``.post``/``.repost`` an event
#: queue sink
EVENTS_RECEIVER_PARTS = frozenset({"events", "eventq", "event_queue",
                                   "queue", "wheel"})

SINK_EVENT_TIME = "event timestamp"
SINK_SORT_KEY = "sort key"
SINK_DIGEST = "digest input"
SINK_RNG_SEED = "rng seed"


class SinkParam(NamedTuple):
    """A summary entry: parameter #index flows into a sink at line."""

    index: int
    label: str
    line: int


class Summary(NamedTuple):
    """What a call to this function does, from the caller's view."""

    intrinsic: FrozenSet          # Src tags the return value carries
    param_flow: FrozenSet         # param indices flowing to the return
    sinks: Tuple[SinkParam, ...]  # params that reach sinks inside

    @staticmethod
    def empty() -> "Summary":
        return Summary(frozenset(), frozenset(), ())


EMPTY: FrozenSet = frozenset()


def _chain_str(node: ast.AST) -> Optional[str]:
    """Dotted chain of a Name/Attribute path, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _import_table(tree: ast.Module) -> Dict[str, str]:
    """local name -> qualified prefix, same policy as rules.py."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                qualified = alias.asname and alias.name or \
                    alias.name.split(".")[0]
                table[local] = qualified
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
    return table


class _FuncResult(NamedTuple):
    returns: FrozenSet
    sinks: Tuple[SinkParam, ...]


class ModuleTaint:
    """Analyze one module: summaries to fixpoint, then collect findings."""

    MAX_SUMMARY_ROUNDS = 8

    def __init__(self, tree: ast.Module, path: str):
        self.tree = tree
        self.path = path
        self.imports = _import_table(tree)
        self.functions = module_functions(tree)
        self.by_name: Dict[str, FuncInfo] = {
            f.qualname: f for f in self.functions}
        self.module_funcs: Dict[str, FuncInfo] = {
            f.qualname: f for f in self.functions if f.class_name is None}
        self.methods: Dict[Tuple[str, str], FuncInfo] = {
            (f.class_name, f.node.name): f
            for f in self.functions if f.class_name is not None}
        self.summaries: Dict[str, Summary] = {
            f.qualname: Summary.empty() for f in self.functions}
        self._cfgs: Dict[str, CFG] = {}
        self.findings: Set[Finding] = set()

    # -- public entry ---------------------------------------------------

    def analyze(self) -> List[Finding]:
        # 1. iterate summaries to a fixed point (findings suppressed)
        for _ in range(self.MAX_SUMMARY_ROUNDS):
            changed = False
            for info in self.functions:
                new = self._summarize(info)
                if new != self.summaries[info.qualname]:
                    self.summaries[info.qualname] = new
                    changed = True
            if not changed:
                break
        # 2. final collecting pass: every function + the module body
        for info in self.functions:
            self._run_function(info, collect=True)
        self._run_body(self.tree.body, init={}, collect=True,
                       current_class=None)
        return sorted(self.findings)

    # -- per-function driving -------------------------------------------

    def _cfg_for(self, info: FuncInfo) -> CFG:
        cfg = self._cfgs.get(info.qualname)
        if cfg is None:
            cfg = build_cfg(info.node.body)
            self._cfgs[info.qualname] = cfg
        return cfg

    def _summarize(self, info: FuncInfo) -> Summary:
        result = self._run_function(info, collect=False)
        intrinsic = frozenset(t for t in result.returns
                              if isinstance(t, Src))
        param_flow = frozenset(t.index for t in result.returns
                               if isinstance(t, Par))
        return Summary(intrinsic, param_flow, result.sinks)

    def _run_function(self, info: FuncInfo, collect: bool) -> _FuncResult:
        init: Env = {name: frozenset({Par(i)})
                     for i, name in enumerate(info.params)}
        return self._run_body(info.node.body, init, collect,
                              info.class_name, cfg=self._cfg_for(info))

    def _run_body(self, body, init: Env, collect: bool,
                  current_class: Optional[str],
                  cfg: Optional[CFG] = None) -> _FuncResult:
        if cfg is None:
            cfg = build_cfg(body)
        ctx = _Ctx(self, current_class, collect=False)
        in_envs = solve_forward(
            cfg, init, lambda block, env: ctx.transfer(block, env))
        # deterministic single collection pass over the fixpoint
        ctx = _Ctx(self, current_class, collect=collect)
        for block in cfg.blocks:
            env = in_envs.get(block.bid)
            ctx.transfer(block, env if env is not None else {})
        return _FuncResult(frozenset(ctx.returns), tuple(ctx.sinks))


class _Ctx:
    """Transfer-function state for one solve/collect pass."""

    def __init__(self, mod: ModuleTaint, current_class: Optional[str],
                 collect: bool):
        self.mod = mod
        self.current_class = current_class
        self.collect = collect
        self.returns: Set = set()
        self.sinks: List[SinkParam] = []
        self._seen_sinks: Set[Tuple[int, str, int]] = set()

    # -- statement transfer ---------------------------------------------

    def transfer(self, block: Block, env: Env) -> Env:
        env = dict(env)
        for item in block.items:
            if item.kind == STMT:
                self._stmt(item.node, env)
            elif item.kind == TEST:
                self.eval(item.node, env)
            elif item.kind == ITER:
                tags = self._iter_taint(self.eval(item.node, env),
                                        item.node)
                if item.target is not None:
                    self._bind(item.target, tags, env)
            elif item.kind == WITHITEM:
                tags = self.eval(item.node, env)
                if item.target is not None:
                    self._bind(item.target, tags, env)
        return env

    def _stmt(self, node: ast.stmt, env: Env) -> None:
        if isinstance(node, ast.Assign):
            tags = self.eval(node.value, env)
            for target in node.targets:
                self._bind(target, tags, env)
        elif isinstance(node, ast.AugAssign):
            tags = self.eval(node.value, env)
            tags = tags | self._load_target(node.target, env)
            self._bind(node.target, tags, env)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self.eval(node.value, env), env)
        elif isinstance(node, ast.Expr):
            self.eval(node.value, env)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.returns |= self.eval(node.value, env)
        elif isinstance(node, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            env[node.name] = EMPTY  # closures are opaque here

    # -- binding --------------------------------------------------------

    def _bind(self, target: ast.AST, tags: FrozenSet, env: Env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = tags
            # a rebound name invalidates attribute chains under it
            prefix = target.id + "."
            for key in [k for k in env
                        if isinstance(k, str) and k.startswith(prefix)]:
                del env[key]
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags, env)
        elif isinstance(target, ast.Attribute):
            chain = _chain_str(target)
            if chain is not None:
                env[chain] = tags
        elif isinstance(target, ast.Subscript):
            chain = _chain_str(target.value)
            if chain is not None:
                env[chain] = env.get(chain, EMPTY) | tags

    def _load_target(self, target: ast.AST, env: Env) -> FrozenSet:
        if isinstance(target, ast.Name):
            return env.get(target.id, EMPTY)
        chain = _chain_str(target)
        if chain is not None:
            return env.get(chain, EMPTY)
        return EMPTY

    # -- expression evaluation ------------------------------------------

    def eval(self, node: ast.expr, env: Env) -> FrozenSet:
        if isinstance(node, ast.Name):
            return env.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, env)
            chain = _chain_str(node)
            if chain is not None:
                qual = self._qualified_chain(chain)
                if qual == "os.environ":
                    return base | {Src("env", node.lineno, "os.environ")}
                stored = env.get(chain)
                if stored is not None:
                    return base | stored
            return base
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            sub = self.eval(node.slice, env)
            return base | sub
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, (ast.BinOp,)):
            return self.eval(node.left, env) | self.eval(node.right, env)
        if isinstance(node, ast.BoolOp):
            out: FrozenSet = EMPTY
            for value in node.values:
                out = out | self.eval(value, env)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left, env)
            for comp in node.comparators:
                out = out | self.eval(comp, env)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return self.eval(node.body, env) | self.eval(node.orelse, env)
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for elt in node.elts:
                out = out | self.eval(elt, env)
            return out
        if isinstance(node, ast.Set):
            out = frozenset({Src("setlike", node.lineno, "set literal")})
            for elt in node.elts:
                out = out | self.eval(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out = out | self.eval(key, env)
            for value in node.values:
                out = out | self.eval(value, env)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self._comprehension(node, env)
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            tags = self.eval(node.value, env)
            self._bind(node.target, tags, env)
            return tags
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out = out | self.eval(value, env)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, env)
        if isinstance(node, ast.Slice):
            out = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out = out | self.eval(part, env)
            return out
        return EMPTY  # Constant and anything exotic

    def _comprehension(self, node, env: Env) -> FrozenSet:
        scratch = dict(env)
        setlike = isinstance(node, ast.SetComp)
        for gen in node.generators:
            tags = self._iter_taint(self.eval(gen.iter, scratch),
                                    gen.iter)
            self._bind(gen.target, tags, scratch)
            for cond in gen.ifs:
                self.eval(cond, scratch)
        if isinstance(node, ast.DictComp):
            out = self.eval(node.key, scratch) | \
                self.eval(node.value, scratch)
        else:
            out = self.eval(node.elt, scratch)
        if setlike:
            out = out | {Src("setlike", node.lineno, "set comprehension")}
        return out

    def _iter_taint(self, tags: FrozenSet, node: ast.AST) -> FrozenSet:
        """Iterating a set-typed value materializes its arbitrary order."""
        if any(isinstance(t, Src) and t.kind == "setlike" for t in tags):
            line = getattr(node, "lineno", 0)
            tags = frozenset(t for t in tags
                             if not (isinstance(t, Src)
                                     and t.kind == "setlike"))
            tags = tags | {Src(ORDER_KIND, line, "set iteration order")}
        return tags

    # -- call handling ---------------------------------------------------

    def _qualified_chain(self, chain: str) -> Optional[str]:
        """Resolve the chain's root through the import table."""
        root, _, rest = chain.partition(".")
        qual_root = self.mod.imports.get(root)
        if qual_root is None:
            return None
        return f"{qual_root}.{rest}" if rest else qual_root

    def _is_builtin(self, name: str) -> bool:
        """A bare name acts as the builtin unless shadowed."""
        return (name not in self.mod.imports
                and name not in self.mod.module_funcs)

    def _call(self, node: ast.Call, env: Env) -> FrozenSet:
        func = node.func
        chain = _chain_str(func)
        qual = self._qualified_chain(chain) if chain else None

        # evaluate arguments once (this also runs nested sink checks);
        # lambdas stay unevaluated — sort-key handling evaluates their
        # bodies with the right parameter binding
        pos = [self.eval(a, env) if not isinstance(a, ast.Lambda)
               else EMPTY for a in node.args]
        kw: Dict[Optional[str], FrozenSet] = {}
        for keyword in node.keywords:
            if isinstance(keyword.value, ast.Lambda):
                kw[keyword.arg] = EMPTY
            else:
                kw[keyword.arg] = self.eval(keyword.value, env)
        arg_union: FrozenSet = EMPTY
        for tags in pos:
            arg_union = arg_union | tags
        for tags in kw.values():
            arg_union = arg_union | tags

        # ---- sinks ----
        self._check_sinks(node, env, pos, kw)

        # ---- sources ----
        if qual is not None:
            kind = VALUE_SOURCE_CALLS.get(qual)
            if kind is not None:
                return arg_union | {Src(kind, node.lineno,
                                        f"{qual}()")}
            if qual == "os.environ.get":
                return arg_union | {Src("env", node.lineno,
                                        "os.environ.get()")}
            if (qual.startswith("random.")
                    and qual not in ("random.Random",
                                     "random.SystemRandom")):
                return arg_union | {Src("random", node.lineno,
                                        f"{qual}()")}
            if qual in ("random.SystemRandom",):
                return arg_union | {Src("random", node.lineno,
                                        f"{qual}()")}
            if qual in ORDER_SOURCE_CALLS:
                return arg_union | {Src(ORDER_KIND, node.lineno,
                                        f"{qual}() listing order")}
            if qual.startswith("hashlib."):
                return arg_union | {Src("digestobj", node.lineno, qual)}
        if isinstance(func, ast.Name):
            name = func.id
            if name == "id" and self._is_builtin(name):
                return frozenset({Src("id", node.lineno, "id()")})
            if name in ("set", "frozenset") and self._is_builtin(name):
                return arg_union | {Src("setlike", node.lineno,
                                        f"{name}()")}
            if name in ("list", "tuple") and self._is_builtin(name):
                # materializing a set into a sequence bakes in its order
                return self._iter_taint(arg_union, node)
            if name in FULL_SANITIZERS and self._is_builtin(name):
                return EMPTY
            if name in ("sorted", "min", "max") \
                    and self._is_builtin(name):
                return self._strip_order(arg_union)
            if name in CAST_BUILTINS and self._is_builtin(name):
                return self._strip_order(arg_union)
            # local module function: apply its summary
            info = self.mod.module_funcs.get(name)
            if info is not None:
                return self._apply_summary(node, info, pos, kw,
                                           offset=0)
        if isinstance(func, ast.Attribute):
            if func.attr in ORDER_SOURCE_METHODS:
                return arg_union | {Src(ORDER_KIND, node.lineno,
                                        f".{func.attr}() listing order")}
            # self.method(...) within the same class
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and self.current_class is not None):
                info = self.mod.methods.get(
                    (self.current_class, func.attr))
                if info is not None:
                    return self._apply_summary(node, info, pos, kw,
                                               offset=1)
            # unknown method call: receiver taint propagates too
            arg_union = arg_union | self.eval(func.value, env)
        return arg_union

    @staticmethod
    def _strip_order(tags: FrozenSet) -> FrozenSet:
        return frozenset(
            t for t in tags
            if not (isinstance(t, Src)
                    and t.kind in (ORDER_KIND, "setlike")))

    # -- sinks ----------------------------------------------------------

    def _check_sinks(self, node: ast.Call, env: Env,
                     pos: List[FrozenSet],
                     kw: Dict[Optional[str], FrozenSet]) -> None:
        func = node.func
        # event timestamps
        if isinstance(func, ast.Attribute):
            chain = _chain_str(func.value)
            parts = set(chain.split(".")) if chain else set()
            receiver_tags = self.eval(func.value, env)
            if parts & EVENTS_RECEIVER_PARTS:
                if func.attr == "post" and node.args:
                    self._sink(node, pos[0], SINK_EVENT_TIME,
                               node.args[0])
                elif func.attr == "repost" and len(node.args) > 1:
                    self._sink(node, pos[1], SINK_EVENT_TIME,
                               node.args[1])
            # digest inputs through a hashlib object
            if func.attr == "update" and node.args:
                if any(isinstance(t, Src) and t.kind == "digestobj"
                       for t in receiver_tags):
                    self._sink(node, pos[0], SINK_DIGEST, node.args[0])
            # explicit reseeding
            if func.attr == "seed" and node.args:
                self._sink(node, pos[0], SINK_RNG_SEED, node.args[0])
            # list.sort(key=...)
            if func.attr == "sort":
                self._sort_sink(node, env, receiver_tags)
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("sorted", "min", "max") \
                    and self._is_builtin(name) and node.args:
                iterable = self.eval(node.args[0], env) \
                    if not isinstance(node.args[0], ast.Lambda) else EMPTY
                self._sort_sink(node, env, iterable)
            chain = _chain_str(func)
            qual = self._qualified_chain(chain) if chain else None
            if qual == "random.Random" and node.args:
                self._sink(node, pos[0], SINK_RNG_SEED, node.args[0])
            if qual is not None and qual.startswith("hashlib.") \
                    and node.args:
                self._sink(node, pos[0], SINK_DIGEST, node.args[0])
            if chain is not None and chain.rsplit(".", 1)[-1] == \
                    "RandomSource" and node.args:
                self._sink(node, pos[0], SINK_RNG_SEED, node.args[0])
        elif isinstance(func, ast.Attribute):
            chain = _chain_str(func)
            qual = self._qualified_chain(chain) if chain else None
            if qual == "random.Random" and node.args:
                self._sink(node, pos[0], SINK_RNG_SEED, node.args[0])
            if qual is not None and qual.startswith("hashlib.") \
                    and node.args:
                self._sink(node, pos[0], SINK_DIGEST, node.args[0])
            if func.attr == "RandomSource" and node.args:
                self._sink(node, pos[0], SINK_RNG_SEED, node.args[0])

    def _sort_sink(self, node: ast.Call, env: Env,
                   iterable_tags: FrozenSet) -> None:
        """key= taint, or sorting an id-tainted iterable, is a sink."""
        key = None
        for keyword in node.keywords:
            if keyword.arg == "key":
                key = keyword.value
        if key is not None:
            if isinstance(key, ast.Lambda):
                scratch = dict(env)
                # a key that is a pure function of the element is the
                # sanctioned idiom (sorted(s, key=...) imposes a total
                # order regardless of iteration order), so order kinds
                # do not flow through the parameter; value kinds and
                # closure-captured taint still do
                item_tags = self._strip_order(
                    self._iter_taint(iterable_tags, node))
                for arg in key.args.args:
                    scratch[arg.arg] = item_tags
                key_tags = self.eval(key.body, scratch)
            else:
                key_tags = self.eval(key, env)
            self._sink(node, key_tags, SINK_SORT_KEY, key)
        # ordering values by their ids is nondeterministic even
        # without an explicit key
        id_tags = frozenset(t for t in iterable_tags
                            if isinstance(t, Src) and t.kind == "id")
        if id_tags:
            self._sink(node, id_tags, SINK_SORT_KEY, node)

    def _sink(self, call: ast.Call, tags: FrozenSet, label: str,
              where: ast.AST) -> None:
        line = getattr(where, "lineno", call.lineno)
        col = getattr(where, "col_offset", call.col_offset)
        for tag in sorted(tags, key=repr):
            if isinstance(tag, Par):
                key = (tag.index, label, line)
                if key not in self._seen_sinks:
                    self._seen_sinks.add(key)
                    self.sinks.append(SinkParam(tag.index, label, line))
            elif isinstance(tag, Src) and tag.kind in REPORTABLE_KINDS:
                if self.collect:
                    self.mod.findings.add(Finding(
                        path=self.mod.path, line=line, col=col,
                        rule=KIND_RULE[tag.kind],
                        message=(f"{tag.detail} (line {tag.line}) "
                                 f"flows into {label}")))

    # -- interprocedural ------------------------------------------------

    def _apply_summary(self, node: ast.Call, info: FuncInfo,
                       pos: List[FrozenSet],
                       kw: Dict[Optional[str], FrozenSet],
                       offset: int) -> FrozenSet:
        """Taint effect of calling a function we have a summary for.

        ``offset`` maps parameter indices to positional arguments
        (1 for bound-method calls, where param 0 is ``self``).
        """
        summary = self.mod.summaries.get(info.qualname, Summary.empty())

        def arg_tags(index: int) -> FrozenSet:
            slot = index - offset
            if 0 <= slot < len(pos):
                return pos[slot]
            if index < len(info.params):
                name = info.params[index]
                if name in kw:
                    return kw[name]
            return EMPTY

        out: FrozenSet = frozenset(summary.intrinsic)
        for index in summary.param_flow:
            out = out | arg_tags(index)
        for sink in summary.sinks:
            tags = arg_tags(sink.index)
            for tag in sorted(tags, key=repr):
                if isinstance(tag, Par):
                    key = (tag.index, sink.label, node.lineno)
                    if key not in self._seen_sinks:
                        self._seen_sinks.add(key)
                        self.sinks.append(
                            SinkParam(tag.index, sink.label,
                                      node.lineno))
                elif isinstance(tag, Src) \
                        and tag.kind in REPORTABLE_KINDS:
                    if self.collect:
                        self.mod.findings.add(Finding(
                            path=self.mod.path, line=node.lineno,
                            col=node.col_offset,
                            rule=KIND_RULE[tag.kind],
                            message=(
                                f"{tag.detail} (line {tag.line}) flows "
                                f"into {sink.label} inside "
                                f"{info.qualname}() at line "
                                f"{sink.line}")))
        return out


def analyze_module(tree: ast.Module, path: str) -> List[Finding]:
    """Run the determinism taint analysis over one parsed module."""
    return ModuleTaint(tree, path).analyze()
