"""Minimal SARIF 2.1.0 emitter for schedlint findings.

Only the subset consumed by code-scanning UIs is produced: one run,
one driver, a rule table, and one result per finding with a physical
location.  Columns are 1-based in SARIF; schedlint findings carry
0-based columns, so the emitter shifts them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def sarif_dict(findings: Iterable[Finding],
               rules: Dict[str, str]) -> dict:
    """The SARIF log structure for one lint run."""
    items = sorted(findings)
    rule_ids = sorted(set(rules) | {f.rule for f in items})
    index = {rule: i for i, rule in enumerate(rule_ids)}
    results: List[dict] = []
    for finding in items:
        results.append({
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/")},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "schedlint",
                "informationUri":
                    "https://example.invalid/schedlint",
                "rules": [{
                    "id": rule,
                    "shortDescription": {
                        "text": rules.get(rule, rule)},
                } for rule in rule_ids],
            }},
            "results": results,
        }],
    }


def write_sarif(path: str, findings: Iterable[Finding],
                rules: Dict[str, str]) -> None:
    """Write the SARIF log atomically (tmp + rename)."""
    from ....core.artifacts import atomic_write_json
    atomic_write_json(path, sarif_dict(findings, rules),
                      sort_keys=False)
