"""Statement-level control-flow graphs over stdlib ``ast``.

Every dataflow rule in this package runs on the same representation: a
per-function :class:`CFG` of :class:`Block`\\ s, each holding an ordered
list of :class:`Item`\\ s (simple statements, branch tests, loop-iteration
bindings).  Loops are explicit — a ``while``/``for`` header block carries
a back edge from the end of its body, and every block records its
``loop_depth`` — so analyses never re-derive loop structure from syntax.

The builder is deliberately coarse where precision does not pay for
itself in this codebase:

* ``try`` bodies may raise anywhere, so each handler's entry joins the
  pre-``try`` state with the state after *every* block of the body;
* ``finally`` joins all normal and handled exits;
* unreachable code after ``return``/``raise``/``break`` still gets a
  (predecessor-less) block, so sink checks with constant arguments are
  not silently skipped there.
"""

from __future__ import annotations

import ast
from typing import List, NamedTuple, Optional, Sequence, Tuple

#: item kinds — what a block entry means to a transfer function
STMT = "stmt"      #: a simple statement (Assign, Expr, Return, ...)
TEST = "test"      #: a branch/loop condition expression
ITER = "iter"      #: a for-loop binding: target <- next(iter)
WITHITEM = "with"  #: a with-item: optional_vars <- context expression


class Item(NamedTuple):
    """One entry in a basic block."""

    kind: str
    node: ast.AST                      # the stmt (STMT) or expr (TEST)
    target: Optional[ast.AST] = None   # ITER/WITHITEM binding target


class Block:
    """A basic block: straight-line items plus successor edges."""

    __slots__ = ("bid", "items", "succs", "loop_depth", "is_loop_header")

    def __init__(self, bid: int, loop_depth: int = 0,
                 is_loop_header: bool = False):
        self.bid = bid
        self.items: List[Item] = []
        self.succs: List[int] = []
        self.loop_depth = loop_depth
        self.is_loop_header = is_loop_header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Block {self.bid} items={len(self.items)} "
                f"succs={self.succs} depth={self.loop_depth}>")


class CFG:
    """A function (or module) body as basic blocks.

    ``blocks[entry]`` is the entry block; ``exit`` is a virtual,
    item-less block every ``return`` (and the fall-off-the-end path)
    feeds into.
    """

    __slots__ = ("blocks", "entry", "exit")

    def __init__(self, blocks: List[Block], entry: int, exit: int):
        self.blocks = blocks
        self.entry = entry
        self.exit = exit

    def preds(self) -> List[List[int]]:
        """Predecessor lists, index-aligned with ``blocks``."""
        out: List[List[int]] = [[] for _ in self.blocks]
        for block in self.blocks:
            for succ in block.succs:
                out[succ].append(block.bid)
        return out


class _LoopCtx(NamedTuple):
    header: int        # continue target
    after: int         # break target


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []

    def new(self, depth: int, header: bool = False) -> Block:
        block = Block(len(self.blocks), depth, header)
        self.blocks.append(block)
        return block

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self.new(0)
        exit_block = self.new(0)
        end = self._seq(body, entry, [], 0, exit_block.bid)
        if end is not None:
            end.succs.append(exit_block.bid)
        return CFG(self.blocks, entry.bid, exit_block.bid)

    # -- statement dispatch --------------------------------------------

    def _seq(self, stmts: Sequence[ast.stmt], cur: Optional[Block],
             loops: List[_LoopCtx], depth: int,
             exit_bid: int) -> Optional[Block]:
        """Thread ``stmts`` through the graph; returns the fall-through
        block, or None when control cannot fall off the end."""
        for stmt in stmts:
            if cur is None:
                # dead code after return/raise/break: keep analyzing in
                # a predecessor-less block
                cur = self.new(depth)
            cur = self._stmt(stmt, cur, loops, depth, exit_bid)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: Block, loops: List[_LoopCtx],
              depth: int, exit_bid: int) -> Optional[Block]:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.items.append(Item(STMT, stmt))
            cur.succs.append(exit_bid)
            return None
        if isinstance(stmt, ast.Break):
            if loops:
                cur.succs.append(loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            if loops:
                cur.succs.append(loops[-1].header)
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur, loops, depth, exit_bid)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, cur, loops, depth, exit_bid)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur, loops, depth, exit_bid)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                cur.items.append(Item(WITHITEM, item.context_expr,
                                      item.optional_vars))
            return self._seq(stmt.body, cur, loops, depth, exit_bid)
        # match statements are rare here; model each case as a branch
        if isinstance(stmt, ast.Match):
            cur.items.append(Item(TEST, stmt.subject))
            join = self.new(depth)
            for case in stmt.cases:
                case_block = self.new(depth)
                cur.succs.append(case_block.bid)
                end = self._seq(case.body, case_block, loops, depth,
                                exit_bid)
                if end is not None:
                    end.succs.append(join.bid)
            cur.succs.append(join.bid)  # no case may match
            return join
        # everything else (Assign, Expr, FunctionDef, Import, ...) is a
        # straight-line item
        cur.items.append(Item(STMT, stmt))
        return cur

    def _if(self, stmt: ast.If, cur: Block, loops: List[_LoopCtx],
            depth: int, exit_bid: int) -> Optional[Block]:
        cur.items.append(Item(TEST, stmt.test))
        then_block = self.new(depth)
        cur.succs.append(then_block.bid)
        then_end = self._seq(stmt.body, then_block, loops, depth, exit_bid)
        if stmt.orelse:
            else_block = self.new(depth)
            cur.succs.append(else_block.bid)
            else_end = self._seq(stmt.orelse, else_block, loops, depth,
                                 exit_bid)
        else:
            else_end = cur
        if then_end is None and else_end is None:
            return None
        join = self.new(depth)
        for end in (then_end, else_end):
            if end is not None:
                end.succs.append(join.bid)
        return join

    def _loop(self, stmt, cur: Block, loops: List[_LoopCtx], depth: int,
              exit_bid: int) -> Block:
        header = self.new(depth + 1, header=True)
        cur.succs.append(header.bid)
        if isinstance(stmt, ast.While):
            header.items.append(Item(TEST, stmt.test))
        else:
            header.items.append(Item(ITER, stmt.iter, stmt.target))
        body = self.new(depth + 1)
        after = self.new(depth)
        header.succs.append(body.bid)
        # the loop-exit edge runs through the (usually empty) else suite
        if stmt.orelse:
            else_block = self.new(depth)
            header.succs.append(else_block.bid)
            else_end = self._seq(stmt.orelse, else_block, loops, depth,
                                 exit_bid)
            if else_end is not None:
                else_end.succs.append(after.bid)
        else:
            header.succs.append(after.bid)
        loops.append(_LoopCtx(header.bid, after.bid))
        body_end = self._seq(stmt.body, body, loops, depth + 1, exit_bid)
        loops.pop()
        if body_end is not None:
            body_end.succs.append(header.bid)  # the back edge
        return after

    def _try(self, stmt: ast.Try, cur: Block, loops: List[_LoopCtx],
             depth: int, exit_bid: int) -> Optional[Block]:
        body_start = self.new(depth)
        cur.succs.append(body_start.bid)
        first_body_bid = body_start.bid
        body_end = self._seq(stmt.body, body_start, loops, depth, exit_bid)
        body_bids = range(first_body_bid, len(self.blocks))
        if body_end is not None and stmt.orelse:
            body_end = self._seq(stmt.orelse, body_end, loops, depth,
                                 exit_bid)
        ends: List[Block] = [] if body_end is None else [body_end]
        for handler in stmt.handlers:
            h_block = self.new(depth)
            # an exception may fire before the try (its type expr is
            # evaluated at handler entry) or after any body block
            cur.succs.append(h_block.bid)
            for bid in body_bids:
                self.blocks[bid].succs.append(h_block.bid)
            h_end = self._seq(handler.body, h_block, loops, depth,
                              exit_bid)
            if h_end is not None:
                ends.append(h_end)
        if stmt.finalbody:
            fin = self.new(depth)
            for end in ends:
                end.succs.append(fin.bid)
            if not ends:
                cur.succs.append(fin.bid)  # keep finally reachable
            return self._seq(stmt.finalbody, fin, loops, depth, exit_bid)
        if not ends:
            return None
        join = self.new(depth)
        for end in ends:
            end.succs.append(join.bid)
        return join


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of a function (or module) body."""
    return _Builder().build(body)


class FuncInfo(NamedTuple):
    """One analyzable function: AST node, owner class, parameters."""

    qualname: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    class_name: Optional[str]
    params: Tuple[str, ...]       # positional parameter names, in order


def module_functions(tree: ast.Module) -> List[FuncInfo]:
    """Top-level functions and methods of top-level classes.

    Nested closures are analyzed as part of their enclosing function's
    body (they appear as opaque statements); the interprocedural layer
    only resolves calls to these named functions.
    """
    out: List[FuncInfo] = []

    def params_of(node) -> Tuple[str, ...]:
        args = node.args
        names = [a.arg for a in args.posonlyargs] + \
            [a.arg for a in args.args]
        return tuple(names)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(FuncInfo(node.name, node, None, params_of(node)))
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    out.append(FuncInfo(f"{node.name}.{sub.name}", sub,
                                        node.name, params_of(sub)))
    return out
