"""Findings baseline: accept known findings, flag only new ones.

A baseline entry is ``(path, rule, message)`` with the path rewritten
relative to the ``repro`` package root, so the same file matches
whether the lint ran over ``src/repro`` or an installed tree, and a
pure line-number shift (code moved by an unrelated edit) does not
invalidate the entry.  Entries that no longer match any finding are
*stale* and reported, so the baseline can only shrink over time.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Tuple

from ..findings import Finding

BASELINE_VERSION = 1

#: one baseline entry
Key = Tuple[str, str, str]


def canonical_path(path: str) -> str:
    """Rewrite ``path`` relative to the ``repro`` package root.

    ``src/repro/cfs/core.py`` and ``/usr/lib/pythonX/site-packages/
    repro/cfs/core.py`` both canonicalize to ``repro/cfs/core.py``;
    paths without a ``repro`` component are returned posix-normalized.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


def baseline_key(finding: Finding) -> Key:
    return (canonical_path(finding.path), finding.rule, finding.message)


def load_baseline(path: str) -> List[Key]:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return []
    entries = data.get("entries", []) if isinstance(data, dict) else []
    out: List[Key] = []
    for entry in entries:
        out.append((str(entry.get("path", "")),
                    str(entry.get("rule", "")),
                    str(entry.get("message", ""))))
    return out


def apply_baseline(findings: Iterable[Finding], baseline: Iterable[Key],
                   ) -> Tuple[List[Finding], List[Key]]:
    """Split findings into (new, stale-baseline-entries).

    Duplicate findings under one key are all absorbed by a single
    entry; an entry matching nothing this run is stale.
    """
    budget: Dict[Key, int] = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    matched: Dict[Key, int] = {}
    new: List[Finding] = []
    for finding in sorted(findings):
        key = baseline_key(finding)
        if key in budget:
            matched[key] = matched.get(key, 0) + 1
        else:
            new.append(finding)
    stale = sorted(key for key in budget if key not in matched)
    return new, stale


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Rewrite the baseline to exactly the current findings.

    Returns the number of entries written.  The write goes through the
    atomic tmp+rename idiom so an interrupted update never leaves a
    torn baseline.
    """
    keys = sorted({baseline_key(f) for f in findings})
    payload = {
        "tool": "schedlint-baseline",
        "version": BASELINE_VERSION,
        "entries": [
            {"path": p, "rule": r, "message": m} for p, r, m in keys],
    }
    from ....core.artifacts import atomic_write_json
    atomic_write_json(path, payload, sort_keys=False)
    return len(keys)
