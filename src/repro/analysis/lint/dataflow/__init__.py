"""schedlint's dataflow tier: CFG + fixed-point analyses.

The ``--dataflow`` flag swaps three syntactic rules for flow-aware
replacements and adds two whole-program checks:

``taint``
    interprocedural determinism-taint (wall clock, unseeded random,
    environment, ``id()``, set/dict iteration order) flowing into
    event timestamps, sort keys, digests, and RNG seeds.

``parity``
    structural equivalence of the engine's instrumented and fast run
    loops, and of each scheduler's fused tick closure against the
    generic ``_update_curr``/``_tick`` chain.

``atomicity``
    non-atomic artifact writes and generation-unchecked read-modify-
    write cycles in the multi-process experiments tree.

Each submodule is importable on its own; :mod:`..rules` pulls them in
lazily so the basic tier never pays for the dataflow machinery.
"""

from .atomicity import RULE_NONATOMIC, RULE_RMW
from .baseline import (apply_baseline, baseline_key, canonical_path,
                       load_baseline, write_baseline)
from .cfg import CFG, Block, FuncInfo, build_cfg, module_functions
from .parity import RULE_FASTPATH, RULE_TICKHOOK, check_parity
from .sarif import sarif_dict, write_sarif
from .solver import env_join, solve_forward
from .taint import KIND_RULE, analyze_module

__all__ = [
    "CFG", "Block", "FuncInfo", "KIND_RULE", "RULE_FASTPATH",
    "RULE_NONATOMIC", "RULE_RMW", "RULE_TICKHOOK", "analyze_module",
    "apply_baseline", "baseline_key", "build_cfg", "canonical_path",
    "check_parity", "env_join", "load_baseline", "module_functions",
    "sarif_dict", "solve_forward", "write_baseline", "write_sarif",
]
