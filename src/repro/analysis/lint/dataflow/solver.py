"""Generic forward worklist fixed-point solver.

An *environment* is a ``dict`` mapping analysis keys (variable names,
attribute chains) to ``frozenset`` lattice values.  The join is
key-wise set union, so any transfer function that only ever adds tags
is monotone and the iteration terminates (the tag universe per function
is finite: its parameters plus the sources appearing in its body).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable

from .cfg import CFG, Block

Env = Dict[Hashable, FrozenSet]


def env_join(a: Env, b: Env) -> Env:
    """Key-wise union of two environments."""
    if not a:
        return dict(b)
    out = dict(a)
    for key, tags in b.items():
        have = out.get(key)
        out[key] = tags if have is None else (have | tags)
    return out


def env_eq(a: Env, b: Env) -> bool:
    return a == b


def solve_forward(cfg: CFG, init: Env,
                  transfer: Callable[[Block, Env], Env]) -> Dict[int, Env]:
    """Iterate ``transfer`` to a fixed point; returns block-entry envs.

    ``transfer(block, env)`` must not mutate ``env`` and must be
    monotone in it.  Unreachable blocks keep no entry (callers treat
    a missing entry as the empty environment).
    """
    in_envs: Dict[int, Env] = {cfg.entry: dict(init)}
    work = deque([cfg.entry])
    queued = {cfg.entry}
    # bound the iteration defensively: |blocks| * |keys| growth steps is
    # the theoretical max; a generous multiplier guards against a
    # non-monotone transfer looping forever
    budget = 64 * (len(cfg.blocks) + 1) ** 2
    while work and budget > 0:
        budget -= 1
        bid = work.popleft()
        queued.discard(bid)
        out = transfer(cfg.blocks[bid], in_envs.get(bid, {}))
        for succ in cfg.blocks[bid].succs:
            have = in_envs.get(succ)
            merged = env_join(have, out) if have is not None else dict(out)
            if have is None or not env_eq(have, merged):
                in_envs[succ] = merged
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return in_envs
