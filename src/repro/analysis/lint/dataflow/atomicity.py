"""Cross-process atomicity rules for the experiments tree.

Campaign cells run in parallel worker processes (``--jobs``) and a
resumed/retried campaign can race its own GC (see
``experiments/cellcache.py``).  Every artifact the experiment layer
writes therefore goes through the tmp-write + ``os.replace`` idiom in
``repro.core.artifacts`` — a torn write from a killed worker must never
be observable under the final name.  Two rules keep it that way, scoped
to ``repro/experiments/``:

``nonatomic-write``
    a file opened for writing (``open(p, "w")``, ``Path.write_text``,
    ``json.dump``/``pickle.dump`` into a raw handle) in a function that
    never performs a rename/replace — the write is visible mid-stream.
    Hand-rolled tmp+``os.replace`` sequences are accepted, but
    ``atomic_write_text``/``atomic_write_json`` are the idiom.

``cache-rmw``
    a function both reads and rewrites (or unlinks) the same shared
    path with no generation check (no fingerprint/generation/version
    comparison anywhere in the function): a concurrent writer can
    change the file between the read and the write, and the decision
    taken is stale.  ``CellCache._gc`` is the model citizen — it
    re-reads the entry's fingerprint and only unlinks stale
    generations.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Tuple

from ..findings import Finding
from .cfg import module_functions

RULE_NONATOMIC = "nonatomic-write"
RULE_RMW = "cache-rmw"

#: functions that already implement (or defer to) the atomic idiom
ATOMIC_WRITERS = frozenset({"atomic_write_text", "atomic_write_json"})

#: substrings whose presence marks a generation-checked RMW
GENERATION_MARKERS = ("fingerprint", "generation", "version", "schema")

_WRITE_MODE_CHARS = set("wax+")


def in_scope(path: str) -> bool:
    """Atomicity rules only apply to the experiments tree."""
    return "experiments" in PurePosixPath(path.replace("\\", "/")).parts


def _chain_str(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _open_write_mode(call: ast.Call) -> bool:
    """Is this ``open(...)`` call opening for write/append/create?"""
    mode: Optional[ast.expr] = None
    if len(call.args) > 1:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(set(mode.value) & _WRITE_MODE_CHARS)
    return False  # dynamic mode: give it the benefit of the doubt


class _FunctionScan:
    """Single pass over one function body collecting sites."""

    def __init__(self) -> None:
        # (line, col, description) per raw write site
        self.writes: List[Tuple[int, int, str]] = []
        self.has_replace = False
        self.has_generation_check = False
        # receiver chain -> first read line
        self.reads: Dict[str, int] = {}
        # receiver chain -> (line, col, verb) for rewrites/unlinks
        self.rewrites: Dict[str, Tuple[int, int, str]] = {}

    def scan(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._call(node)
                elif isinstance(node, ast.Name):
                    self._marker(node.id)
                elif isinstance(node, ast.Attribute):
                    self._marker(node.attr)
                elif isinstance(node, ast.Constant) \
                        and isinstance(node.value, str):
                    self._marker(node.value)

    def _marker(self, text: str) -> None:
        if not self.has_generation_check:
            lowered = text.lower()
            if any(marker in lowered for marker in GENERATION_MARKERS):
                self.has_generation_check = True

    def _call(self, node: ast.Call) -> None:
        func = node.func
        chain = _chain_str(func)
        if isinstance(func, ast.Name):
            if func.id == "open" and _open_write_mode(node):
                self.writes.append((node.lineno, node.col_offset,
                                    "open() in write mode"))
                if node.args:
                    target = _chain_str(node.args[0])
                    if target is not None:
                        self.rewrites.setdefault(
                            target, (node.lineno, node.col_offset,
                                     "rewrites"))
            elif func.id in ATOMIC_WRITERS and node.args:
                # atomic, but still a rewrite for RMW purposes
                target = _chain_str(node.args[0])
                if target is not None:
                    self.rewrites.setdefault(
                        target, (node.lineno, node.col_offset,
                                 "rewrites"))
        if isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = _chain_str(func.value)
            if attr in ("write_text", "write_bytes"):
                self.writes.append((node.lineno, node.col_offset,
                                    f".{attr}()"))
                if receiver is not None:
                    self.rewrites.setdefault(
                        receiver, (node.lineno, node.col_offset,
                                   "rewrites"))
            elif attr == "dump" and chain in ("json.dump",
                                              "pickle.dump") \
                    and len(node.args) > 1:
                self.writes.append((node.lineno, node.col_offset,
                                    f"{chain}() into a raw handle"))
            elif attr in ("replace", "rename"):
                self.has_replace = True
            elif attr in ("read_text", "read_bytes"):
                if receiver is not None:
                    self.reads.setdefault(receiver, node.lineno)
            elif attr == "unlink":
                if receiver is not None:
                    self.rewrites.setdefault(
                        receiver, (node.lineno, node.col_offset,
                                   "unlinks"))


def check_module(tree: ast.Module, path: str) -> List[Finding]:
    """Run both atomicity rules over one experiments module."""
    if not in_scope(path):
        return []
    findings: List[Finding] = []
    scopes: List[Tuple[str, List[ast.stmt]]] = [
        ("<module>", tree.body)]
    for info in module_functions(tree):
        scopes.append((info.qualname, info.node.body))

    for name, body in scopes:
        if name == "<module>":
            # module level: only statements outside function/class defs
            body = [stmt for stmt in body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        scan = _FunctionScan()
        scan.scan(body)
        if not scan.has_replace:
            for line, col, what in scan.writes:
                findings.append(Finding(
                    path=path, line=line, col=col, rule=RULE_NONATOMIC,
                    message=(f"{what} in {name} without tmp-write+"
                             f"rename — a killed worker leaves a torn "
                             f"file; use repro.core.artifacts."
                             f"atomic_write_text/json")))
        for chain, read_line in sorted(scan.reads.items()):
            hit = scan.rewrites.get(chain)
            if hit is None or scan.has_generation_check:
                continue
            line, col, verb = hit
            findings.append(Finding(
                path=path, line=line, col=col, rule=RULE_RMW,
                message=(f"{name} reads {chain} (line {read_line}) "
                         f"then {verb} it with no generation/"
                         f"fingerprint check — a concurrent campaign "
                         f"process can change it in between")))
    return findings
