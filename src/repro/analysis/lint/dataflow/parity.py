"""Fast-path parity: structural differ for duplicated hot paths.

PR 6 introduced two places where the same behavior is deliberately
written twice for speed, with a comment promising the copies stay
bit-identical:

* ``Engine._run_fast`` vs ``Engine._run_instrumented`` — the fast run
  loop is the instrumented one minus observer branches;
* the fused per-core tick closures (``CfsScheduler.make_tick_hook``,
  ``UleScheduler.make_tick_hook``) — manual inlines of
  ``Engine._tick`` → ``Engine._update_curr``.

This module turns those comments into lint rules:

``fastpath-parity``
    Normalize both run loops (alias substitution, ``self`` →
    ``$engine``, observer-branch elision, dead-store elimination) and
    require the remaining behavior-affecting statement sequences to be
    structurally identical; report the first divergence.

``tickhook-parity``
    Derive *anchor* statements from the normalized generic chain (the
    accounting sequence of ``_update_curr``, the NO_HZ parking triple
    of ``_tick``, the tick repost, the dispatch call) and require every
    fused closure to contain the accounting anchors as an ordered
    subsequence and the rest by presence.  Scheduler-specific inlined
    work (``update_curr``/``task_tick`` bodies) is free to differ;
    guard *conditions* are not compared (``needs_tick`` is specialized
    per scheduler by design).

Normalization rules (shared):

1. drop the docstring;
2. substitute single-assignment locals whose RHS is a pure
   ``Name``/``Attribute`` chain (``events = self.events`` …) into
   their uses, transitively;
3. canonical renames: ``self`` → ``$engine`` in engine methods;
   ``self.engine`` → ``$engine`` then ``self`` → ``$sched`` in
   scheduler hooks;
4. elide statements mentioning observers (``$engine.profiler``,
   ``$engine.sanitizer``, ``timestamp``); collapse ``if`` statements
   whose test mentions an observer when the stripped branches agree;
5. remove dead stores of pure chains (the alias assignments).

Fused hooks only exist when ``Engine.faults is None`` (see
``Engine._tick_callback``), so the fault-adjusted repost time in
``_tick`` is checked by presence, not structurally.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Tuple

from ..findings import Finding

RULE_FASTPATH = "fastpath-parity"
RULE_TICKHOOK = "tickhook-parity"

#: observer roots elided from the instrumented loop (post-rename
#: chains, plus bare names)
OBSERVER_CHAINS = frozenset({"$engine.profiler", "$engine.sanitizer"})
OBSERVER_NAMES = frozenset({"timestamp"})


def _chain_str(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_pure_chain(node: ast.AST) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name)


class _ChainRenamer(ast.NodeTransformer):
    """Replace whole Name/Attribute chains with canonical names.

    Chain renames must complete before bare-name renames, otherwise
    ``self`` → ``$sched`` destroys the ``self.engine`` chain before it
    can match — callers run one instance per mapping kind.
    """

    def __init__(self, chains: Dict[str, str], names: Dict[str, str]):
        self.chains = chains
        self.names = names

    def visit_Attribute(self, node: ast.Attribute):
        self.generic_visit(node)  # innermost chains first
        chain = _chain_str(node)
        if chain is not None and chain in self.chains:
            return ast.copy_location(
                ast.Name(id=self.chains[chain], ctx=node.ctx), node)
        return node

    def visit_Name(self, node: ast.Name):
        if node.id in self.chains:
            return ast.copy_location(
                ast.Name(id=self.chains[node.id], ctx=node.ctx), node)
        if node.id in self.names:
            return ast.copy_location(
                ast.Name(id=self.names[node.id], ctx=node.ctx), node)
        return node


class _AliasSubstituter(ast.NodeTransformer):
    def __init__(self, aliases: Dict[str, ast.expr]):
        self.aliases = aliases
        self.changed = False

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.aliases:
            self.changed = True
            return ast.copy_location(
                copy.deepcopy(self.aliases[node.id]), node)
        return node


def _store_counts(node: ast.AST) -> Dict[str, int]:
    """How many times each bare name is stored (any scope)."""
    counts: Dict[str, int] = {}

    def bump(name: str) -> None:
        counts[name] = counts.get(name, 0) + 1

    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)):
            bump(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bump(sub.name)
        elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, ast.Name):
            bump(sub.target.id)  # Store ctx already counted; weight it
    return counts


def _collect_aliases(scope_nodes: List[ast.AST]) -> Dict[str, ast.expr]:
    """name -> pure-chain RHS for single-assignment alias locals."""
    counts: Dict[str, int] = {}
    for node in scope_nodes:
        for name, n in _store_counts(node).items():
            counts[name] = counts.get(name, 0) + n
    aliases: Dict[str, ast.expr] = {}
    for node in scope_nodes:
        for sub in ast.walk(node):
            target = None
            value = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name):
                target, value = sub.targets[0].id, sub.value
            elif isinstance(sub, ast.AnnAssign) \
                    and isinstance(sub.target, ast.Name) \
                    and sub.value is not None:
                target, value = sub.target.id, sub.value
            if target is None or value is None:
                continue
            if counts.get(target, 0) != 1:
                continue
            if not _is_pure_chain(value):
                continue
            # the chain root must itself be stable (a parameter or
            # another alias), or substitution would change meaning
            root = value
            while isinstance(root, ast.Attribute):
                root = root.value
            root_name = root.id  # _is_pure_chain guarantees Name
            if counts.get(root_name, 0) > 1:
                continue
            aliases[target] = value
    return aliases


def _mentions_observer(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in OBSERVER_NAMES:
            return True
        if isinstance(sub, ast.Attribute):
            chain = _chain_str(sub)
            if chain is not None and chain in OBSERVER_CHAINS:
                return True
    return False


def _dumps(stmts: List[ast.stmt]) -> List[str]:
    return [ast.dump(s) for s in stmts]


def _elide_observers(stmts: List[ast.stmt]) -> List[ast.stmt]:
    out: List[ast.stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            body = _elide_observers(stmt.body)
            orelse = _elide_observers(stmt.orelse)
            if _mentions_observer(stmt.test):
                if _dumps(body) == _dumps(orelse):
                    out.extend(body)
                elif not body:
                    out.extend(orelse)
                elif not orelse:
                    out.extend(body)
                else:
                    # stripped branches still differ: keep, let the
                    # differ report it
                    stmt.body, stmt.orelse = body, orelse
                    out.append(stmt)
            else:
                stmt.body = body or [ast.Pass()]
                stmt.orelse = orelse
                out.append(stmt)
            continue
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor, ast.Try,
                             ast.With, ast.AsyncWith)):
            # recurse first: a loop *containing* observer statements
            # is not itself an observer statement
            for field in ("body", "orelse", "finalbody"):
                if hasattr(stmt, field) and getattr(stmt, field):
                    setattr(stmt, field,
                            _elide_observers(getattr(stmt, field))
                            or [ast.Pass()])
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    handler.body = _elide_observers(handler.body) \
                        or [ast.Pass()]
            out.append(stmt)
            continue
        if _mentions_observer(stmt):
            continue
        out.append(stmt)
    return out


def _dead_store_elim(stmts: List[ast.stmt]) -> List[ast.stmt]:
    """Drop ``x = <pure chain>`` when x is never loaded afterwards."""
    while True:
        loaded = set()
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Load):
                    loaded.add(sub.id)

        removed = False

        def sweep(seq: List[ast.stmt]) -> List[ast.stmt]:
            nonlocal removed
            out = []
            for stmt in seq:
                if isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and stmt.targets[0].id not in loaded \
                        and _is_pure_chain(stmt.value):
                    removed = True
                    continue
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name) \
                        and stmt.target.id not in loaded \
                        and stmt.value is not None \
                        and _is_pure_chain(stmt.value):
                    removed = True
                    continue
                for field in ("body", "orelse", "finalbody"):
                    if hasattr(stmt, field) and getattr(stmt, field):
                        setattr(stmt, field,
                                sweep(getattr(stmt, field)) or
                                [ast.Pass()])
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        handler.body = sweep(handler.body) or [ast.Pass()]
                out.append(stmt)
            return out

        stmts = sweep(stmts)
        if not removed:
            return stmts


class NormalizeSpec(NamedTuple):
    chain_renames: Dict[str, str]
    name_renames: Dict[str, str]
    elide: bool  # run the observer-elision pass


ENGINE_SPEC = NormalizeSpec({}, {"self": "$engine"}, elide=True)
SCHED_SPEC = NormalizeSpec({"self.engine": "$engine", "engine": "$engine"},
                           {"self": "$sched"}, elide=False)


def _strip_docstring(body: List[ast.stmt]) -> List[ast.stmt]:
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        return body[1:]
    return body


def normalize_body(body: List[ast.stmt], spec: NormalizeSpec,
                   extra_alias_scopes: Optional[List[ast.AST]] = None
                   ) -> List[ast.stmt]:
    body = [copy.deepcopy(stmt) for stmt in _strip_docstring(body)]
    holder = ast.Module(body=body, type_ignores=[])
    scopes: List[ast.AST] = [holder]
    if extra_alias_scopes:
        scopes.extend(extra_alias_scopes)
    aliases = _collect_aliases(scopes)
    for _ in range(10):
        sub = _AliasSubstituter(aliases)
        holder = sub.visit(holder)
        if not sub.changed:
            break
    holder = _ChainRenamer(spec.chain_renames, {}).visit(holder)
    holder = _ChainRenamer({}, spec.name_renames).visit(holder)
    stmts = holder.body
    # drop imports (the hooks re-import RUN_FOREVER locally)
    stmts = [s for s in stmts
             if not isinstance(s, (ast.Import, ast.ImportFrom))]
    if spec.elide:
        stmts = _elide_observers(stmts)
    stmts = _dead_store_elim(stmts)
    return stmts


# -- locating the functions ---------------------------------------------


def _find_method(tree: ast.Module, name: str):
    """First def ``name`` anywhere (class method or function)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


# -- the run-loop differ ------------------------------------------------


def _unparse_short(node: Optional[ast.AST], limit: int = 70) -> str:
    if node is None:
        return "<nothing>"
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = ast.dump(node)
    text = " ".join(text.split())
    return text if len(text) <= limit else text[:limit - 1] + "…"


def _first_divergence(a: List[ast.stmt], b: List[ast.stmt]
                      ) -> Optional[Tuple[Optional[ast.stmt],
                                          Optional[ast.stmt]]]:
    """First structurally differing statement pair (a=fast, b=instr)."""
    for sa, sb in zip(a, b):
        if ast.dump(sa) == ast.dump(sb):
            continue
        # recurse into matching compound headers to localize
        if type(sa) is type(sb):
            if isinstance(sa, (ast.While, ast.If)) \
                    and ast.dump(sa.test) == ast.dump(sb.test):
                inner = _first_divergence(sa.body, sb.body)
                if inner is None:
                    inner = _first_divergence(sa.orelse, sb.orelse)
                if inner is not None:
                    return inner
            if isinstance(sa, (ast.For, ast.AsyncFor)) \
                    and ast.dump(sa.iter) == ast.dump(sb.iter) \
                    and ast.dump(sa.target) == ast.dump(sb.target):
                inner = _first_divergence(sa.body, sb.body)
                if inner is not None:
                    return inner
            if isinstance(sa, ast.Try):
                for field in ("body", "orelse", "finalbody"):
                    inner = _first_divergence(getattr(sa, field),
                                              getattr(sb, field))
                    if inner is not None:
                        return inner
        return (sa, sb)
    if len(a) > len(b):
        return (a[len(b)], None)
    if len(b) > len(a):
        return (None, b[len(a)])
    return None


def check_fastpath(tree: ast.Module, path: str) -> List[Finding]:
    """Diff ``_run_fast`` against ``_run_instrumented`` in one module."""
    fast = _find_method(tree, "_run_fast")
    instr = _find_method(tree, "_run_instrumented")
    if fast is None and instr is None:
        return []
    if fast is None or instr is None:
        present = fast or instr
        return [Finding(
            path=path, line=present.lineno, col=present.col_offset,
            rule=RULE_FASTPATH,
            message=("only one of _run_fast/_run_instrumented is "
                     "defined — the loops are a mirrored pair"))]
    norm_fast = normalize_body(fast.body, ENGINE_SPEC)
    norm_instr = normalize_body(instr.body, ENGINE_SPEC)
    divergence = _first_divergence(norm_fast, norm_instr)
    if divergence is None:
        return []
    side_fast, side_instr = divergence
    anchor = side_fast or side_instr
    return [Finding(
        path=path,
        line=getattr(anchor, "lineno", fast.lineno),
        col=getattr(anchor, "col_offset", 0),
        rule=RULE_FASTPATH,
        message=(f"_run_fast and _run_instrumented diverge after "
                 f"normalization: fast has "
                 f"`{_unparse_short(side_fast)}`, instrumented has "
                 f"`{_unparse_short(side_instr)}` — mirror the edit "
                 f"in both loops"))]


# -- tick-hook anchors --------------------------------------------------


def _fallthrough_leaves(stmts: List[ast.stmt]) -> List[ast.stmt]:
    """Simple statements on paths that fall through, in order; guard
    branches ending in return/raise contribute nothing."""
    out: List[ast.stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            for branch in (stmt.body, stmt.orelse):
                if branch and isinstance(branch[-1],
                                         (ast.Return, ast.Raise,
                                          ast.Continue, ast.Break)):
                    continue
                out.extend(_fallthrough_leaves(branch))
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            out.extend(_fallthrough_leaves(stmt.body))
            out.extend(_fallthrough_leaves(stmt.orelse))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            out.extend(_fallthrough_leaves(stmt.body))
        elif isinstance(stmt, ast.Try):
            out.extend(_fallthrough_leaves(stmt.body))
            out.extend(_fallthrough_leaves(stmt.orelse))
            out.extend(_fallthrough_leaves(stmt.finalbody))
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Pass,
                               ast.Continue, ast.Break)):
            continue
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            continue
        else:
            out.append(stmt)
    return out


def _all_leaves(stmts: List[ast.stmt]) -> List[ast.stmt]:
    """Every simple statement, including return-terminated branches."""
    out: List[ast.stmt] = []
    for stmt in stmts:
        for field in ("body", "orelse", "finalbody"):
            if hasattr(stmt, field) and getattr(stmt, field) \
                    and not isinstance(stmt, (ast.FunctionDef,
                                              ast.AsyncFunctionDef,
                                              ast.ClassDef)):
                out.extend(_all_leaves(getattr(stmt, field)))
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                out.extend(_all_leaves(handler.body))
        if not isinstance(stmt, (ast.If, ast.For, ast.AsyncFor,
                                 ast.While, ast.With, ast.AsyncWith,
                                 ast.Try, ast.Return, ast.Raise,
                                 ast.Pass, ast.Continue, ast.Break,
                                 ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            out.append(stmt)
    return out


def _mentions_chain(node: ast.AST, chain_prefix: str) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            chain = _chain_str(sub)
            if chain is not None and chain.startswith(chain_prefix):
                return True
    return False


class TickContract(NamedTuple):
    """What every fused tick closure must reproduce."""

    accounting: List[ast.stmt]   # ordered anchors from _update_curr
    parking: List[ast.stmt]      # NO_HZ parking triple from _tick


def derive_tick_contract(engine_tree: ast.Module
                         ) -> Optional[TickContract]:
    update_curr = _find_method(engine_tree, "_update_curr")
    tick = _find_method(engine_tree, "_tick")
    if update_curr is None or tick is None:
        return None
    norm = normalize_body(update_curr.body, ENGINE_SPEC)
    leaves = _fallthrough_leaves(norm)
    # scheduler forwarding is what the hook replaces with inlined
    # per-class work — not an anchor
    accounting = [leaf for leaf in leaves
                  if not _mentions_chain(leaf, "$engine.scheduler")]
    parking: List[ast.stmt] = []
    norm_tick = normalize_body(tick.body, ENGINE_SPEC)
    for node in ast.walk(ast.Module(body=norm_tick, type_ignores=[])):
        if isinstance(node, ast.If):
            assigns_park = any(
                isinstance(sub, ast.Assign)
                and any(_chain_str(t) == "core.tick_stopped"
                        for t in sub.targets)
                for sub in ast.walk(node))
            if assigns_park:
                parking = [s for s in node.body
                           if not isinstance(s, ast.Return)]
                break
    return TickContract(accounting, parking)


def _closure_of(make_hook) -> Optional[ast.FunctionDef]:
    inner = [node for node in make_hook.body
             if isinstance(node, (ast.FunctionDef,
                                  ast.AsyncFunctionDef))]
    if not inner:
        return None
    for stmt in make_hook.body:
        if isinstance(stmt, ast.Return) \
                and isinstance(stmt.value, ast.Name):
            for cand in inner:
                if cand.name == stmt.value.id:
                    return cand
    return inner[-1]


def _is_repost_of_tick_event(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "repost"
            and bool(node.args)
            and _chain_str(node.args[0]) == "core.tick_event")


def check_tick_hook(make_hook, contract: TickContract,
                    path: str) -> List[Finding]:
    closure = _closure_of(make_hook)
    if closure is None:
        return []
    # enclosing aliases (engine = self.engine, tick_ns = self.tick_ns,
    # ...) flow into the closure; exclude the closure itself or its
    # stores would be double-counted against the normalized copy
    enclosing = [stmt for stmt in make_hook.body
                 if not isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))]
    norm = normalize_body(closure.body, SCHED_SPEC,
                          extra_alias_scopes=enclosing)
    findings: List[Finding] = []

    def emit(message: str) -> None:
        findings.append(Finding(
            path=path, line=closure.lineno, col=closure.col_offset,
            rule=RULE_TICKHOOK, message=message))

    # 1. ordered accounting anchors
    flat = _dumps(_fallthrough_leaves(norm))
    position = 0
    for anchor in contract.accounting:
        dump = ast.dump(anchor)
        while position < len(flat) and flat[position] != dump:
            position += 1
        if position == len(flat):
            emit(f"fused tick closure is missing (or reorders) the "
                 f"accounting statement `{_unparse_short(anchor)}` "
                 f"from Engine._update_curr")
            break
        position += 1
    # 2. parking triple by presence
    everything = _dumps(_all_leaves(norm))
    for stmt in contract.parking:
        if ast.dump(stmt) not in everything:
            emit(f"fused tick closure is missing the NO_HZ parking "
                 f"statement `{_unparse_short(stmt)}` from "
                 f"Engine._tick")
    # 3. tick repost + dispatch by presence
    holder = ast.Module(body=norm, type_ignores=[])
    if not any(_is_repost_of_tick_event(node)
               for node in ast.walk(holder)):
        emit("fused tick closure never reposts core.tick_event — "
             "the periodic tick would stop")
    has_dispatch = any(
        isinstance(node, ast.Call)
        and _chain_str(node.func) == "$engine._dispatch"
        for node in ast.walk(holder))
    if not has_dispatch:
        emit("fused tick closure never calls engine._dispatch(core) "
             "on need_resched")
    return findings


# -- project-level entry point ------------------------------------------


def check_parity(files: Dict[str, str]) -> List[Finding]:
    """Run both parity families over a set of {path: source} files.

    The engine module is discovered as the file defining
    ``_run_instrumented``; fused hooks as any ``make_tick_hook``
    containing a nested closure.  Files that fail to parse are skipped
    (the syntactic pass already reports them).
    """
    findings: List[Finding] = []
    trees: Dict[str, ast.Module] = {}
    for path, source in files.items():
        try:
            trees[path] = ast.parse(source)
        except SyntaxError:
            continue
    engine_path = None
    for path, tree in sorted(trees.items()):
        if _find_method(tree, "_run_instrumented") is not None \
                or _find_method(tree, "_run_fast") is not None:
            engine_path = path
            break
    contract: Optional[TickContract] = None
    if engine_path is not None:
        findings.extend(check_fastpath(trees[engine_path], engine_path))
        contract = derive_tick_contract(trees[engine_path])
    for path, tree in sorted(trees.items()):
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "make_tick_hook" \
                    and _closure_of(node) is not None:
                if contract is not None:
                    findings.extend(
                        check_tick_hook(node, contract, path))
    return findings
