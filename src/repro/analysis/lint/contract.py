"""Contract checks: Table 1 hooks and the FreeBSD API mapping.

Two families of findings, both anchored to real source locations:

``contract-*``
    Every registered :class:`~repro.sched.base.SchedClass` subclass
    must override the required Table 1 hooks, every overridden hook
    must keep the base signature (names and kinds of parameters; a
    subclass may append extra defaulted parameters), and ``name`` must
    be overridden from the base's ``"base"``.

``freebsd-api-*``
    ``sched/freebsd_api.py`` is the executable Table 1; each FreeBSD
    entry point must exist on :class:`FreeBSDSchedAdapter` and forward
    to exactly one Linux hook — the one its table row names.
"""

from __future__ import annotations

import ast
import inspect
import os
from typing import Dict, List, Optional, Tuple, Type

from .findings import Finding

#: hooks a scheduler MUST override (the abstract Table 1 core)
REQUIRED_HOOKS: Tuple[str, ...] = (
    "init_core", "enqueue_task", "dequeue_task", "pick_next",
    "select_task_rq", "runnable_threads",
)

#: every hook whose signature is contract-checked when overridden
CONTRACT_HOOKS: Tuple[str, ...] = REQUIRED_HOOKS + (
    "start", "yield_task", "check_preempt_wakeup", "task_tick",
    "idle_tick", "needs_tick", "task_fork", "task_dead", "task_waking",
    "task_nice_changed", "update_curr", "nr_runnable",
    "total_runnable",
)

#: Linux name in Table 1 -> the SchedClass method implementing it
LINUX_TO_METHOD: Dict[str, str] = {
    "enqueue_task": "enqueue_task",
    "dequeue_task": "dequeue_task",
    "yield_task": "yield_task",
    "pick_next_task": "pick_next",
    "put_prev_task": "update_curr",
    "select_task_rq": "select_task_rq",
}


def _location(cls: type, hook: Optional[str] = None) -> Tuple[str, int]:
    """Best-effort (path, line) for a class or one of its methods."""
    target = getattr(cls, hook) if hook else cls
    try:
        path = inspect.getsourcefile(target) or "<unknown>"
        _, line = inspect.getsourcelines(target)
    except (OSError, TypeError):
        path, line = "<unknown>", 0
    return path, line


def _param_shape(func) -> List[Tuple[str, object]]:
    """(name, kind) per parameter, ignoring annotations/defaults."""
    return [(p.name, p.kind)
            for p in inspect.signature(func).parameters.values()]


def check_sched_class(cls: type) -> List[Finding]:
    """Contract-check one SchedClass subclass."""
    from ...sched.base import SchedClass

    findings: List[Finding] = []
    cls_path, cls_line = _location(cls)

    for hook in REQUIRED_HOOKS:
        if getattr(cls, hook, None) is getattr(SchedClass, hook, None):
            findings.append(Finding(
                path=cls_path, line=cls_line, col=0,
                rule="contract-missing-hook",
                message=f"{cls.__name__} does not override required "
                        f"Table 1 hook {hook}()"))

    for hook in CONTRACT_HOOKS:
        impl = getattr(cls, hook, None)
        base = getattr(SchedClass, hook, None)
        if impl is None or base is None or impl is base:
            continue
        base_shape = _param_shape(base)
        impl_shape = _param_shape(impl)
        # extra trailing defaulted params are a compatible extension
        if impl_shape[:len(base_shape)] != base_shape:
            path, line = _location(cls, hook)
            findings.append(Finding(
                path=path, line=line, col=0, rule="contract-signature",
                message=f"{cls.__name__}.{hook} signature "
                        f"({', '.join(n for n, _ in impl_shape)}) "
                        f"does not match sched/base.py "
                        f"({', '.join(n for n, _ in base_shape)})"))

    if getattr(cls, "name", SchedClass.name) == SchedClass.name:
        findings.append(Finding(
            path=cls_path, line=cls_line, col=0, rule="contract-name",
            message=f"{cls.__name__} does not override the 'name' "
                    f"class attribute"))
    return findings


def registered_sched_classes() -> List[type]:
    """All concrete SchedClass subclasses defined inside ``repro.*``.

    Triggers builtin-scheduler registration first so the walk sees
    everything a user can select; test-defined fixture classes (module
    not under ``repro.``) are excluded so contract checks on the repo
    are not polluted by deliberately broken test subjects.
    """
    from ...sched.base import SchedClass
    from ...sched.registry import available_schedulers

    available_schedulers()  # force registration of the builtins

    seen: List[type] = []

    def walk(base: Type) -> None:
        for sub in base.__subclasses__():
            walk(sub)
            if sub.__module__.startswith("repro.") \
                    and not inspect.isabstract(sub):
                seen.append(sub)

    walk(SchedClass)
    return sorted(set(seen),
                  key=lambda c: (c.__module__, c.__qualname__))


def check_contracts() -> List[Finding]:
    """Contract-check every registered scheduler class."""
    findings: List[Finding] = []
    for cls in registered_sched_classes():
        findings.extend(check_sched_class(cls))
    return sorted(findings)


def _freebsd_api_path() -> str:
    from ... import sched
    return os.path.join(os.path.dirname(sched.__file__),
                        "freebsd_api.py")


def _sched_calls_in(func: ast.FunctionDef) -> List[Tuple[str, int]]:
    """(hook, line) for each ``self._sched.<hook>(...)`` call."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "_sched"
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"):
            out.append((target.attr, node.lineno))
    return out


def check_freebsd_api(source: Optional[str] = None,
                      path: Optional[str] = None) -> List[Finding]:
    """Check the adapter in ``freebsd_api.py`` against Table 1."""
    from ...sched.freebsd_api import TABLE1_MAPPINGS

    if path is None:
        path = _freebsd_api_path()
    if source is None:
        with open(path, "r") as fh:
            source = fh.read()

    findings: List[Finding] = []
    tree = ast.parse(source, filename=path)
    adapter: Optional[ast.ClassDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) \
                and node.name == "FreeBSDSchedAdapter":
            adapter = node
            break
    if adapter is None:
        return [Finding(path=path, line=1, col=0,
                        rule="freebsd-api-missing",
                        message="class FreeBSDSchedAdapter not found")]

    methods = {n.name: n for n in adapter.body
               if isinstance(n, ast.FunctionDef)}

    #: freebsd entry point -> Linux hook method its row requires
    expected: Dict[str, str] = {}
    for mapping in TABLE1_MAPPINGS:
        hook = LINUX_TO_METHOD.get(mapping.linux)
        if hook is None:
            findings.append(Finding(
                path=path, line=adapter.lineno, col=0,
                rule="freebsd-api-mapping",
                message=f"Table 1 row '{mapping.linux}' names an "
                        f"unknown SchedClass hook"))
            continue
        for freebsd_name in mapping.freebsd.split("/"):
            expected[freebsd_name.strip()] = hook

    for freebsd_name, hook in sorted(expected.items()):
        method = methods.get(freebsd_name)
        if method is None:
            findings.append(Finding(
                path=path, line=adapter.lineno, col=0,
                rule="freebsd-api-missing",
                message=f"Table 1 entry point {freebsd_name}() is not "
                        f"implemented on FreeBSDSchedAdapter"))
            continue
        hooks_called = sorted({h for h, _ in _sched_calls_in(method)})
        if len(hooks_called) != 1:
            called = ", ".join(hooks_called) or "none"
            findings.append(Finding(
                path=path, line=method.lineno, col=0,
                rule="freebsd-api-mapping",
                message=f"{freebsd_name}() must forward to exactly "
                        f"one Linux hook (calls: {called})"))
        elif hooks_called[0] != hook:
            findings.append(Finding(
                path=path, line=method.lineno, col=0,
                rule="freebsd-api-mapping",
                message=f"{freebsd_name}() forwards to "
                        f"{hooks_called[0]}() but Table 1 maps it to "
                        f"{hook}()"))

    for name, method in sorted(methods.items()):
        if name.startswith("sched_") and name not in expected:
            findings.append(Finding(
                path=path, line=method.lineno, col=0,
                rule="freebsd-api-unmapped",
                message=f"{name}() is not a Table 1 entry point; add "
                        f"it to TABLE1_MAPPINGS or rename it"))
    return sorted(findings)
