"""Findings, suppression comments, and report rendering for schedlint.

A :class:`Finding` pins one rule violation to a file/line/column.  The
suppression syntax is a per-line comment::

    t0 = time.time()  # schedlint: ignore[wall-clock] -- reason

``ignore[rule1,rule2]`` suppresses the listed rules on that line,
``ignore`` (no brackets) suppresses every rule.  A marker placed on a
comment-only line also covers the *next* line, for statements too long
to carry the comment themselves.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, Iterable, Optional

#: matches the suppression marker anywhere in a source line
SUPPRESS_RE = re.compile(
    r"#\s*schedlint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (or contract breach) at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.rule}: {self.message}"


def suppressions_in(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed rules (``None`` = all rules).

    A marker on a comment-only line is copied onto the following line
    as well, so long statements can be suppressed from the line above.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}

    def merge(lineno: int, rules: Optional[FrozenSet[str]]) -> None:
        if rules is None or out.get(lineno, frozenset()) is None:
            out[lineno] = None
        else:
            out[lineno] = out.get(lineno, frozenset()) | rules

    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            rules: Optional[FrozenSet[str]] = None
        else:
            rules = frozenset(
                r.strip() for r in listed.split(",") if r.strip())
        merge(lineno, rules)
        if text.lstrip().startswith("#"):
            merge(lineno + 1, rules)
    return out


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[FrozenSet[str]]]) -> bool:
    """True when ``finding``'s line carries a matching marker."""
    rules = suppressions.get(finding.line, frozenset())
    if finding.line in suppressions and rules is None:
        return True
    return finding.rule in (rules or frozenset())


def report_dict(findings: Iterable[Finding], paths: Iterable[str],
                rules: Iterable[str]) -> dict:
    """The machine-readable JSON report structure."""
    items = sorted(findings)
    counts: Dict[str, int] = {}
    for finding in items:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "tool": "schedlint",
        "version": 1,
        "paths": sorted(paths),
        "rules": sorted(rules),
        "findings": [asdict(f) for f in items],
        "counts": dict(sorted(counts.items())),
        "clean": not items,
    }


def write_report(path: str, report: dict) -> None:
    """Write the JSON report to ``path`` (atomically: a crash or
    ctrl-C mid-write never leaves a torn report)."""
    from ...core.artifacts import atomic_write_json
    atomic_write_json(path, report, sort_keys=False)
