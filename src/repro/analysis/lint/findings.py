"""Findings, suppression comments, and report rendering for schedlint.

A :class:`Finding` pins one rule violation to a file/line/column.  The
suppression syntax is a per-line comment::

    t0 = time.time()  # schedlint: ignore[wall-clock] -- reason

``ignore[rule1,rule2]`` suppresses the listed rules on that line,
``ignore`` (no brackets) suppresses every rule.  A marker placed on a
comment-only line also covers the *next* line, for statements too long
to carry the comment themselves.

File-scope suppression covers a whole module for *named* rules only::

    # schedlint: file-ignore[taint-set-order] -- reason

and must sit in the module docstring region (above the first real
statement); anywhere else it is inert.  In the ``--dataflow`` tier a
marker that suppresses nothing is itself a finding
(``unused-suppression``), so stale ignores cannot accumulate — a
marker naming rules that were *not all enabled* in the current run is
never flagged, which keeps a tree clean under both tiers at once.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: matches the per-line suppression marker anywhere in a source line
SUPPRESS_RE = re.compile(
    r"#\s*schedlint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")

#: matches the file-scope suppression marker
FILE_SUPPRESS_RE = re.compile(
    r"#\s*schedlint:\s*file-ignore(?:\[(?P<rules>[^\]]*)\])?")

#: the rule id reported for markers that suppress nothing
UNUSED_SUPPRESSION = "unused-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation (or contract breach) at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """Render as the conventional ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: " \
               f"{self.rule}: {self.message}"


def _comment_lines(source: str) -> List[Tuple[int, str, bool]]:
    """``(lineno, comment_text, comment_only_line)`` per real comment.

    Tokenizing (rather than regex-scanning raw lines) keeps marker
    *examples* inside docstrings and string literals inert — only an
    actual ``#`` comment can suppress anything.  Files that fail to
    tokenize fall back to the raw line scan.
    """
    lines = source.splitlines()
    out: List[Tuple[int, str, bool]] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError,
            ValueError):
        for lineno, text in enumerate(lines, start=1):
            out.append((lineno, text, text.lstrip().startswith("#")))
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno = tok.start[0]
        raw = lines[lineno - 1] if lineno <= len(lines) else ""
        out.append((lineno, tok.string, raw.lstrip().startswith("#")))
    return out


def suppressions_in(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed rules (``None`` = all rules).

    A marker on a comment-only line is copied onto the following line
    as well, so long statements can be suppressed from the line above.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}

    def merge(lineno: int, rules: Optional[FrozenSet[str]]) -> None:
        if rules is None or out.get(lineno, frozenset()) is None:
            out[lineno] = None
        else:
            out[lineno] = out.get(lineno, frozenset()) | rules

    for lineno, text, comment_only in _comment_lines(source):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            rules: Optional[FrozenSet[str]] = None
        else:
            rules = frozenset(
                r.strip() for r in listed.split(",") if r.strip())
        merge(lineno, rules)
        if comment_only:
            merge(lineno + 1, rules)
    return out


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[FrozenSet[str]]]) -> bool:
    """True when ``finding``'s line carries a matching marker."""
    rules = suppressions.get(finding.line, frozenset())
    if finding.line in suppressions and rules is None:
        return True
    return finding.rule in (rules or frozenset())


@dataclass
class Marker:
    """One suppression marker, with usage tracking.

    ``rules is None`` means a bare ``ignore`` (every rule; line scope
    only — file scope requires named rules).  ``covers`` is the set of
    line numbers a line-scope marker applies to; file-scope markers
    cover everything when ``valid``.
    """

    line: int
    rules: Optional[FrozenSet[str]]
    scope: str                     # "line" | "file"
    covers: FrozenSet[int] = frozenset()
    valid: bool = True             # file markers outside the docstring
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        if self.scope == "file":
            if not self.valid or self.rules is None:
                return False
            return finding.rule in self.rules
        if finding.line not in self.covers:
            return False
        return self.rules is None or finding.rule in self.rules


def _parse_rules(listed: Optional[str]) -> Optional[FrozenSet[str]]:
    if listed is None:
        return None
    return frozenset(r.strip() for r in listed.split(",") if r.strip())


def file_scope_boundary(source: str) -> int:
    """Last line of the module docstring region (file-ignore markers
    below this are inert).

    The region runs through the module docstring up to — but not
    including — the first real statement, so the marker's natural home
    is a comment between the docstring and the imports.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return 0
    if not tree.body:
        return len(source.splitlines())  # comment-only module
    first = tree.body[0]
    if isinstance(first, ast.Expr) and isinstance(first.value,
                                                  ast.Constant) \
            and isinstance(first.value.value, str):
        if len(tree.body) > 1:
            return max(first.value.end_lineno or first.lineno,
                       tree.body[1].lineno - 1)
        return len(source.splitlines())  # docstring-only module
    return max(0, first.lineno - 1)


def markers_in(source: str) -> List[Marker]:
    """Every suppression marker in the file, both scopes."""
    out: List[Marker] = []
    boundary = file_scope_boundary(source)
    for lineno, text, comment_only in _comment_lines(source):
        file_match = FILE_SUPPRESS_RE.search(text)
        if file_match is not None:
            out.append(Marker(
                line=lineno, rules=_parse_rules(file_match.group("rules")),
                scope="file", valid=lineno <= boundary))
            continue
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        covers = {lineno}
        if comment_only:
            covers.add(lineno + 1)
        out.append(Marker(
            line=lineno, rules=_parse_rules(match.group("rules")),
            scope="line", covers=frozenset(covers)))
    return out


def apply_markers(findings: Iterable[Finding], markers: List[Marker],
                  enabled_rules: FrozenSet[str], path: str,
                  flag_unused: bool) -> List[Finding]:
    """Filter suppressed findings; optionally report unused markers.

    A marker counts as *unused* only when every rule it names was
    enabled in this run and it still suppressed nothing — markers for
    disabled rules (the other tier's rules) are left alone, so one
    tree stays clean under both tiers simultaneously.
    """
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for marker in markers:
            if marker.matches(finding):
                marker.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    if not flag_unused:
        return kept
    for marker in markers:
        if marker.used:
            continue
        if marker.scope == "file":
            if marker.rules is None:
                kept.append(Finding(
                    path=path, line=marker.line, col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=("file-ignore requires explicit rules "
                             "(file-ignore[rule] -- reason); a bare "
                             "file-wide ignore is never honored")))
            elif not marker.valid:
                kept.append(Finding(
                    path=path, line=marker.line, col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=("file-ignore marker outside the module "
                             "docstring region is inert — move it "
                             "above the first statement")))
            elif marker.rules <= enabled_rules:
                kept.append(Finding(
                    path=path, line=marker.line, col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=(f"file-ignore[{','.join(sorted(marker.rules))}] "
                             f"suppressed nothing — remove the stale "
                             f"marker")))
        else:
            if marker.rules is None or marker.rules <= enabled_rules:
                named = "ignore" if marker.rules is None else \
                    f"ignore[{','.join(sorted(marker.rules))}]"
                kept.append(Finding(
                    path=path, line=marker.line, col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=(f"{named} suppressed nothing — remove "
                             f"the stale marker")))
    return kept


def report_dict(findings: Iterable[Finding], paths: Iterable[str],
                rules: Iterable[str]) -> dict:
    """The machine-readable JSON report structure."""
    items = sorted(findings)
    counts: Dict[str, int] = {}
    for finding in items:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "tool": "schedlint",
        "version": 1,
        "paths": sorted(paths),
        "rules": sorted(rules),
        "findings": [asdict(f) for f in items],
        "counts": dict(sorted(counts.items())),
        "clean": not items,
    }


def write_report(path: str, report: dict) -> None:
    """Write the JSON report to ``path`` (atomically: a crash or
    ctrl-C mid-write never leaves a torn report)."""
    from ...core.artifacts import atomic_write_json
    atomic_write_json(path, report, sort_keys=False)
