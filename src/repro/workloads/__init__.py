"""Behavioural models of the paper's 37 benchmark applications plus
the synthetic workloads used by the experiments."""

from .apache import ApacheWorkload
from .base import (BarrierWorkload, ComputeWorkload, ServerWorkload,
                   Workload)
from .cray import CrayWorkload
from .fibo import FiboWorkload
from .hackbench import HackbenchWorkload
from .noise import KernelNoiseWorkload
from .parsec import PARSEC_APPS, PipelineWorkload
from .nas import NAS_KERNELS
from .registry import (ALL_WORKLOADS, FIGURE5_APPS, FIGURE8_EXTRA,
                       make_workload, workload_names)
from .rocksdb import RocksDbWorkload
from .spinner import SpinnerWorkload
from .sysbench import SysbenchWorkload

__all__ = [
    "Workload", "ComputeWorkload", "BarrierWorkload", "ServerWorkload",
    "PipelineWorkload",
    "FiboWorkload", "SysbenchWorkload", "ApacheWorkload", "CrayWorkload",
    "HackbenchWorkload", "RocksDbWorkload", "SpinnerWorkload",
    "KernelNoiseWorkload",
    "NAS_KERNELS", "PARSEC_APPS",
    "ALL_WORKLOADS", "FIGURE5_APPS", "FIGURE8_EXTRA",
    "make_workload", "workload_names",
]
