"""Registry of the paper's benchmark applications.

Maps each bar of Figs. 5 and 8 to a workload factory.  The order below
is the order of the x-axis in the paper's figures.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.errors import WorkloadError
from . import nas, parsec, phoronix
from .apache import ApacheWorkload
from .base import Workload
from .cray import CrayWorkload
from .fibo import FiboWorkload
from .hackbench import HackbenchWorkload
from .rocksdb import RocksDbWorkload
from .sysbench import SysbenchWorkload


def _cray_small() -> CrayWorkload:
    """c-ray sized for the Fig. 5/8 performance comparison (the full
    512-thread configuration is used by the Fig. 7 experiment)."""
    from ..core.clock import msec
    return CrayWorkload(nthreads=64, fork_spacing_ns=msec(4),
                        compute_ns=msec(300))


#: The Fig. 5 x-axis (single-core and multicore performance bars).
FIGURE5_APPS: Dict[str, Callable[[], Workload]] = {
    "Build-apache": phoronix.build_apache,
    "Build-php": phoronix.build_php,
    "7zip": phoronix.sevenzip,
    "Gzip": phoronix.gzip_,
    "C-Ray": _cray_small,
    "DCraw": phoronix.dcraw,
    "himeno": phoronix.himeno,
    "hmmer": phoronix.hmmer,
    "scimark2-(1)": lambda: phoronix.scimark(1),
    "scimark2-(2)": lambda: phoronix.scimark(2),
    "scimark2-(3)": lambda: phoronix.scimark(3),
    "scimark2-(4)": lambda: phoronix.scimark(4),
    "scimark2-(5)": lambda: phoronix.scimark(5),
    "scimark2-(6)": lambda: phoronix.scimark(6),
    "john-(1)": lambda: phoronix.john(1),
    "john-(2)": lambda: phoronix.john(2),
    "john-(3)": lambda: phoronix.john(3),
    "Apache": ApacheWorkload,
    "BT": nas.bt,
    "CG": nas.cg,
    "DC": nas.dc,
    "EP": nas.ep,
    "FT": nas.ft,
    "IS": nas.is_,
    "LU": nas.lu,
    "MG": nas.mg,
    "SP": nas.sp,
    "UA": nas.ua,
    "Sysbench": SysbenchWorkload,
    "Rocksdb": RocksDbWorkload,
    "blackscholes": parsec.blackscholes,
    "bodytrack": parsec.bodytrack,
    "canneal": parsec.canneal,
    "facesim": parsec.facesim,
    "ferret": parsec.ferret,
    "fluidanimate": parsec.fluidanimate,
    "freqmine": parsec.freqmine,
    "raytrace": parsec.raytrace,
    "streamcluster": parsec.streamcluster,
    "swaptions": parsec.swaptions,
    "vips": parsec.vips,
    "x264": parsec.x264,
}

#: Fig. 8 adds the two hackbench configurations.
FIGURE8_EXTRA: Dict[str, Callable[[], Workload]] = {
    "Hackb-800": lambda: HackbenchWorkload(groups=20, fan=20, loops=10),
    "Hackb-10": lambda: HackbenchWorkload(groups=1, fan=5, loops=40),
}

#: Everything by name, for the CLI and tests.
ALL_WORKLOADS: Dict[str, Callable[[], Workload]] = {
    **FIGURE5_APPS,
    **FIGURE8_EXTRA,
    "fibo": FiboWorkload,
    "c-ray-512": CrayWorkload,
}


def make_workload(name: str) -> Workload:
    """Instantiate a registered workload by its figure label."""
    try:
        factory = ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise WorkloadError(
            f"unknown workload {name!r} (known: {known})") from None
    return factory()


def workload_names() -> list[str]:
    """All registered workload names (figure order first)."""
    return list(ALL_WORKLOADS)
