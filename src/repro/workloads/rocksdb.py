"""RocksDB read-write benchmark (§4.2).

A read-while-writing workload chosen by the authors "to schedule
threads with different behaviors": reader threads are short-lived CPU
bursts between I/O waits (interactive-leaning), while compaction /
writer threads run long flushes (batch-leaning).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import Run, Sleep, ThreadSpec
from ..core.clock import NSEC_PER_SEC, msec, usec
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class RocksDbWorkload(Workload):
    """Readers (mostly sleeping) + writers (compaction bursts)."""

    app = "Rocksdb"

    def __init__(self, nreaders: int = 16, nwriters: int = 2,
                 read_ns: int = usec(300), read_wait_ns: int = msec(2),
                 compact_ns: int = msec(20), flush_wait_ns: int = msec(8),
                 total_reads: int = 20_000, name: str = "rocksdb"):
        super().__init__(name)
        self.nreaders = nreaders
        self.nwriters = nwriters
        self.read_ns = read_ns
        self.read_wait_ns = read_wait_ns
        self.compact_ns = compact_ns
        self.flush_wait_ns = flush_wait_ns
        self.total_reads = total_reads
        self.completed_reads = 0
        self.finished_at = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        for i in range(self.nreaders):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/reader{i}", self._reader), at=at)
        for i in range(self.nwriters):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/writer{i}", self._writer), at=at)

    @property
    def finished(self) -> bool:
        return self.completed_reads >= self.total_reads

    def _reader(self, ctx):
        latency = ctx.metrics.latency(f"{self.app}.latency")
        while not self.finished:
            before = ctx.now
            yield Sleep(ctx.rng.jitter_ns(self.read_wait_ns, 0.3))
            if self.finished:
                break
            arrival = ctx.now
            yield Run(self.read_ns)
            self.completed_reads += 1
            latency.record(ctx.now - arrival)
            if self.finished and self.finished_at is None:
                self.finished_at = ctx.now

    def _writer(self, ctx):
        while not self.finished:
            yield Sleep(ctx.rng.jitter_ns(self.flush_wait_ns, 0.3))
            if self.finished:
                break
            yield Run(ctx.rng.jitter_ns(self.compact_ns, 0.2))

    def done(self, engine: "Engine") -> bool:
        return self.finished

    def performance(self, engine: "Engine") -> float:
        """Read operations per second (up to the last read)."""
        end = self.finished_at if self.finished_at is not None \
            else engine.now
        elapsed = end - (self._launched_at or 0)
        if elapsed <= 0:
            return 0.0
        return self.completed_reads * NSEC_PER_SEC / elapsed
