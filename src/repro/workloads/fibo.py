"""fibo — the paper's synthetic CPU hog (§4.2, §5.1).

A single thread computing Fibonacci numbers: pure compute, never
sleeps.  Under ULE its interactivity penalty climbs to 100 and it is
classified batch, making it starvable by any interactive load (Fig. 1,
Fig. 2, Table 2).
"""

from __future__ import annotations

from ..core.clock import sec
from .base import ComputeWorkload


class FiboWorkload(ComputeWorkload):
    """One thread, ``work_ns`` of uninterrupted compute."""

    def __init__(self, work_ns: int = sec(16), name: str = "fibo"):
        super().__init__(app="fibo", nthreads=1, work_ns=work_ns,
                         chunk_ns=work_ns, name=name)

    @property
    def thread(self):
        return self._threads[0] if self._threads else None
