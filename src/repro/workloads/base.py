"""Workload framework and parametric behaviour archetypes.

The paper's 37 applications fall into a handful of behavioural shapes
that determine how a scheduler treats them:

* **independent compute** — threads that burn CPU and exit (fibo,
  compression, image processing, crypto);
* **barrier-phased compute** — HPC kernels: one thread per core,
  iterations separated by (spin-)barriers (NAS, most of PARSEC);
* **closed-loop client/server** — mostly-sleeping worker pools driven
  by requests (sysbench, apache, RocksDB);
* **pipelines** — stages connected by queues (ferret, hackbench).

Each concrete application instantiates one of these archetypes with
calibrated parameters plus its documented quirks (sysbench's fork-time
interactivity inheritance, c-ray's cascading barrier, scimark's JVM
background threads, MG's 100 ms spin barriers...).

A :class:`Workload` knows how to launch itself into an engine, report
completion, and compute the paper's "performance" number (ops/sec for
databases and NAS, 1/time for everything else; higher is better).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from ..core.actions import Run, Sleep, ThreadSpec
from ..core.clock import NSEC_PER_SEC
from ..core.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.thread import SimThread


class Workload(abc.ABC):
    """A launchable application model."""

    #: application label; threads carry it (cgroups group by it)
    app: str = "workload"

    def __init__(self, name: Optional[str] = None):
        self.name = name or self.app
        self._threads: list["SimThread"] = []
        self._launched_at: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    def launch(self, engine: "Engine", at: int = 0) -> None:
        """Create this workload's initial threads in ``engine``."""
        if self._launched_at is not None:
            raise WorkloadError(f"{self.name} already launched")
        self._launched_at = at
        self._do_launch(engine, at)

    @abc.abstractmethod
    def _do_launch(self, engine: "Engine", at: int) -> None:
        ...

    def spawn(self, engine: "Engine", spec: ThreadSpec,
              at: Optional[int] = None) -> "SimThread":
        """Spawn a top-level thread belonging to this workload."""
        spec.app = self.app
        thread = engine.spawn(spec, at=at)
        self._threads.append(thread)
        return thread

    # -- results ----------------------------------------------------------

    def threads(self, engine: "Engine") -> list["SimThread"]:
        """All threads of this app, including forked descendants."""
        return engine.threads_of_app(self.app)

    def done(self, engine: "Engine") -> bool:
        """True when the workload finished its work."""
        mine = self.threads(engine)
        return bool(mine) and all(t.has_exited for t in mine)

    def completion_time(self, engine: "Engine") -> int:
        """Wall time from launch to the last thread's exit."""
        mine = self.threads(engine)
        if not mine or not self.done(engine):
            raise WorkloadError(f"{self.name} not finished")
        start = self._launched_at or 0
        return max(t.exited_at for t in mine) - start

    def performance(self, engine: "Engine") -> float:
        """The paper's metric: default 1 / execution time (in 1/s)."""
        return NSEC_PER_SEC / self.completion_time(engine)

    def total_runtime(self, engine: "Engine") -> int:
        """Total CPU time consumed by this workload's threads."""
        return sum(t.total_runtime for t in self.threads(engine))


# ----------------------------------------------------------------------
# archetype: independent compute
# ----------------------------------------------------------------------

class ComputeWorkload(Workload):
    """``nthreads`` independent CPU burners, ``work_ns`` each.

    ``chunk_ns`` splits the work into pieces (a thread yields no
    scheduling events during one chunk); with ``jitter`` the chunks
    vary per-thread, modelling input-dependent imbalance.
    """

    def __init__(self, app: str, nthreads: Optional[int], work_ns: int,
                 chunk_ns: Optional[int] = None, jitter: float = 0.0,
                 name: Optional[str] = None):
        self.app = app
        super().__init__(name)
        if (nthreads is not None and nthreads < 1) or work_ns <= 0:
            raise WorkloadError("need >= 1 thread and positive work")
        #: None = one thread per core, resolved at launch
        self.nthreads = nthreads
        self.work_ns = work_ns
        self.chunk_ns = chunk_ns or work_ns
        self.jitter = jitter

    def _do_launch(self, engine: "Engine", at: int) -> None:
        if self.nthreads is None:
            self.nthreads = len(engine.machine)
        for i in range(self.nthreads):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/{i}", self._behavior_for(i)), at=at)

    def _behavior_for(self, index: int):
        def behavior(ctx):
            remaining = ctx.rng.jitter_ns(self.work_ns, self.jitter)
            while remaining > 0:
                chunk = min(self.chunk_ns, remaining)
                yield Run(chunk)
                remaining -= chunk
        return behavior


# ----------------------------------------------------------------------
# archetype: barrier-phased compute (HPC)
# ----------------------------------------------------------------------

class BarrierWorkload(Workload):
    """HPC kernel: ``nthreads`` threads, ``iterations`` compute phases
    of ``phase_ns`` separated by barriers.

    ``spin_ns > 0`` uses hybrid spin-then-sleep barriers (MG spins
    ~100 ms, §6.3).  ``imbalance`` adds per-thread phase-length jitter,
    making stragglers.  Performance is iterations/second (the NAS
    "ops" convention).
    """

    def __init__(self, app: str, nthreads: Optional[int], iterations: int,
                 phase_ns: int, spin_ns: int = 0, imbalance: float = 0.0,
                 io_ns: int = 0, name: Optional[str] = None):
        self.app = app
        super().__init__(name)
        #: None = one thread per core ("MG spawns as many threads as
        #: there are cores in the machine")
        self.nthreads = nthreads
        self.iterations = iterations
        self.phase_ns = phase_ns
        self.spin_ns = spin_ns
        self.imbalance = imbalance
        #: voluntary I/O sleep inside each phase (DC is I/O heavy)
        self.io_ns = io_ns
        self._barrier = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.barrier import Barrier
        if self.nthreads is None:
            self.nthreads = len(engine.machine)
        self._barrier = Barrier(engine, self.nthreads,
                                name=f"{self.app}.barrier",
                                spin_ns=self.spin_ns)
        for i in range(self.nthreads):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/{i}", self._behavior_for(i)), at=at)

    def _behavior_for(self, index: int):
        def behavior(ctx):
            for _ in range(self.iterations):
                yield Run(ctx.rng.jitter_ns(self.phase_ns, self.imbalance))
                if self.io_ns:
                    yield Sleep(self.io_ns)
                yield from self._barrier.wait()
        return behavior

    def performance(self, engine: "Engine") -> float:
        """Iterations per second."""
        return self.iterations * NSEC_PER_SEC / self.completion_time(engine)


# ----------------------------------------------------------------------
# archetype: closed-loop client/server worker pool
# ----------------------------------------------------------------------

class ServerWorkload(Workload):
    """A pool of mostly-sleeping workers serving timed requests.

    Each worker loops: block for a request, run ``service_ns``, post
    the response.  ``nclients`` closed-loop clients each keep
    ``outstanding`` requests in flight and "think" for ``think_ns``
    between receiving a response and sending the next request.

    Workers sleep while waiting — under ULE they classify interactive
    as long as their duty cycle stays under ~38 %.

    Performance is completed requests/second; per-request latency is
    recorded in the engine metrics under ``<app>.latency``.
    """

    def __init__(self, app: str, nworkers: int, service_ns: int,
                 nclients: int = 1, think_ns: int = 0,
                 outstanding: Optional[int] = None,
                 total_requests: Optional[int] = None,
                 name: Optional[str] = None):
        self.app = app
        super().__init__(name)
        self.nworkers = nworkers
        self.service_ns = service_ns
        self.nclients = nclients
        self.think_ns = think_ns
        self.outstanding = outstanding if outstanding is not None \
            else nworkers
        self.total_requests = total_requests
        self._requests = None
        self._responses = None
        self.completed = 0
        self.finished_at = None
        self._poisoned = False

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.channel import Channel
        self._requests = Channel(engine, f"{self.app}.req")
        self._responses = Channel(engine, f"{self.app}.rsp")
        for i in range(self.nworkers):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/worker{i}", self._worker), at=at)
        for i in range(self.nclients):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/client{i}", self._client), at=at)

    @property
    def finished(self) -> bool:
        return (self.total_requests is not None
                and self.completed >= self.total_requests)

    def _worker(self, ctx):
        latency = ctx.metrics.latency(f"{self.app}.latency")
        while True:
            issued_at = yield self._requests.get()
            if issued_at is None:
                return  # poison pill
            yield Run(self.service_ns)
            self.completed += 1
            latency.record(ctx.now - issued_at)
            if self.finished and self.finished_at is None:
                self.finished_at = ctx.now
            yield self._responses.put(ctx.now)


    def _client(self, ctx):
        share = self.outstanding // self.nclients or 1
        for _ in range(share):
            yield self._requests.put(ctx.now)
        while not self.finished:
            yield self._responses.get()
            if self.finished:
                break
            if self.think_ns:
                yield Sleep(self.think_ns)
            yield self._requests.put(ctx.now)
        # drain: the first client to observe completion poisons the
        # workers so the workload can exit
        if not self._poisoned:
            self._poisoned = True
            for _ in range(self.nworkers):
                yield self._requests.put(None)
            for _ in range(self.nclients - 1):
                yield self._responses.put(None)  # release peer clients

    def done(self, engine: "Engine") -> bool:
        if self.total_requests is None:
            return False
        return self.finished

    def performance(self, engine: "Engine") -> float:
        """Completed requests per second (up to the last request)."""
        end = self.finished_at if self.finished_at is not None \
            else engine.now
        elapsed = end - (self._launched_at or 0)
        if elapsed <= 0:
            return 0.0
        return self.completed * NSEC_PER_SEC / elapsed

    def throughput(self, engine: "Engine") -> float:
        """Alias of :meth:`performance` (requests per second)."""
        return self.performance(engine)

    def mean_latency_ns(self, engine: "Engine") -> float:
        """Mean per-request latency recorded so far."""
        return engine.metrics.latency(f"{self.app}.latency").mean
