"""The NAS Parallel Benchmarks (§4.2, §6.3).

HPC kernels: one thread per core, iterations of compute separated by
barriers.  The parameters encode the paper's observations:

* **MG, FT, UA** use hybrid *spin* barriers ("when a thread has
  finished its computation, it waits on a spin-barrier for 100 ms and
  then sleeps") — the workloads where CFS's occasional
  two-threads-on-one-core placement delays every iteration (+73 % for
  ULE on MG, §6.3);
* **EP** is embarrassingly parallel — independent compute, no
  barriers;
* **DC** is I/O-heavy (data-cube writes) — threads sleep inside each
  phase;
* the rest are plain barrier-phased kernels with small built-in
  imbalance.

Performance follows the paper's convention for NAS: operations
(iterations) per second.
"""

from __future__ import annotations

from ..core.clock import msec
from .base import BarrierWorkload, ComputeWorkload


def _barrier_kernel(app, iterations, phase_ns, spin_ns=msec(10), io_ns=0,
                    imbalance=0.04):
    return BarrierWorkload(app=app, nthreads=None, iterations=iterations,
                           phase_ns=phase_ns, spin_ns=spin_ns, io_ns=io_ns,
                           imbalance=imbalance)


def bt():
    """Block tri-diagonal solver: plain barrier phases."""
    return _barrier_kernel("BT", iterations=24, phase_ns=msec(60))


def cg():
    """Conjugate gradient: shortish barrier phases."""
    return _barrier_kernel("CG", iterations=40, phase_ns=msec(25))


def dc():
    """Data cube: I/O sleeps inside each phase."""
    # data cube: I/O between phases
    return _barrier_kernel("DC", iterations=20, phase_ns=msec(20),
                           io_ns=msec(15))


def ep():
    """Embarrassingly parallel: independent compute, no barriers."""
    # embarrassingly parallel: pure independent compute
    return ComputeWorkload(app="EP", nthreads=None, work_ns=msec(1500),
                           chunk_ns=msec(25), jitter=0.02)


def ft():
    """3-D FFT: spin-barrier kernel (CFS-misplacement victim)."""
    # spin-barrier kernel (suffers CFS misplacement like MG/UA);
    # spin windows scaled 1/10 like all durations (paper: 100 ms)
    return _barrier_kernel("FT", iterations=24, phase_ns=msec(50),
                           spin_ns=msec(10), imbalance=0.06)


def is_():
    """Integer sort: many short barrier phases."""
    return _barrier_kernel("IS", iterations=48, phase_ns=msec(12))


def lu():
    """LU solver: plain barrier phases."""
    return _barrier_kernel("LU", iterations=32, phase_ns=msec(35))


def mg():
    """Multigrid: the paper's headline case (+73% for ULE)."""
    # the paper's headline case: a multigrid solver crosses a barrier
    # at every grid level -- many short phases, so any misplacement or
    # sleep/wake latency is paid at every one of them
    return _barrier_kernel("MG", iterations=120, phase_ns=msec(15),
                           spin_ns=msec(10), imbalance=0.06)


def sp():
    """Scalar penta-diagonal solver: plain barrier phases."""
    return _barrier_kernel("SP", iterations=24, phase_ns=msec(45))


def ua():
    """Unstructured adaptive: spin-barrier kernel."""
    return _barrier_kernel("UA", iterations=24, phase_ns=msec(45),
                           spin_ns=msec(10), imbalance=0.06)


NAS_KERNELS = {
    "BT": bt, "CG": cg, "DC": dc, "EP": ep, "FT": ft,
    "IS": is_, "LU": lu, "MG": mg, "SP": sp, "UA": ua,
}
