"""Ambient kernel-thread noise.

The paper attributes CFS's occasional misplacement of HPC threads to
its reaction "to micro changes in the load of cores (e.g., due to a
kernel thread waking up)" (§6.3).  Real machines always run per-CPU
kernel threads (kworkers, ksoftirqd); this workload models them: one
pinned daemon per CPU that wakes periodically for a short burst.

Experiments include it as background so CFS's PELT sees the same
micro-noise the paper's machine did.  ULE is barely affected: the
daemons are interactive but tiny, and ULE balances thread *counts*, so
a sleeping daemon is invisible to its placement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import Run, Sleep, ThreadSpec
from ..core.clock import msec, usec
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class KernelNoiseWorkload(Workload):
    """One pinned kworker-like daemon per CPU.

    Bursts are heavy-tailed: with probability ``tail_prob`` a burst is
    ``tail_factor`` times longer (a writeback flush, journal commit, or
    THP compaction instead of a timer callback) — the rare long
    disturbances that knock a barrier out of its spin window and let
    CFS's placement enter its degraded mode (§6.3).
    """

    app = "kworker"

    def __init__(self, period_ns: int = msec(10),
                 burst_ns: int = usec(150),
                 tail_prob: float = 0.01, tail_factor: int = 60,
                 name: str = "knoise"):
        super().__init__(name)
        self.period_ns = period_ns
        self.burst_ns = burst_ns
        self.tail_prob = tail_prob
        self.tail_factor = tail_factor

    def _do_launch(self, engine: "Engine", at: int) -> None:
        for cpu in range(len(engine.machine)):
            self.spawn(engine, ThreadSpec(
                f"kworker/{cpu}", self._daemon,
                affinity=frozenset({cpu})), at=at)

    def _daemon(self, ctx):
        while True:
            yield Sleep(ctx.rng.jitter_ns(self.period_ns, 0.5))
            burst = ctx.rng.jitter_ns(self.burst_ns, 0.5)
            if self.tail_prob and \
                    ctx.rng.uniform(0.0, 1.0) < self.tail_prob:
                burst *= self.tail_factor
            yield Run(burst)

    def done(self, engine: "Engine") -> bool:
        return False  # daemons run forever
