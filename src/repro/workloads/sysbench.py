"""sysbench OLTP against MySQL (§4.2, §5.1, §5.2, §6.3, §6.4).

The model captures every property the paper leans on:

* a **master** thread forked from an interactive shell (bash-like
  history) that initializes data *without sleeping* while forking the
  worker threads one by one — so early workers inherit an interactive
  history and late workers inherit a batch history (the §5.2
  starvation bifurcation, Figs. 3-4);
* **workers** that serve transactions in a closed loop: wait for the
  request/disk (voluntary sleep), then execute the query (CPU), with
  optional contention on a shared lock (MySQL's internal locks, §6.4
  — under ULE the lock handoff is not followed by preemption, adding
  up to a timeslice of delay);
* throughput (transactions/s) and per-transaction latency metrics
  (Table 2's 290/532 tx/s and 441/125 ms rows).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import Fork, Run, Sleep, ThreadSpec
from ..core.clock import NSEC_PER_SEC, msec, usec
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class SysbenchWorkload(Workload):
    """Closed-loop OLTP worker pool with fork-time inheritance."""

    app = "sysbench"

    def __init__(self, nthreads: int = 80,
                 service_ns: int = msec(1),
                 wait_ns: int = msec(70),
                 init_per_thread_ns: int = msec(28),
                 transactions_per_thread: int = 100,
                 lock_fraction: float = 0.0,
                 lock_hold_ns: int = usec(100),
                 name: str = "sysbench"):
        super().__init__(name)
        self.nthreads = nthreads
        self.service_ns = service_ns
        self.wait_ns = wait_ns
        self.init_per_thread_ns = init_per_thread_ns
        self.transactions_per_thread = transactions_per_thread
        self.lock_fraction = lock_fraction
        self.lock_hold_ns = lock_hold_ns
        self.completed = 0
        self.finished_at = None
        self.master = None
        self.workers: list = []
        self._lock = None
        self._start = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.semaphore import OneShotEvent
        if self.lock_fraction > 0.0:
            from ..sync.mutex import Mutex
            self._lock = Mutex(engine, f"{self.app}.mysql_lock")
        self._start = OneShotEvent(engine, f"{self.app}.start")
        self.master = self.spawn(engine, ThreadSpec(
            f"{self.app}/master", self._master_behavior), at=at)

    def _master_behavior(self, ctx):
        # Initialization: CPU-bound table setup interleaved with
        # forking the workers.  The master never sleeps here, so its
        # inherited-by-children interactivity penalty keeps growing.
        # Created workers block on the start latch (connecting to
        # MySQL) until initialization completes.
        for i in range(self.nthreads):
            yield Run(self.init_per_thread_ns)
            worker = yield Fork(ThreadSpec(
                f"{self.app}/worker{i}", self._worker_behavior(i)))
            self.workers.append(worker)
        yield self._start.fire()
        # The master then sleeps waiting for the run to finish.
        while not self.finished:
            yield Sleep(msec(100))

    def _worker_behavior(self, index: int):
        lock_every = (int(1 / self.lock_fraction)
                      if self.lock_fraction > 0 else 0)

        def behavior(ctx):
            # The transaction budget is global (like sysbench's
            # --max-requests): starved workers contribute nothing and
            # the survivors complete the whole run (§5.2).
            yield self._start.wait()
            latency = ctx.metrics.latency(f"{self.app}.latency")
            txn = 0
            while not self.finished:
                before = ctx.now
                yield Sleep(self.wait_ns)
                if self.finished:
                    break
                arrival = before + self.wait_ns
                if lock_every and txn % lock_every == 0:
                    yield self._lock.acquire()
                    yield Run(self.lock_hold_ns)
                    yield self._lock.release()
                    remaining = self.service_ns - self.lock_hold_ns
                    if remaining > 0:
                        yield Run(remaining)
                else:
                    yield Run(self.service_ns)
                self.completed += 1
                txn += 1
                latency.record(ctx.now - arrival)
                if self.finished and self.finished_at is None:
                    self.finished_at = ctx.now
        return behavior

    # -- results -----------------------------------------------------------

    @property
    def total_transactions(self) -> int:
        return self.nthreads * self.transactions_per_thread

    @property
    def finished(self) -> bool:
        return self.completed >= self.total_transactions

    def done(self, engine: "Engine") -> bool:
        return self.finished

    def performance(self, engine: "Engine") -> float:
        """Transactions per second (up to the completing request)."""
        end = self.finished_at if self.finished_at is not None \
            else engine.now
        elapsed = end - (self._launched_at or 0)
        if elapsed <= 0:
            return 0.0
        return self.completed * NSEC_PER_SEC / elapsed

    def throughput(self, engine: "Engine") -> float:
        """Alias of :meth:`performance` (transactions per second)."""
        return self.performance(engine)

    def mean_latency_ns(self, engine: "Engine") -> float:
        """Mean per-transaction latency recorded so far."""
        return engine.metrics.latency(f"{self.app}.latency").mean

    def starved_workers(self, engine: "Engine") -> list:
        """Workers that never executed a single transaction (the §5.2
        threads 'forked late in the initialization process')."""
        return [w for w in self.workers if w.total_runtime == 0]
