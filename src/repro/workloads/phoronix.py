"""The Phoronix test suite selection (§4.2, §5.3).

Sixteen applications picked by the authors for reasonable completion
times: compilation (build-apache, build-php), compression (7zip,
gzip), image processing (c-ray, dcraw), scientific (himeno, hmmer,
scimark x6), cryptography (john x3) and web (apache).

The two §5.3 outliers get explicit mechanisms:

* **scimark2** is a single-threaded Java benchmark: its compute thread
  shares the process with JVM service threads (GC, JIT, I/O) that
  sleep long and then run in bursts.  Under ULE the service threads
  classify interactive and hold absolute priority during their bursts,
  delaying the (batch) compute thread — scimark runs ~36 % slower.
* **apache** lives in :mod:`repro.workloads.apache` (preemption
  effect, +40 % for ULE).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import Fork, Run, Sleep, ThreadSpec
from ..core.clock import NSEC_PER_SEC, msec
from .base import ComputeWorkload, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class BuildWorkload(Workload):
    """A parallel build: a driver forks compile jobs, at most
    ``parallelism`` in flight, each a short compute burst.  The driver
    sleeps while the job slots are full (make's wait), so it stays
    interactive."""

    def __init__(self, app: str, jobs: int = 40,
                 job_ns: int = msec(60), parallelism: Optional[int] = None,
                 name: Optional[str] = None):
        self.app = app
        super().__init__(name)
        self.jobs = jobs
        self.job_ns = job_ns
        self.parallelism = parallelism
        self._slots = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.semaphore import Semaphore
        if self.parallelism is None:
            self.parallelism = len(engine.machine)
        self._slots = Semaphore(engine, value=self.parallelism,
                                name=f"{self.app}.jobs")
        self.spawn(engine, ThreadSpec(
            f"{self.app}/make", self._driver_behavior), at=at)

    def _driver_behavior(self, ctx):
        for i in range(self.jobs):
            yield self._slots.down()
            yield Run(msec(1))  # dependency scanning
            yield Fork(ThreadSpec(f"{self.app}/cc{i}",
                                  self._job_behavior(i)))

    def _job_behavior(self, index: int):
        def behavior(ctx):
            yield Run(ctx.rng.jitter_ns(self.job_ns, 0.3))
            yield self._slots.up()
        return behavior


class ScimarkWorkload(Workload):
    """Single-threaded Java compute + bursty JVM service threads.

    The service threads sleep long (interactive under ULE), then run a
    burst.  Under ULE a burst owns the core outright (absolute
    interactive priority, no preemption of... the batch compute thread
    only runs when no service thread is runnable); under CFS the burst
    competes fairly with the compute thread.
    """

    def __init__(self, variant: int = 1, compute_ns: int = msec(4000),
                 njvm: int = 8, burst_ns: int = msec(12),
                 period_ns: int = msec(100),
                 name: Optional[str] = None):
        self.app = f"scimark2-({variant})"
        super().__init__(name or self.app)
        self.variant = variant
        self.compute_ns = compute_ns
        self.njvm = njvm
        self.burst_ns = burst_ns
        self.period_ns = period_ns
        self.compute_thread = None

    def _do_launch(self, engine: "Engine", at: int) -> None:
        self.compute_thread = self.spawn(engine, ThreadSpec(
            f"{self.app}/compute", self._compute_behavior), at=at)
        for i in range(self.njvm):
            self.spawn(engine, ThreadSpec(
                f"{self.app}/jvm{i}", self._jvm_behavior(i)), at=at)

    def _compute_behavior(self, ctx):
        remaining = self.compute_ns
        chunk = msec(10)
        while remaining > 0:
            step = min(chunk, remaining)
            yield Run(step)
            remaining -= step
        self._finished_at = ctx.now

    def _jvm_behavior(self, index: int):
        def behavior(ctx):
            # Open-loop periodic service work: the burst schedule is
            # absolute (GC/JIT backlog does not shrink when the thread
            # is delayed), so the demand is fixed regardless of how the
            # scheduler treats the thread.
            offset = self.period_ns * (index + 1) // (self.njvm + 1)
            yield Sleep(offset)
            next_burst = ctx.now
            while not self.compute_thread.has_exited:
                next_burst += self.period_ns
                gap = next_burst - ctx.now
                if gap > 0:
                    yield Sleep(gap)
                yield Run(self.burst_ns)
        return behavior

    def done(self, engine: "Engine") -> bool:
        return (self.compute_thread is not None
                and self.compute_thread.has_exited)

    def performance(self, engine: "Engine") -> float:
        """1 / compute completion time (Mflops analogue)."""
        if not self.done(engine):
            return 0.0
        elapsed = self.compute_thread.exited_at - (self._launched_at or 0)
        return NSEC_PER_SEC / elapsed


# ----------------------------------------------------------------------
# factories
# ----------------------------------------------------------------------

def build_apache():
    """Parallel build of Apache httpd."""
    return BuildWorkload(app="Build-apache", jobs=36, job_ns=msec(70))


def build_php():
    """Parallel build of PHP."""
    return BuildWorkload(app="Build-php", jobs=48, job_ns=msec(55))


def sevenzip():
    """7zip compression: one thread per core."""
    return ComputeWorkload(app="7zip", nthreads=None, work_ns=msec(1200),
                           chunk_ns=msec(30), jitter=0.03)


def gzip_():
    """gzip compression: single-threaded compute."""
    return ComputeWorkload(app="Gzip", nthreads=1, work_ns=msec(2500),
                           chunk_ns=msec(50))


def dcraw():
    """RAW photo decoding: single-threaded compute."""
    return ComputeWorkload(app="DCraw", nthreads=1, work_ns=msec(2200),
                           chunk_ns=msec(40))


def himeno():
    """Himeno pressure solver: single-threaded compute."""
    return ComputeWorkload(app="himeno", nthreads=1, work_ns=msec(2800),
                           chunk_ns=msec(40))


def hmmer():
    """HMMER sequence search: single-threaded compute."""
    return ComputeWorkload(app="hmmer", nthreads=1, work_ns=msec(2400),
                           chunk_ns=msec(30))


def scimark(variant: int):
    """One of the six scimark2 subtests (Java + JVM threads)."""
    return ScimarkWorkload(variant=variant,
                           compute_ns=msec(3000 + 400 * variant))


def john(variant: int):
    """One of the three john-the-ripper crypto kernels."""
    return ComputeWorkload(app=f"john-({variant})", nthreads=None,
                           work_ns=msec(900 + 250 * variant),
                           chunk_ns=msec(25), jitter=0.02)
