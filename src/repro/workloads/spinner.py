"""Pinned spinner herds — the Fig. 6 load-balancing workload.

512 infinite-loop threads pinned to core 0; a ``taskset`` at a chosen
time unpins them, and the load balancer's convergence is observed as
threads-per-core over time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.actions import ThreadSpec, run_forever
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class SpinnerWorkload(Workload):
    """``count`` spinners, optionally pinned to one CPU, with an
    optional scheduled unpin (the paper's taskset at 14.5 s)."""

    app = "spinner"

    def __init__(self, count: int = 512, pin_cpu: Optional[int] = 0,
                 unpin_at: Optional[int] = None, name: str = "spinners"):
        super().__init__(name)
        self.count = count
        self.pin_cpu = pin_cpu
        self.unpin_at = unpin_at

    def _do_launch(self, engine: "Engine", at: int) -> None:
        affinity = (frozenset({self.pin_cpu})
                    if self.pin_cpu is not None else None)
        for i in range(self.count):
            self.spawn(engine, ThreadSpec(
                f"spin/{i}", self._spin, affinity=affinity), at=at)
        if self.unpin_at is not None:
            engine.events.post(self.unpin_at, self._unpin_all, engine,
                               label="taskset-unpin")

    @staticmethod
    def _spin(ctx):
        yield run_forever()

    def _unpin_all(self, engine: "Engine") -> None:
        for thread in self._threads:
            engine.set_affinity(thread, None)
        engine.metrics.incr("spinner.unpinned", len(self._threads))

    def done(self, engine: "Engine") -> bool:
        return False  # spinners never exit; runs are time-bounded
