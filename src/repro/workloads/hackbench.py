"""hackbench — the Linux community's scheduler stress test (§4.2).

Groups of senders and receivers exchange messages through pipes: each
sender writes ``loops`` messages to each receiver in its group.  The
run is a storm of short executions and wakeups; the paper uses it both
as a performance benchmark (Fig. 8's Hackb-800 / Hackb-10) and to
measure scheduler overhead (32 000 threads, §6.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.actions import Run, ThreadSpec
from ..core.clock import NSEC_PER_SEC, usec
from .base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine


class HackbenchWorkload(Workload):
    """``groups`` x (``fan`` senders + ``fan`` receivers) over pipes."""

    app = "hackbench"

    def __init__(self, groups: int = 10, fan: int = 20, loops: int = 20,
                 work_ns: int = usec(10), pipe_capacity: int = 50,
                 name: str = "hackbench"):
        super().__init__(name)
        self.groups = groups
        self.fan = fan
        self.loops = loops
        self.work_ns = work_ns
        self.pipe_capacity = pipe_capacity
        self._pipes: list = []

    @property
    def total_threads(self) -> int:
        return self.groups * self.fan * 2

    def _do_launch(self, engine: "Engine", at: int) -> None:
        from ..sync.pipe import Pipe
        for g in range(self.groups):
            pipes = [Pipe(engine, capacity=self.pipe_capacity,
                          name=f"hb{g}.pipe{r}")
                     for r in range(self.fan)]
            self._pipes.append(pipes)
            for s in range(self.fan):
                self.spawn(engine, ThreadSpec(
                    f"hb{g}/send{s}", self._sender_behavior(g)), at=at)
            for r in range(self.fan):
                self.spawn(engine, ThreadSpec(
                    f"hb{g}/recv{r}", self._receiver_behavior(g, r)),
                    at=at)

    def _sender_behavior(self, group: int):
        def behavior(ctx):
            pipes = self._pipes[group]
            for _ in range(self.loops):
                for pipe in pipes:
                    yield Run(self.work_ns)
                    yield pipe.write(b"x")
        return behavior

    def _receiver_behavior(self, group: int, index: int):
        def behavior(ctx):
            pipe = self._pipes[group][index]
            total = self.loops * self.fan
            for _ in range(total):
                yield pipe.read()
                yield Run(self.work_ns)
        return behavior

    def performance(self, engine: "Engine") -> float:
        return NSEC_PER_SEC / self.completion_time(engine)
